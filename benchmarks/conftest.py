"""Shared fixtures and helpers for the benchmark harness.

Every benchmark corresponds to one exhibit of the paper (see DESIGN.md §4)
and prints the rows/series that exhibit reports, in addition to the timing
collected by pytest-benchmark. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, generate_scenario

#: Scenario size used by the benchmark harness (the paper's demo data sets
#: are of this order of magnitude).
BENCH_PROPERTIES = 600
BENCH_POSTCODES = 120
BENCH_SEED = 17


@pytest.fixture(scope="session")
def bench_scenario():
    """The seeded real-estate scenario shared by all benchmarks."""
    return generate_scenario(ScenarioConfig(
        properties=BENCH_PROPERTIES, postcodes=BENCH_POSTCODES, seed=BENCH_SEED))


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a fixed-width table (the benches reproduce paper exhibits as text)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print(f"\n=== {title} ===")
    print(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in rendered:
        print(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
