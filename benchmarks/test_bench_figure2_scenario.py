"""Experiment E2 — Figure 2: the demonstration scenario.

Regenerates the running example of Figure 2: the source tables (Rightmove,
Onthemarket, Deprivation), the target schema, the data context (Address
reference list) and the user context with its derived AHP weights.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro import ACCURACY, COMPLETENESS, CONSISTENCY, ScenarioConfig, UserContext, generate_scenario


def build_figure2(scenario):
    """Assemble every panel of Figure 2 from the generated scenario."""
    context = UserContext()
    context.prefer(COMPLETENESS("crimerank"), ACCURACY("type"),
                   "very strongly more important than")
    context.prefer(CONSISTENCY(), COMPLETENESS("bedrooms"),
                   "strongly more important than")
    context.prefer(COMPLETENESS("street"), COMPLETENESS("postcode"),
                   "moderately more important than")
    return {
        "sources": [scenario.rightmove, scenario.onthemarket, scenario.deprivation],
        "target": scenario.target,
        "data_context": scenario.address_reference,
        "user_context": context,
    }


@pytest.mark.benchmark(group="figure2")
def test_figure2_demonstration_scenario(benchmark, bench_scenario):
    figure = benchmark.pedantic(build_figure2, args=(bench_scenario,), rounds=1, iterations=1)

    # (a) Sources.
    print_table("Figure 2(a) — Sources", ["relation", "attributes", "rows"], [
        [table.name, ", ".join(table.schema.attribute_names), len(table)]
        for table in figure["sources"]
    ])
    # (b) Target schema.
    print_table("Figure 2(b) — Target schema", ["relation", "attributes"], [
        [figure["target"].name, ", ".join(figure["target"].attribute_names)]])
    # (c) Data context.
    reference = figure["data_context"]
    print_table("Figure 2(c) — Data context", ["relation", "attributes", "rows"], [
        [reference.name, ", ".join(reference.schema.attribute_names), len(reference)]])
    # (d) User context and the derived AHP weights.
    context = figure["user_context"]
    print_table("Figure 2(d) — User context", ["statement"],
                [[line] for line in context.describe()])
    print_table("Derived criterion weights (AHP)", ["criterion", "weight"], [
        [criterion.key, f"{weight:.4f}"] for criterion, weight in sorted(
            context.weights().items(), key=lambda item: -item[1])])

    # Shape checks mirroring the paper's example.
    assert figure["target"].attribute_names == (
        "type", "description", "street", "postcode", "bedrooms", "price", "crimerank")
    assert [t.name for t in figure["sources"]] == ["rightmove", "onthemarket", "deprivation"]
    assert reference.schema.attribute_names == ("street", "city", "postcode")
    weights = {criterion.key: weight for criterion, weight in context.weights().items()}
    assert weights["completeness.crimerank"] > weights["accuracy.type"]
    assert weights["consistency"] > weights["completeness.bedrooms"]
    assert weights["completeness.street"] > weights["completeness.postcode"]
    assert context.consistency_ratio() < 0.2


@pytest.mark.benchmark(group="figure2")
def test_figure2_scenario_generation_cost(benchmark):
    """Time the generator itself (the substrate substituted for DIADEM + gov data)."""
    scenario = benchmark(generate_scenario,
                         ScenarioConfig(properties=400, postcodes=80, seed=23))
    assert len(scenario.ground_truth) == 400
