"""Incremental quality-metrics benchmark: the evaluate phase must be cheap.

PR 4 made the feedback loop's *re-wrangling* cheap; this bench guards the
other half of each round — re-evaluating the four quality criteria. The
monolithic path rescans the whole result (plus the reference join, the CFD
witness checks and the master coverage) per round; the sufficient-statistic
engine (:mod:`repro.quality.stats`) patches only the touched rows'
contributions while the result itself is being patched, and ``evaluate``
then just finalises counters.

Each round asserts the checked contract before timing means anything: the
stats-derived report must be **exactly** equal to a forced full
recomputation over the same table — criteria, per-attribute completeness
and row count. The bench additionally asserts that the impact index never
re-inverted the provenance store on the patch path (``builds == 0``: the
feedback closure needs no inversion at all).

The incremental side of the ratio is honest about maintenance: it counts
the engine's metric-patch phase (``metrics_seconds``) *plus* the
stats-backed ``evaluate()``; the full side is ``evaluate(use_stats=False)``
— the per-round rescan the monolithic metrics paid.

Set ``BENCH_SMOKE=1`` to shrink the scenario; the speedup assert then uses
a relaxed floor (fixed per-round costs dominate tiny runs), while the
equality assert stays exact.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import print_table
from repro.feedback.annotations import simulate_feedback
from repro.fusion.duplicates import DuplicateDetectorConfig
from repro.incremental.validate import _prepare
from repro.quality.cfd_learning import CFDLearnerConfig
from repro.scenarios.synth import SynthConfig, generate_synthetic
from repro.wrangler.config import WranglerConfig

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Ground-truth entities (result volume is ~1.5x with two sources).
ENTITIES = 600 if SMOKE else 10_000
#: Feedback rounds per case.
ROUNDS = 2 if SMOKE else 3
#: Annotations per round — ≤1% of the result rows.
BUDGET = max(1, (ENTITIES * 3 // 2) // 100)
#: Required full-rescan / incremental wall-clock ratio on the evaluate
#: phase. The ISSUE 5 acceptance bar is ≥3x at full size; tiny smoke
#: scenarios are dominated by fixed per-round costs, so that floor relaxes.
MIN_SPEEDUP = 1.2 if SMOKE else 3.0

#: Entity-key blocking keeps duplicate detection feasible at 10^4, and the
#: product_catalog learner is pinned to exact FDs so the scenario stays a
#: single-fusion-pass shape (same configs, and same rationale, as
#: benchmarks/test_bench_incremental.py).
CASES = {
    "product_catalog": WranglerConfig(
        duplicate_detector=DuplicateDetectorConfig(
            blocking_attributes=("sku",),
            comparison_attributes=("name", "price", "brand", "category"),
        ),
        cfd_learner=CFDLearnerConfig(min_confidence=1.0),
    ),
    "shipment_tracking": WranglerConfig(
        duplicate_detector=DuplicateDetectorConfig(
            blocking_attributes=("tracking_id",),
            comparison_attributes=("dest_city", "weight_kg", "carrier", "status"),
        ),
    ),
}


def _reports_equal(left, right) -> bool:
    return (
        left is not None
        and right is not None
        and left.as_dict() == right.as_dict()
        and left.attribute_completeness == right.attribute_completeness
        and left.row_count == right.row_count
    )


def _run_case(family: str) -> list[dict]:
    scenario = generate_synthetic(SynthConfig(family=family, entities=ENTITIES, seed=0))
    session = _prepare(scenario, CASES[family])
    rounds = []
    for round_number in range(1, ROUNDS + 1):
        annotations = simulate_feedback(
            session.result(),
            scenario.ground_truth,
            scenario.evaluation_key,
            budget=BUDGET,
            seed=round_number,
            strategy="targeted",
            id_prefix=f"b{round_number}",
        )
        outcome = session.apply_feedback(
            annotations, incremental=True, evaluate=False
        ).details["incremental"]

        started = time.perf_counter()
        fast = session.evaluate()
        incremental_seconds = (
            time.perf_counter() - started + float(outcome.get("metrics_seconds", 0.0))
        )
        started = time.perf_counter()
        full = session.evaluate(use_stats=False)
        full_seconds = time.perf_counter() - started

        index = session.incremental.impact
        rounds.append(
            {
                "round": round_number,
                "annotations": len(annotations),
                "rows": len(session.result()),
                "applied": bool(outcome.get("applied")),
                "metrics_patched": list(outcome.get("metrics_patched", [])),
                "equal": _reports_equal(fast, full),
                "index_builds": index.builds if index is not None else -1,
                "incremental_seconds": incremental_seconds,
                "full_seconds": full_seconds,
            }
        )
    return rounds


def _assert_case(family: str, rounds: list[dict]) -> None:
    # The speedup claim is only meaningful if the maintained statistics
    # finalise to exactly the full recomputation, round after round.
    for check in rounds:
        assert check["equal"], f"stats report != full recompute: {check}"
        assert check["applied"], f"expected a patched round, got {check}"
        assert check["metrics_patched"], f"expected patched metric facts: {check}"
        # No ImpactIndex full rebuild on the patch path: feedback closures
        # resolve without ever inverting the provenance store.
        assert check["index_builds"] == 0, f"impact index re-inverted: {check}"
    incremental = sum(check["incremental_seconds"] for check in rounds)
    full = sum(check["full_seconds"] for check in rounds)
    speedup = full / max(incremental, 1e-9)
    print_table(
        f"{family}: {BUDGET} annotations/round (≤1% of rows), evaluate-phase "
        f"speedup {speedup:.1f}x (floor {MIN_SPEEDUP}x)",
        ["round", "annotations", "rows", "incremental s", "full s", "ratio"],
        [
            [
                check["round"],
                check["annotations"],
                check["rows"],
                f"{check['incremental_seconds']:.4f}",
                f"{check['full_seconds']:.4f}",
                f"{check['full_seconds'] / max(check['incremental_seconds'], 1e-9):.1f}x",
            ]
            for check in rounds
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"evaluate-phase speedup {speedup:.2f}x is below the {MIN_SPEEDUP}x floor"
    )


def test_bench_metrics_incremental_product_catalog(benchmark):
    """Fusion-heavy evaluate loop: clustered duplicates, equality-checked."""
    rounds = benchmark.pedantic(
        lambda: _run_case("product_catalog"), rounds=1, iterations=1
    )
    _assert_case("product_catalog", rounds)


def test_bench_metrics_incremental_shipment_tracking(benchmark):
    """Join-heavy evaluate loop: lookup-sourced attributes, equality-checked."""
    rounds = benchmark.pedantic(
        lambda: _run_case("shipment_tracking"), rounds=1, iterations=1
    )
    _assert_case("shipment_tracking", rounds)
