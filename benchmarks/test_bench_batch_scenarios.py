"""Micro-benchmarks for the parametric scenario generator and batch runner.

Three exhibits:

- **generation volume** — :func:`repro.scenarios.synth.generate_synthetic`
  timed across tuple volumes 10²–10⁵ (the generator must stay linear, or
  large workloads become unaffordable before wrangling even starts);
- **batch wall-clock** — the process-pool batch runner timed over a suite
  spanning all four scenario families (this is the series the nightly
  regression gate watches);
- **parallel vs sequential** — the same suite executed sequentially and
  through the process pool, asserting byte-identical per-scenario results
  and (when the machine has cores to scale onto) a wall-clock speedup.

Speedup thresholds adapt to the available parallelism: a process pool
cannot beat sequential execution of CPU-bound work on a single core, so on
1-CPU machines only equivalence (and absence of pathological slowdown) is
asserted. At full size on a ≥4-core machine (local runs and the nightly CI
job) the suite must reach ≥2×.

Set ``BENCH_SMOKE=1`` (the PR test and bench jobs do) to shrink the
scenarios; smoke runs assert only equivalence — the ~1s smoke batch is
dominated by pool start-up, so a wall-clock threshold there would let
shared-runner noise fail PRs that touched nothing related.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import print_table
from repro.scenarios.synth import SynthConfig, generate_synthetic, scenario_suite
from repro.wrangler.batch import BatchConfig, run_batch

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
CPUS = os.cpu_count() or 1
WORKERS = min(4, CPUS)

#: Ground-truth entities per generated scenario in the batch exhibits.
BATCH_ENTITIES = 90 if SMOKE else 250
#: Scenario variants per family; four families make ≥8 scenarios.
PER_FAMILY = 2
#: Simulated feedback annotations per scenario (exercises all phases).
FEEDBACK_BUDGET = 0 if SMOKE else 20
#: Tuple volumes for the generation benchmark (10²–10⁵).
GENERATION_SIZES = [100, 1_000, 10_000] if SMOKE else [100, 1_000, 10_000, 100_000]


def batch_suite() -> list[SynthConfig]:
    """The scenario suite shared by the batch exhibits (all families)."""
    return scenario_suite(per_family=PER_FAMILY, seed=17, entities=BATCH_ENTITIES)


def min_speedup() -> float | None:
    """Required parallel speedup, or None when none can be demanded (smoke
    sizes, or a machine without real parallelism)."""
    if SMOKE:
        return None
    if WORKERS >= 4:
        return 2.0
    if WORKERS >= 2:
        return 1.25
    return None


@pytest.mark.parametrize("size", GENERATION_SIZES)
def test_bench_synth_generation(benchmark, size: int):
    """Generation cost across tuple volumes (kept linear in ``entities``)."""
    config = SynthConfig(family="product_catalog", entities=size, sources=3, seed=size)
    rounds = 1 if size >= 10_000 else 3
    scenario = benchmark.pedantic(
        lambda: generate_synthetic(config), rounds=rounds, iterations=1)
    assert len(scenario.ground_truth) == size
    assert scenario.source_count == 3


def test_bench_batch_scenarios_parallel(benchmark):
    """Wall-clock of the process-pool batch over the full family suite."""
    configs = batch_suite()
    report = benchmark.pedantic(
        lambda: run_batch(
            configs,
            BatchConfig(executor="process", workers=WORKERS,
                        feedback_budget=FEEDBACK_BUDGET),
        ),
        rounds=1, iterations=1)
    assert len(report.results) >= 8
    assert not report.failed, [result.error for result in report.failed]


def test_batch_parallel_matches_sequential():
    """The process pool returns byte-identical per-scenario results and, on
    multi-core machines, a real wall-clock speedup over sequential runs."""
    configs = batch_suite()
    assert len(configs) >= 8
    batch = BatchConfig(feedback_budget=FEEDBACK_BUDGET)

    started = time.perf_counter()
    sequential = run_batch(configs, batch, executor="serial")
    sequential_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    parallel = run_batch(configs, batch, executor="process", workers=WORKERS)
    parallel_elapsed = time.perf_counter() - started

    assert not sequential.failed, [result.error for result in sequential.failed]
    assert not parallel.failed, [result.error for result in parallel.failed]
    # Identical per-scenario results: same fingerprints, quality, costs.
    assert [result.equivalence_key() for result in sequential.results] == \
        [result.equivalence_key() for result in parallel.results]
    assert sequential.aggregate() == parallel.aggregate()

    speedup = sequential_elapsed / max(parallel_elapsed, 1e-9)
    rows = [
        [result.name, result.rows, result.steps,
         f"{result.quality.get('overall', 0.0):.4f}", f"{result.seconds:.2f}"]
        for result in parallel.results
    ]
    print_table(
        f"Batch wrangling: {len(configs)} scenarios, {WORKERS} worker(s) "
        f"(sequential {sequential_elapsed:.2f}s, parallel {parallel_elapsed:.2f}s, "
        f"speedup {speedup:.2f}x)",
        ["scenario", "rows", "steps", "quality", "seconds"],
        rows)

    required = min_speedup()
    if required is None:
        # Smoke sizes or a single-core machine: no wall-clock promise can be
        # made; just require the pool overhead to stay bounded.
        assert speedup > 0.4, (
            f"process-pool overhead is pathological: {speedup:.2f}x of sequential")
    else:
        assert speedup >= required, (
            f"expected >= {required}x speedup with {WORKERS} workers over "
            f"{len(configs)} scenarios, got {speedup:.2f}x "
            f"(sequential {sequential_elapsed:.2f}s, parallel {parallel_elapsed:.2f}s)")
