#!/usr/bin/env python
"""Benchmark-regression gate: fail CI when datalog-join benches slow down.

Compares a freshly produced pytest-benchmark JSON report against the
committed baseline and exits non-zero when any matching benchmark's mean
grew by more than the allowed factor (default 1.5x).

Raw means are meaningless across machines of different speeds, so when both
reports contain the calibration benchmark (``test_bench_calibration``, a
fixed pure-Python workload) every mean is first divided by that report's
calibration mean. The comparison then gates the *relative* cost of the
datalog joins, which is what the hash-index work actually promises.

Usage::

    python benchmarks/check_regression.py BASELINE.json FRESH.json \
        [--threshold 1.5] [--filter datalog_join]

Committed baselines live in ``benchmarks/baselines/``; each is gated by a
nightly CI step with a matching ``--filter``:

- ``BENCH_datalog_join.json``        (``--filter datalog_join``)
- ``BENCH_batch_scenarios.json``     (``--filter batch_scenarios`` / ``synth_generation``)
- ``BENCH_provenance.json``          (``--filter bench_provenance``)
- ``BENCH_incremental.json``         (``--filter bench_incremental``)
- ``BENCH_metrics_incremental.json`` (``--filter metrics_incremental``)
- ``BENCH_service.json``             (``--filter bench_service``)
- ``BENCH_cqa.json``                 (``--filter bench_cqa``)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

CALIBRATION = "test_bench_calibration"


def load_means(path: Path) -> dict[str, float]:
    """Map benchmark name -> mean seconds from a pytest-benchmark report."""
    try:
        report = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: benchmark report {path} does not exist")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    means: dict[str, float] = {}
    for bench in report.get("benchmarks", []):
        means[bench["name"]] = float(bench["stats"]["mean"])
    if not means:
        raise SystemExit(f"error: no benchmarks found in {path}")
    return means


def calibration_scale(baseline: dict[str, float], fresh: dict[str, float]) -> float:
    """fresh-machine slowdown factor measured by the calibration bench."""
    if CALIBRATION in baseline and CALIBRATION in fresh and baseline[CALIBRATION] > 0:
        return fresh[CALIBRATION] / baseline[CALIBRATION]
    return 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("fresh", type=Path, help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="maximum allowed slowdown factor (default 1.5)")
    parser.add_argument("--filter", default="datalog_join", dest="name_filter",
                        help="only gate benchmarks whose name contains this substring")
    args = parser.parse_args(argv)

    baseline = load_means(args.baseline)
    fresh = load_means(args.fresh)
    scale = calibration_scale(baseline, fresh)
    print(f"calibration scale (fresh machine vs baseline machine): {scale:.3f}x")

    gated = sorted(name for name in baseline
                   if args.name_filter in name and name in fresh)
    if not gated:
        print(f"error: no benchmarks matching {args.name_filter!r} appear in both reports",
              file=sys.stderr)
        return 2
    # Names that match the filter but appear in only one report are NOT
    # gated; say so loudly, otherwise a baseline that lags behind the suite
    # silently stops watching the newest (often largest) workloads.
    for name in sorted(set(fresh) - set(baseline)):
        if args.name_filter in name:
            print(f"warning: {name} is in the fresh report but not the baseline "
                  f"(ungated; regenerate the baseline)", file=sys.stderr)
    for name in sorted(set(baseline) - set(fresh)):
        if args.name_filter in name:
            print(f"warning: {name} is in the baseline but not the fresh report "
                  f"(ungated this run)", file=sys.stderr)

    failures = []
    for name in gated:
        ratio = fresh[name] / (baseline[name] * scale)
        status = "FAIL" if ratio > args.threshold else "ok"
        print(f"{status:4} {name}: baseline={baseline[name]:.6f}s "
              f"fresh={fresh[name]:.6f}s normalised-ratio={ratio:.2f}x")
        if ratio > args.threshold:
            failures.append((name, ratio))

    if failures:
        print(f"\nregression gate FAILED: {len(failures)} benchmark(s) exceeded "
              f"{args.threshold}x slowdown", file=sys.stderr)
        return 1
    print(f"\nregression gate passed: {len(gated)} benchmark(s) within "
          f"{args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
