"""Consistent query answering benchmark: certain answers without repairs.

Two gates, both over generated ``query_workload`` scenarios:

1. ``test_bench_cqa_correctness`` — small scale, every workload query
   (rewritable and fallback alike) answered in ``mode="certain"`` must
   equal the brute-force intersection of its answers over *every* repair
   of the dirty base instance. This is the textbook definition of certain
   answers; the bench times the production path while asserting it against
   the oracle.
2. ``test_bench_cqa_rewriting`` — full size (10^4 entities), every
   rewritable workload query must answer through first-order rewriting:
   one stratified datalog evaluation over the unrepaired tables, no repair
   ever materialised (``method == "rewriting"``, answers exact).

Set ``BENCH_SMOKE=1`` to shrink the full-size case; the correctness case
is small by construction (brute force enumerates the repair space).
"""

from __future__ import annotations

import os

from benchmarks.conftest import print_table
from repro.cqa import build_repair_space, parse_query, query_answers
from repro.cqa.enumerate import _order_key
from repro.fusion.duplicates import DuplicateDetectorConfig
from repro.quality.cfd_learning import CFDLearnerConfig
from repro.scenarios.synth import SynthConfig
from repro.service.session import WranglingSession
from repro.wrangler.config import WranglerConfig

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Ground-truth entities for the rewriting case.
ENTITIES = 600 if SMOKE else 10_000
#: Workload size for the rewriting case (shapes cycle through key lookups,
#: scans, constant filters and the self-join fallback specimen).
WORKLOAD = 8
#: The correctness case stays tiny regardless of SMOKE: its oracle
#: enumerates the full repair space of the dirty instance, and roughly half
#: the key blocks of a two-source scenario conflict somewhere — the repair
#: count is exponential in that. 16 entities keeps it at ~512 repairs while
#: every workload shape still has non-empty certain answers.
ORACLE_ENTITIES = 16
ORACLE_SEED = 1
ORACLE_WORKLOAD = 5

#: Entity-key blocking keeps duplicate detection feasible at 10^4 and the
#: learner pinned to exact FDs keeps bootstrap a single fusion pass — the
#: same full-size setup (and rationale) as benchmarks/test_bench_incremental.py.
#: The query phase under the timer never touches either knob.
FULL_CONFIG = WranglerConfig(
    duplicate_detector=DuplicateDetectorConfig(
        blocking_attributes=("sku",),
        comparison_attributes=("name", "price", "brand", "category"),
    ),
    cfd_learner=CFDLearnerConfig(min_confidence=1.0),
)


def _session(
    entities: int,
    seed: int,
    workload: int,
    config: WranglerConfig | None = None,
    **knobs,
) -> WranglingSession:
    session = WranglingSession.from_scenario(
        SynthConfig(entities=entities, seed=seed, query_workload=workload, **knobs),
        config=config,
    )
    session.run()
    return session


def _scenario_keys(session: WranglingSession) -> dict[str, tuple[str, ...]]:
    return {
        session.wrangler.target_relation: tuple(session.scenario.evaluation_key)
    }


def _brute_force_certain(query, schemas, tables, keys):
    """The textbook definition: intersect answers over *all* repairs."""
    space = build_repair_space(tables, schemas, keys, query)
    answers = None
    for change_set in space.change_sets(max_repairs=10**9):
        repaired = space.materialise(change_set)
        per_repair = set(query_answers(query, schemas, repaired))
        answers = per_repair if answers is None else answers & per_repair
    return tuple(sorted(answers or set(), key=_order_key))


def test_bench_cqa_correctness(benchmark):
    """Certain answers == brute-force repair intersection, query by query."""
    # schema_drift=0 keeps the evaluation key in every source: a drifted
    # source that drops ``sku`` collapses the instance into one giant
    # key-less block whose certain answers are vacuously empty.
    session = _session(ORACLE_ENTITIES, ORACLE_SEED, ORACLE_WORKLOAD,
                       schema_drift=0.0)
    wrangler = session.wrangler
    keys = _scenario_keys(session)
    workload = session.scenario.details["query_workload"]

    outcomes = benchmark.pedantic(
        lambda: [
            wrangler.query(entry["query"], mode="certain", keys=keys)
            for entry in workload
        ],
        rounds=1,
        iterations=1,
    )

    rows = []
    for entry, outcome in zip(workload, outcomes):
        query = parse_query(entry["query"])
        schemas, certain_tables, _repaired, _details = wrangler._query_environment(
            query
        )
        resolved = {
            relation: key for relation, key in keys.items() if relation in schemas
        }
        expected = _brute_force_certain(query, schemas, certain_tables, resolved)
        assert outcome.certain == expected, (
            f"{entry['query']}: certain answers diverge from the brute-force "
            f"repair intersection"
        )
        assert outcome.exact, f"{entry['query']}: inexact at oracle scale"
        rows.append(
            [entry["kind"], outcome.method, len(expected), str(outcome.exact)]
        )
    print_table(
        f"cqa correctness: {len(workload)} workload queries over "
        f"{ORACLE_ENTITIES} entities, all == brute force",
        ["kind", "method", "certain answers", "exact"],
        rows,
    )
    assert any(row[2] for row in rows), (
        "oracle degenerated: every certain-answer set is empty"
    )


def test_bench_cqa_rewriting(benchmark):
    """Rewritable workload queries answer without materialising a repair."""
    # schema_drift=0 for the same reason as the oracle case, plus a perf
    # one: a drifted source that drops ``sku`` merges its ~0.75n rows into
    # one NULL-key block, and the rewriting's block-mate join is quadratic
    # in block size (~56M pairs at 10^4) — a degenerate instance, not a
    # rewriting workload. With the key everywhere, blocks stay at the
    # realistic 1-3 rows and the program measures what it claims to.
    session = _session(ENTITIES, 0, WORKLOAD, config=FULL_CONFIG, schema_drift=0.0)
    wrangler = session.wrangler
    keys = _scenario_keys(session)
    rewritable = [
        entry
        for entry in session.scenario.details["query_workload"]
        if entry["rewritable"]
    ]
    assert rewritable, "workload generated no rewritable queries"

    outcomes = benchmark.pedantic(
        lambda: [
            wrangler.query(entry["query"], mode="certain", keys=keys)
            for entry in rewritable
        ],
        rounds=1,
        iterations=1,
    )

    rows = []
    for entry, outcome in zip(rewritable, outcomes):
        # The whole point: first-order rewriting over the dirty tables —
        # enumeration (and with it any repair materialisation) never runs.
        assert outcome.method == "rewriting", (
            f"{entry['query']}: fell back to {outcome.method}"
        )
        assert outcome.exact
        assert outcome.rewritable
        rows.append(
            [
                entry["kind"],
                len(outcome.certain),
                len(entry["answers"]),
            ]
        )
    print_table(
        f"cqa rewriting: {len(rewritable)} rewritable queries over "
        f"{ENTITIES} entities, zero repairs materialised",
        ["kind", "certain (dirty)", "ground truth (clean)"],
        rows,
    )
