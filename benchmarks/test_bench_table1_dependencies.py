"""Experiment E1 — Table 1: transducer input dependencies.

Reproduces the paper's Table 1 ("Example transducer input dependencies") and
extends it with the *behavioural* check the table implies: each transducer
becomes runnable exactly when the knowledge-base state satisfies its declared
dependencies. The benchmark prints the dependency table and a readiness
matrix (KB stage × transducer).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro import Wrangler, build_default_registry
from repro.context import DataContext


def readiness_matrix(scenario):
    """Build the KB in stages and record which transducers are runnable."""
    wrangler = Wrangler()
    registry = wrangler.registry
    stages: list[tuple[str, set[str]]] = []

    def snapshot(label: str) -> None:
        runnable = {t.name for t in registry.all() if t.satisfied(wrangler.kb)}
        stages.append((label, runnable))

    snapshot("empty KB")
    wrangler.add_sources(scenario.sources())
    snapshot("+ source datasets")
    wrangler.set_target_schema(scenario.target)
    snapshot("+ target schema")
    wrangler.run("bootstrap")
    snapshot("+ bootstrap results")
    wrangler.set_data_context(
        DataContext().reference(scenario.address_reference, scenario.target.name))
    snapshot("+ data context")
    wrangler.simulate_feedback(scenario.ground_truth, budget=20, seed=3)
    snapshot("+ feedback")
    return wrangler, stages


@pytest.mark.benchmark(group="table1")
def test_table1_transducer_dependencies(benchmark, bench_scenario):
    wrangler, stages = benchmark.pedantic(
        readiness_matrix, args=(bench_scenario,), rounds=1, iterations=1)

    # The paper's Table 1, regenerated from the registered transducers.
    registry = build_default_registry()
    activity_label = {
        "schema_matching": "Matching", "instance_matching": "Matching",
        "mapping_generation": "Mapping", "mapping_selection": "Mapping",
        "cfd_learning": "Quality",
    }
    rows = []
    for description in registry.describe():
        name = description["name"]
        rows.append([
            activity_label.get(name, description["activity"].title()),
            name,
            ", ".join(description["input_dependencies"]) or "(none)",
        ])
    print_table("Table 1 — transducer input dependencies",
                ["Activity", "Transducer", "Input Dependencies"], rows)

    matrix_rows = []
    all_names = [d["name"] for d in registry.describe()]
    for label, runnable in stages:
        matrix_rows.append([label] + ["yes" if name in runnable else "-" for name in all_names])
    print_table("Readiness by KB stage", ["KB state", *all_names], matrix_rows)

    # Behavioural assertions matching Table 1's rows.
    by_stage = dict(stages)
    assert "schema_matching" not in by_stage["+ source datasets"]
    assert "schema_matching" in by_stage["+ target schema"]
    assert "instance_matching" not in by_stage["+ target schema"]
    assert "instance_matching" in by_stage["+ data context"]
    assert "cfd_learning" not in by_stage["+ bootstrap results"]
    assert "cfd_learning" in by_stage["+ data context"]
    assert "mapping_generation" in by_stage["+ bootstrap results"]
    assert "mapping_selection" in by_stage["+ bootstrap results"]
    assert "mapping_evaluation" not in by_stage["+ data context"]
    assert "mapping_evaluation" in by_stage["+ feedback"]
