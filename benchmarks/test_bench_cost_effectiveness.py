"""Experiment E5 — §1's cost-effectiveness claim: VADA vs a manual ETL pipeline.

The paper motivates VADA with the cost of manual wrangling ("data scientists
may spend up to 80% of their time" on it) and positions the architecture
against classic ETL, where "skilled application developers are required to
configure individual components". This benchmark compares, across source
sizes, the number of manual configuration actions and the resulting quality
of (a) the automatic VADA bootstrap, (b) VADA after pay-as-you-go refinement
and (c) the hand-configured static ETL pipeline.

Expected shape: VADA's bootstrap needs an order of magnitude fewer manual
actions than the ETL pipeline for quality in the same ballpark, and modest
additional pay-as-you-go effort closes (or reverses) the remaining gap.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro import ScenarioConfig, Wrangler, generate_scenario
from repro.baselines import default_real_estate_etl
from repro.quality import evaluate_quality

SIZES = (100, 300, 600)


def run_comparison(properties: int):
    scenario = generate_scenario(ScenarioConfig(
        properties=properties, postcodes=max(30, properties // 6), seed=29))
    truth_key = ["postcode", "price"]

    # --- manual ETL baseline -------------------------------------------------
    etl = default_real_estate_etl()
    started = time.perf_counter()
    etl_result = etl.run({t.name: t for t in scenario.sources()}, scenario.target)
    etl_seconds = time.perf_counter() - started
    etl_quality = evaluate_quality(etl_result, reference=scenario.ground_truth,
                                   reference_key=truth_key,
                                   master=scenario.ground_truth, master_key=truth_key)

    # --- VADA bootstrap -------------------------------------------------------
    wrangler = Wrangler()
    wrangler.add_sources(scenario.sources())
    wrangler.set_target_schema(scenario.target)
    started = time.perf_counter()
    bootstrap = wrangler.run("bootstrap", ground_truth=scenario.ground_truth)
    bootstrap_seconds = time.perf_counter() - started
    bootstrap_actions = wrangler.manual_actions()

    # --- VADA pay-as-you-go refinement ---------------------------------------
    wrangler.add_reference_data(scenario.address_reference)
    wrangler.add_master_data(scenario.master)
    wrangler.run("data_context", ground_truth=scenario.ground_truth)
    wrangler.simulate_feedback(scenario.ground_truth, budget=40, seed=2)
    refined = wrangler.run("feedback", ground_truth=scenario.ground_truth)
    refined_actions = wrangler.manual_actions()

    return {
        "properties": properties,
        "etl": {"actions": etl.manual_actions(), "quality": etl_quality.overall(),
                "seconds": etl_seconds},
        "bootstrap": {"actions": bootstrap_actions, "quality": bootstrap.quality.overall(),
                      "seconds": bootstrap_seconds},
        "refined": {"actions": refined_actions, "quality": refined.quality.overall()},
    }


@pytest.mark.benchmark(group="cost")
def test_cost_effectiveness_vs_manual_etl(benchmark):
    results = benchmark.pedantic(
        lambda: [run_comparison(size) for size in SIZES], rounds=1, iterations=1)

    rows = []
    for entry in results:
        rows.append([
            entry["properties"],
            entry["etl"]["actions"], f"{entry['etl']['quality']:.4f}",
            entry["bootstrap"]["actions"], f"{entry['bootstrap']['quality']:.4f}",
            entry["refined"]["actions"], f"{entry['refined']['quality']:.4f}",
        ])
    print_table(
        "Cost-effectiveness: manual actions vs quality",
        ["properties", "ETL actions", "ETL quality",
         "VADA bootstrap actions", "bootstrap quality",
         "VADA pay-as-you-go actions", "refined quality"],
        rows)

    for entry in results:
        # Far fewer up-front manual actions than the hand-written pipeline.
        assert entry["bootstrap"]["actions"] * 3 <= entry["etl"]["actions"]
        # Bootstrap quality is already in the same ballpark as the manual ETL.
        assert entry["bootstrap"]["quality"] >= entry["etl"]["quality"] - 0.15
        # Pay-as-you-go refinement closes the gap (or overtakes the baseline)
        # while still requiring fewer decisions than writing the pipeline,
        # once feedback annotations are discounted as lightweight actions.
        assert entry["refined"]["quality"] >= entry["etl"]["quality"] - 0.05
        assert entry["refined"]["quality"] >= entry["bootstrap"]["quality"] - 0.02
