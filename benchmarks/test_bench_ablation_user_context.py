"""Experiment E6 (ablation) — §2.2: the effect of the user context on selection.

The paper stresses that "different uses of the same data set may give rise to
different user contexts" (crime-focused vs property-size-focused analysis).
This ablation runs the same wrangle under (a) no user context, (b) a
coverage-/completeness-focused context and (c) an accuracy-/consistency-
focused context, and shows how mapping selection and the criterion profile of
the result change.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro import ACCURACY, COMPLETENESS, CONSISTENCY, RELEVANCE, UserContext, Wrangler


def coverage_context() -> UserContext:
    context = UserContext()
    context.prefer(COMPLETENESS("crimerank"), ACCURACY("type"), "very strongly")
    context.prefer(RELEVANCE(), ACCURACY("type"), "strongly")
    context.prefer(COMPLETENESS("bedrooms"), CONSISTENCY(), "moderately")
    return context


def precision_context() -> UserContext:
    context = UserContext()
    context.prefer(ACCURACY(), COMPLETENESS("crimerank"), "very strongly")
    context.prefer(CONSISTENCY(), RELEVANCE(), "strongly")
    context.prefer(ACCURACY("bedrooms"), COMPLETENESS("description"), "moderately")
    return context


def run_with_context(scenario, user_context: UserContext | None):
    wrangler = Wrangler()
    wrangler.add_sources(scenario.sources())
    wrangler.set_target_schema(scenario.target)
    wrangler.run("bootstrap")
    wrangler.add_reference_data(scenario.address_reference)
    wrangler.add_master_data(scenario.master)
    wrangler.run("data_context")
    if user_context is not None:
        wrangler.set_user_context(user_context)
    outcome = wrangler.run("user_context", ground_truth=scenario.ground_truth)
    return wrangler, outcome


@pytest.mark.benchmark(group="ablation-user-context")
def test_user_context_drives_mapping_selection(benchmark, bench_scenario):
    def run_all():
        return {
            "uniform (no user context)": run_with_context(bench_scenario, None),
            "coverage-focused": run_with_context(bench_scenario, coverage_context()),
            "precision-focused": run_with_context(bench_scenario, precision_context()),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, (wrangler, outcome) in results.items():
        quality = outcome.quality
        rows.append([
            label,
            outcome.selected_mapping.mapping_id,
            outcome.row_count,
            f"{quality.completeness:.3f}",
            f"{quality.accuracy:.3f}",
            f"{quality.relevance:.3f}",
        ])
    print_table("User-context ablation — selection and criterion profile",
                ["user context", "selected mapping", "rows", "compl", "acc", "relev"], rows)

    uniform = results["uniform (no user context)"][1]
    coverage = results["coverage-focused"][1]
    precision = results["precision-focused"][1]

    # The coverage-focused user is served by a result that is at least as
    # complete/broad as the precision-focused user's result, and vice versa
    # for accuracy. (Ties are possible when one mapping dominates outright.)
    assert coverage.quality.completeness * coverage.row_count >= \
        precision.quality.completeness * precision.row_count - 1e-9
    assert precision.quality.accuracy >= coverage.quality.accuracy - 0.02

    # The user-weighted score under each context is at least as good as the
    # uniform selection evaluated under that same context.
    coverage_weights = coverage_context().dimension_weights()
    precision_weights = precision_context().dimension_weights()
    assert coverage.quality.overall(coverage_weights) >= \
        uniform.quality.overall(coverage_weights) - 0.02
    assert precision.quality.overall(precision_weights) >= \
        uniform.quality.overall(precision_weights) - 0.02
