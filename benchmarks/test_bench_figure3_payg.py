"""Experiment E3 — Figure 3 / §3 steps 1–4: pay-as-you-go wrangling.

Runs the four demonstration stages (automatic bootstrapping, + data context,
+ feedback, + user context) and prints the quality series after each stage.
Expected shape (not absolute numbers): the uniformly-weighted overall score
is non-decreasing across stages 1→3, and stage 4 improves (or preserves) the
*user-weighted* score by re-selecting mappings under the stated priorities.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro import ACCURACY, COMPLETENESS, CONSISTENCY, UserContext, Wrangler

FEEDBACK_BUDGET = 120


def paper_user_context() -> UserContext:
    context = UserContext()
    context.prefer(COMPLETENESS("crimerank"), ACCURACY("type"),
                   "very strongly more important than")
    context.prefer(CONSISTENCY(), COMPLETENESS("bedrooms"),
                   "strongly more important than")
    context.prefer(COMPLETENESS("street"), COMPLETENESS("postcode"),
                   "moderately more important than")
    return context


def run_pay_as_you_go(scenario):
    """The four stages of the demonstration (§3)."""
    wrangler = Wrangler()
    wrangler.add_sources(scenario.sources())
    wrangler.set_target_schema(scenario.target)
    stages = []

    stages.append(wrangler.run("bootstrap", ground_truth=scenario.ground_truth))

    wrangler.add_reference_data(scenario.address_reference)
    wrangler.add_master_data(scenario.master)
    stages.append(wrangler.run("data_context", ground_truth=scenario.ground_truth))

    wrangler.simulate_feedback(scenario.ground_truth, budget=FEEDBACK_BUDGET, seed=1)
    stages.append(wrangler.run("feedback", ground_truth=scenario.ground_truth))

    context = paper_user_context()
    wrangler.set_user_context(context)
    stages.append(wrangler.run("user_context", ground_truth=scenario.ground_truth))
    return wrangler, context, stages


@pytest.mark.benchmark(group="figure3")
def test_figure3_pay_as_you_go(benchmark, bench_scenario):
    wrangler, context, stages = benchmark.pedantic(
        run_pay_as_you_go, args=(bench_scenario,), rounds=1, iterations=1)

    weights = context.dimension_weights()
    rows = []
    for stage in stages:
        quality = stage.quality
        rows.append([
            stage.phase,
            stage.selected_mapping.mapping_id,
            stage.row_count,
            f"{quality.completeness:.3f}",
            f"{quality.accuracy:.3f}",
            f"{quality.consistency:.3f}",
            f"{quality.relevance:.3f}",
            f"{quality.overall():.4f}",
            f"{quality.overall(weights):.4f}",
            stage.steps_executed,
        ])
    print_table(
        "Figure 3 — pay-as-you-go stages (quality vs ground truth)",
        ["stage", "selected mapping", "rows", "compl", "acc", "cons", "relev",
         "overall(uniform)", "overall(user)", "steps"],
        rows)

    slack = 0.02
    overall = [stage.quality.overall() for stage in stages]
    assert overall[1] >= overall[0] - slack, "data context must not hurt overall quality"
    assert overall[2] >= overall[1] - slack, "feedback must not hurt overall quality"
    user_weighted = [stage.quality.overall(weights) for stage in stages]
    assert user_weighted[3] >= user_weighted[2] - slack, \
        "user context must not hurt the user-weighted score"
    # pay-as-you-go: the final result is better than the automatic bootstrap
    assert max(overall[1:3]) > overall[0]
    # every stage actually did work the first time new information arrived
    assert all(stage.steps_executed > 0 for stage in stages[:3])
