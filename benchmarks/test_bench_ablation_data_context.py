"""Experiment E7 (ablation) — §2.3: the effect of the data context.

Sweeps the coverage of the Address reference list (0% … 100% of postcodes)
and reports result quality after CFD learning and repair. Expected shape:
consistency/accuracy improve monotonically (with diminishing returns) as
more reference data is provided — the paper's "the more information is
provided by the user, the better the outcome".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro import ScenarioConfig, Wrangler, generate_scenario

COVERAGES = (0.0, 0.25, 0.5, 1.0)


def run_with_reference_coverage(coverage: float):
    scenario = generate_scenario(ScenarioConfig(
        properties=400, postcodes=80, seed=31, address_coverage=coverage))
    wrangler = Wrangler()
    wrangler.add_sources(scenario.sources())
    wrangler.set_target_schema(scenario.target)
    wrangler.run("bootstrap")
    if len(scenario.address_reference) > 0:
        wrangler.add_reference_data(scenario.address_reference)
    outcome = wrangler.run("data_context", ground_truth=scenario.ground_truth)
    repairs = wrangler.kb.count("repair")
    cfds = wrangler.kb.count("cfd")
    return {
        "coverage": coverage,
        "reference_rows": len(scenario.address_reference),
        "cfds": cfds,
        "repairs": repairs,
        "quality": outcome.quality,
    }


@pytest.mark.benchmark(group="ablation-data-context")
def test_reference_data_coverage_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: [run_with_reference_coverage(c) for c in COVERAGES], rounds=1, iterations=1)

    rows = []
    for entry in results:
        quality = entry["quality"]
        rows.append([
            f"{entry['coverage']:.0%}",
            entry["reference_rows"],
            entry["cfds"],
            entry["repairs"],
            f"{quality.accuracy:.3f}",
            f"{quality.completeness:.3f}",
            f"{quality.overall():.4f}",
        ])
    print_table("Data-context ablation — Address reference coverage sweep",
                ["coverage", "reference rows", "learned CFDs", "repairs",
                 "accuracy", "completeness", "overall"], rows)

    # No data context → no CFDs, no repairs.
    assert results[0]["cfds"] == 0
    assert results[0]["repairs"] == 0
    # Full coverage learns CFDs and performs repairs.
    assert results[-1]["cfds"] > 0
    assert results[-1]["repairs"] > 0
    # More reference data never hurts the overall score (small slack), and
    # full coverage beats no coverage outright.
    overall = [entry["quality"].overall() for entry in results]
    for before, after in zip(overall, overall[1:]):
        assert after >= before - 0.02
    assert overall[-1] > overall[0]
    # Repairs grow with coverage.
    assert results[-1]["repairs"] >= results[1]["repairs"]
