"""Service-overhead benchmark: the job API must not tax the feedback loop.

ISSUE 6 moves the pay-as-you-go loop behind persistent sessions and an
async job queue (:mod:`repro.service`). The promise is that the service
layer is *plumbing* — typed-request codec, queue hop, worker thread — and
the wrangling work dominates. This bench drives identical simulated
feedback rounds through two paths over twin sessions of the same scenario:

- **direct**: ``WranglingSession.handle`` called in-process (the plain
  incremental-wrangler loop with the request codec but no queue), and
- **queued**: ``BackgroundService.perform`` (submit → queue → worker
  thread → poll), the same machinery the HTTP front end runs on.

Both sides are recorded as benchmarks so the committed baseline
(``baselines/BENCH_service.json``) pins them for the nightly gate, and the
ratio assert bounds the overhead at 1.5x (2.5x under ``BENCH_SMOKE=1``,
where tiny rounds make fixed queue costs loom large). Because the twin
sessions share seeds, the bench also asserts the queued path computes
bit-identical results — overhead must be the *only* difference.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import print_table
from repro.service.api import RunRequest, SimulateRequest
from repro.service.jobs import BackgroundService
from repro.service.session import SessionStore, WranglingSession
from repro.scenarios.synth import SynthConfig
from repro.wrangler.config import WranglerConfig

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Ground-truth entities per session (result volume ~1.5x with two sources).
ENTITIES = 400 if SMOKE else 2_500
#: Simulated feedback rounds per side.
ROUNDS = 2 if SMOKE else 4
#: Annotations per round — ~1% of the result rows.
BUDGET = max(1, (ENTITIES * 3 // 2) // 100)
#: Maximum queued/direct wall-clock ratio. Smoke rounds are tiny, so the
#: fixed submit/poll/thread-hop costs dominate and get a looser ceiling;
#: the full-size bound is the ISSUE 6 acceptance bar.
MAX_OVERHEAD = 2.5 if SMOKE else 1.5

SCENARIO = SynthConfig(entities=ENTITIES, sources=2, noise=0.1,
                       missing=0.05, seed=29)


def _fresh_session() -> WranglingSession:
    """A bootstrapped session; twin calls produce identical state."""
    session = WranglingSession.from_scenario(
        SCENARIO, config=WranglerConfig(), name="bench")
    session.handle(RunRequest(phase="bootstrap"))
    return session


def _round(index: int) -> SimulateRequest:
    # Pin the seed per round so the direct and queued twins annotate the
    # same cells regardless of how many requests each has served.
    return SimulateRequest(budget=BUDGET, seed=1000 + index)


def _run_direct(session: WranglingSession) -> list[float]:
    laps = []
    for index in range(ROUNDS):
        started = time.perf_counter()
        session.handle(_round(index))
        laps.append(time.perf_counter() - started)
    return laps


def _run_queued(session: WranglingSession,
                service: BackgroundService) -> list[float]:
    laps = []
    for index in range(ROUNDS):
        started = time.perf_counter()
        service.perform(session.session_id, _round(index))
        laps.append(time.perf_counter() - started)
    return laps


def test_bench_service_direct(benchmark):
    """Feedback rounds through in-process WranglingSession.handle."""
    session = _fresh_session()
    laps = benchmark.pedantic(lambda: _run_direct(session),
                              rounds=1, iterations=1)
    assert len(laps) == ROUNDS


def test_bench_service_queued(benchmark):
    """The same rounds through the BackgroundService job queue."""
    store = SessionStore()
    session = _fresh_session()
    store.add(session)
    with BackgroundService(store, workers=1) as service:
        laps = benchmark.pedantic(lambda: _run_queued(session, service),
                                  rounds=1, iterations=1)
    assert len(laps) == ROUNDS


def test_service_overhead_bounded():
    """Queued vs direct: identical results, bounded wall-clock ratio."""
    direct = _fresh_session()
    queued = _fresh_session()
    assert direct.fingerprint() == queued.fingerprint()

    direct_laps = _run_direct(direct)
    store = SessionStore()
    store.add(queued)
    with BackgroundService(store, workers=1) as service:
        queued_laps = _run_queued(queued, service)

    # The queue must be invisible in the data: same annotations, same rows.
    assert direct.fingerprint() == queued.fingerprint()

    direct_total = sum(direct_laps)
    queued_total = sum(queued_laps)
    ratio = queued_total / max(direct_total, 1e-9)
    rows = [
        [index + 1, f"{d:.3f}", f"{q:.3f}", f"{q / max(d, 1e-9):.2f}x"]
        for index, (d, q) in enumerate(zip(direct_laps, queued_laps))
    ]
    rows.append(["total", f"{direct_total:.3f}", f"{queued_total:.3f}",
                 f"{ratio:.2f}x"])
    print_table(
        f"Service overhead: queued {queued_total:.2f}s / direct "
        f"{direct_total:.2f}s = {ratio:.2f}x (budget {MAX_OVERHEAD}x)",
        ["round", "direct s", "queued s", "ratio"], rows)
    assert ratio <= MAX_OVERHEAD, (
        f"job-queue overhead is {ratio:.2f}x wall-clock "
        f"(queued {queued_total:.2f}s, direct {direct_total:.2f}s); "
        f"budget is {MAX_OVERHEAD}x")
