"""Micro-benchmarks for hash-indexed join evaluation in the Vadalog reasoner.

Three workloads exercise the index paths the architecture leans on:

- **transitive closure** — recursion; delta relations must be indexed or
  every round re-scans the whole ``edge`` relation;
- **mapping selection** — the multi-way join + comparison shape of the
  mapping-selection transducer's dependency views;
- **negation-heavy** — stratified negation, probing the full-width index.

Sizes span 10²–10⁵ tuples. The indexed engine is timed with
pytest-benchmark at every size; the A/B tests additionally run the
``indexed=False`` escape hatch, assert byte-identical models/query answers,
and assert the ≥10× speedup at the largest A/B size (the naive engine is
quadratic, so it is only exercised at sizes where it finishes in seconds).

Set ``BENCH_SMOKE=1`` (the CI bench job does) to restrict every workload to
the small sizes.

A calibration benchmark measuring a fixed pure-Python workload is included
so that ``benchmarks/check_regression.py`` can normalise means across
machines of different speeds.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datalog import Database, Engine, Program

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Tuple counts for indexed-only timing (the naive engine never sees these).
INDEXED_SIZES = [100, 1_000, 10_000] if SMOKE else [100, 1_000, 10_000, 100_000]
#: Tuple counts for the indexed-vs-naive A/B comparison.
AB_SIZES = [100, 300] if SMOKE else [100, 1_000]
#: Required speedup at the largest A/B size.
MIN_SPEEDUP = 2.0 if SMOKE else 10.0

TC_PROGRAM = """
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
"""

MAPPING_PROGRAM = """
viable(M, R) :- candidate(M, R), score(M, S), S >= 600, profile(R, Q), Q >= 300.
selected(M) :- viable(M, R), target(R).
"""

NEGATION_PROGRAM = """
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
blocked(X) :- reach(X, Y), bad(Y).
clean(X) :- node(X), not blocked(X).
isolated(X) :- node(X), not reach(X, X), not blocked(X).
"""


def chain_edges(n: int, depth: int = 5) -> dict[str, list[tuple]]:
    """``n`` edge tuples arranged as disjoint chains of length ``depth``."""
    rows = []
    for chain in range(max(1, n // depth)):
        for step in range(depth):
            rows.append((f"n{chain}_{step}", f"n{chain}_{step + 1}"))
    return {"edge": rows[:n] if len(rows) >= n else rows}

def mapping_relations(n: int) -> dict[str, list[tuple]]:
    """A mapping-selection shaped EDB with ``~n`` tuples across 4 relations."""
    quarter = max(1, n // 4)
    candidates = [(f"m{i}", f"rel{i % (quarter // 4 + 1)}") for i in range(quarter)]
    scores = [(f"m{i}", (i * 37) % 1000) for i in range(quarter)]
    profiles = [(f"rel{i}", (i * 53) % 1000) for i in range(quarter)]
    targets = [(f"rel{i}",) for i in range(0, quarter, 3)]
    return {"candidate": candidates, "score": scores,
            "profile": profiles, "target": targets}

def negation_relations(n: int) -> dict[str, list[tuple]]:
    """Chain edges plus node/bad relations for the negation workload."""
    edb = chain_edges(max(1, n * 2 // 3), depth=4)
    nodes = sorted({v for row in edb["edge"] for v in row})
    edb["node"] = [(v,) for v in nodes]
    edb["bad"] = [(v,) for i, v in enumerate(nodes) if i % 11 == 0]
    return edb


WORKLOADS = {
    "transitive_closure": (TC_PROGRAM, chain_edges, "tc(X, Y)"),
    "mapping_selection": (MAPPING_PROGRAM, mapping_relations, "selected(M)"),
    "negation_heavy": (NEGATION_PROGRAM, negation_relations, "clean(X)"),
}


def _snapshot(model: Database) -> dict[str, list[tuple]]:
    """A deterministic, comparable rendering of a full model."""
    return {predicate: sorted(model.relation(predicate), key=repr)
            for predicate in model.predicates()}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("size", INDEXED_SIZES)
def test_datalog_join(benchmark, workload: str, size: int):
    """Time the indexed engine across workloads and sizes."""
    text, generate, _goal = WORKLOADS[workload]
    program = Program.parse(text)
    edb = generate(size)
    rounds = 1 if size >= 10_000 else 3
    model = benchmark.pedantic(
        lambda: Engine(program, indexed=True).run(edb), rounds=rounds, iterations=1)
    assert model.count() > 0


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_indexed_matches_naive(workload: str):
    """Both engine modes produce byte-identical models and query answers,
    and the index pays off ≥``MIN_SPEEDUP``× at the largest A/B size."""
    text, generate, goal = WORKLOADS[workload]
    program = Program.parse(text)
    timings: dict[int, tuple[float, float]] = {}
    for size in AB_SIZES:
        edb = generate(size)
        started = time.perf_counter()
        indexed_engine = Engine(program, indexed=True)
        indexed_model = indexed_engine.run(edb)
        indexed_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        naive_engine = Engine(program, indexed=False)
        naive_model = naive_engine.run(edb)
        naive_elapsed = time.perf_counter() - started
        assert _snapshot(indexed_model) == _snapshot(naive_model)
        assert (indexed_engine.query(goal, database=indexed_model)
                == naive_engine.query(goal, database=naive_model))
        timings[size] = (indexed_elapsed, naive_elapsed)
    largest = max(AB_SIZES)
    indexed_elapsed, naive_elapsed = timings[largest]
    speedup = naive_elapsed / max(indexed_elapsed, 1e-9)
    print(f"\n[{workload}] size={largest}: indexed={indexed_elapsed:.4f}s "
          f"naive={naive_elapsed:.4f}s speedup={speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"{workload}: expected >= {MIN_SPEEDUP}x speedup at size {largest}, "
        f"got {speedup:.1f}x (indexed {indexed_elapsed:.4f}s vs naive {naive_elapsed:.4f}s)")


def test_bench_calibration(benchmark):
    """A fixed pure-Python workload used to normalise across machines.

    ``check_regression.py`` divides every datalog-join mean by this
    benchmark's mean before comparing against the committed baseline, so a
    uniformly slower CI machine does not trip the regression gate.
    """
    def workload() -> int:
        table = {(i % 97, i % 89): i for i in range(20_000)}
        total = 0
        for i in range(20_000):
            total += table.get((i % 97, i % 89), 0)
        return total

    assert benchmark(workload) > 0
