"""Provenance-overhead guard: lineage tracking must stay cheap.

The provenance subsystem (:mod:`repro.provenance`) records why-provenance
for every materialised tuple; the design promise is that the compact
representation (interned refs, one shared cell-source map per mapping,
sparse per-cell overrides) keeps the overhead *bounded*. This bench runs the
same batch-scenario suite with tracking on and off and asserts the on/off
wall-clock ratio stays under 2x — the budget ISSUE 3 commits to. Both sides
are recorded as benchmarks so the committed baseline
(``baselines/BENCH_provenance.json``) pins them for the nightly gate.

Set ``BENCH_SMOKE=1`` to shrink the scenarios (the ratio assert still runs:
it compares the two modes against each other, so machine speed cancels out;
smoke sizes get a relaxed ceiling because fixed per-scenario costs dominate
tiny runs).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import print_table
from repro.scenarios.synth import scenario_suite
from repro.wrangler.batch import BatchConfig, run_batch
from repro.wrangler.config import WranglerConfig

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Ground-truth entities per generated scenario.
ENTITIES = 80 if SMOKE else 250
#: Scenario variants per family (all registered families take part).
PER_FAMILY = 1 if SMOKE else 2
#: Simulated feedback annotations per scenario — exercises the lineage-
#: targeted assimilation path, not just recording.
FEEDBACK_BUDGET = 5 if SMOKE else 20
#: Maximum allowed tracking overhead (wall-clock ratio on/off). Tiny smoke
#: scenarios are dominated by fixed per-scenario costs, so the smoke ceiling
#: is looser; the full-size bound is the ISSUE 3 budget.
MAX_OVERHEAD = 2.5 if SMOKE else 2.0


def provenance_suite():
    """The scenario suite shared by both sides of the A/B."""
    return scenario_suite(per_family=PER_FAMILY, seed=23, entities=ENTITIES)


def _run(track: bool):
    return run_batch(
        provenance_suite(),
        BatchConfig(executor="serial", feedback_budget=FEEDBACK_BUDGET,
                    wrangler=WranglerConfig(track_provenance=track)),
    )


def test_bench_provenance_on(benchmark):
    """Batch wall-clock with lineage tracking enabled (the default)."""
    report = benchmark.pedantic(lambda: _run(True), rounds=1, iterations=1)
    assert not report.failed, [result.error for result in report.failed]
    for result in report.results:
        assert result.provenance is not None
        assert result.provenance["tuples"] == result.rows


def test_bench_provenance_off(benchmark):
    """Batch wall-clock with lineage tracking disabled (the off-switch)."""
    report = benchmark.pedantic(lambda: _run(False), rounds=1, iterations=1)
    assert not report.failed, [result.error for result in report.failed]
    assert all(result.provenance is None for result in report.results)


def test_provenance_overhead_bounded():
    """Tracking on vs off: same results, wall-clock ratio under the budget."""
    started = time.perf_counter()
    tracked = _run(True)
    tracked_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    untracked = _run(False)
    untracked_elapsed = time.perf_counter() - started

    assert not tracked.failed, [result.error for result in tracked.failed]
    assert not untracked.failed, [result.error for result in untracked.failed]
    # Lineage is an annotation layer: it must not change the data produced.
    assert tracked.fingerprints() == untracked.fingerprints()

    ratio = tracked_elapsed / max(untracked_elapsed, 1e-9)
    rows = [
        [result.name, result.rows,
         result.provenance["tuples"], result.provenance["cell_overrides"],
         f"{result.seconds:.2f}"]
        for result in tracked.results
    ]
    print_table(
        f"Provenance overhead: on {tracked_elapsed:.2f}s / off "
        f"{untracked_elapsed:.2f}s = {ratio:.2f}x (budget {MAX_OVERHEAD}x)",
        ["scenario", "rows", "tracked tuples", "cell overrides", "seconds"],
        rows)
    assert ratio <= MAX_OVERHEAD, (
        f"provenance tracking costs {ratio:.2f}x wall-clock "
        f"(on {tracked_elapsed:.2f}s, off {untracked_elapsed:.2f}s); "
        f"budget is {MAX_OVERHEAD}x")
