"""Experiment E4 — Figure 1: the architecture's dynamic orchestration.

Exercises the orchestration machinery behind Figure 1: how many transducer
executions each pay-as-you-go stage triggers, which re-runs are caused by new
context/feedback, and how the generic network transducer compares with the
paper's example of a more specific policy (prefer instance-level matchers).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro import Wrangler
from repro.core.orchestrator import GenericNetworkTransducer, PreferInstanceMatchingPolicy


def run_with_policy(scenario, policy):
    wrangler = Wrangler(policy=policy)
    wrangler.add_sources(scenario.sources())
    wrangler.set_target_schema(scenario.target)
    wrangler.run("bootstrap")
    wrangler.add_reference_data(scenario.address_reference)
    wrangler.run("data_context")
    wrangler.simulate_feedback(scenario.ground_truth, budget=40, seed=9)
    wrangler.run("feedback")
    return wrangler


@pytest.mark.benchmark(group="figure1")
def test_figure1_dynamic_orchestration(benchmark, bench_scenario):
    wrangler = benchmark.pedantic(
        run_with_policy, args=(bench_scenario, GenericNetworkTransducer()),
        rounds=1, iterations=1)
    trace = wrangler.trace

    print_table("Executions per transducer (generic policy)",
                ["transducer", "executions"],
                [[name, count] for name, count in sorted(trace.execution_counts().items())])
    print_table("Executions per phase", ["phase", "steps", "facts added"], [
        [phase, len(trace.steps_in_phase(phase)),
         sum(step.facts_added for step in trace.steps_in_phase(phase))]
        for phase in ("bootstrap", "data_context", "feedback")])
    print_table("Re-runs triggered by new information", ["transducer", "re-runs"],
                [[name, count] for name, count in sorted(trace.reruns().items())])

    counts = trace.execution_counts()
    # dynamic behaviour: downstream components re-ran when context/feedback arrived
    assert trace.reruns().get("mapping_generation", 0) >= 1
    assert trace.reruns().get("result_materialisation", 0) >= 1
    assert counts.get("instance_matching", 0) >= 1
    assert counts.get("mapping_evaluation", 0) >= 1
    # every phase executed at least one transducer
    assert all(len(trace.steps_in_phase(p)) > 0
               for p in ("bootstrap", "data_context", "feedback"))


@pytest.mark.benchmark(group="figure1")
def test_figure1_policy_comparison(benchmark, bench_scenario):
    """Generic vs specific network transducer (paper §2.4)."""
    def run_both():
        generic = run_with_policy(bench_scenario, GenericNetworkTransducer())
        specific = run_with_policy(bench_scenario, PreferInstanceMatchingPolicy())
        return generic, specific

    generic, specific = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, wrangler in (("generic", generic), ("prefer_instance_matching", specific)):
        trace = wrangler.trace
        quality = wrangler.evaluate(ground_truth=bench_scenario.ground_truth)
        rows.append([label, len(trace), f"{trace.total_duration():.3f}s",
                     f"{quality.overall():.4f}"])
    print_table("Network-transducer policies", ["policy", "steps", "time", "overall quality"],
                rows)

    # Both policies orchestrate to a result of comparable quality; the policy
    # changes the order (and possibly the number) of executions, not the
    # dependency-driven outcome.
    generic_quality = generic.evaluate(ground_truth=bench_scenario.ground_truth).overall()
    specific_quality = specific.evaluate(ground_truth=bench_scenario.ground_truth).overall()
    assert abs(generic_quality - specific_quality) < 0.1

    # The specific policy runs the instance matcher no later (in step index)
    # than the generic one once it is runnable.
    def first_index(wrangler, name):
        for step in wrangler.trace:
            if step.transducer == name:
                return step.index
        return None

    specific_first = first_index(specific, "instance_matching")
    generic_first = first_index(generic, "instance_matching")
    assert specific_first is not None and generic_first is not None
