"""Incremental re-wrangling benchmark: the feedback loop must be cheap.

The cost-effectiveness story of the paper rests on cheap iteration: a user
annotates a handful of result cells and the system revises. With the full
pipeline, every round re-materialises, re-detects, re-fuses and re-repairs
every tuple — twice, once before and once after feedback assimilation. The
incremental engine (:mod:`repro.incremental`) patches only the dirty rows.

This bench runs ``ROUNDS`` feedback rounds touching ≤1% of the rows of a
10^4-entity scenario through both paths, via the validation harness — so
every benchmark case *also* asserts ``incremental == full re-run`` row for
row, round after round (``repro.incremental.validate``'s ``--check``
contract). The asserted speedup is ≥5x at full size.

Two workloads: ``product_catalog`` (fusion-heavy: entity-key blocking, many
duplicate clusters) and ``shipment_tracking`` (join-heavy: depot attributes
arrive only through a lookup join — the family added for exactly this
bench).

Set ``BENCH_SMOKE=1`` to shrink the scenarios; the speedup assert then uses
a relaxed floor (fixed per-round costs dominate tiny runs), while the
equality assert stays exact.
"""

from __future__ import annotations

import os

from benchmarks.conftest import print_table
from repro.fusion.duplicates import DuplicateDetectorConfig
from repro.incremental.validate import ValidationReport, check_incremental
from repro.quality.cfd_learning import CFDLearnerConfig
from repro.scenarios.synth import SynthConfig
from repro.wrangler.config import WranglerConfig

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Ground-truth entities (result volume is ~1.5x with two sources).
ENTITIES = 600 if SMOKE else 10_000
#: Feedback rounds per case.
ROUNDS = 2 if SMOKE else 3
#: Annotations per round — ≤1% of the result rows.
BUDGET = max(1, (ENTITIES * 3 // 2) // 100)
#: Required full/incremental wall-clock ratio. Tiny smoke scenarios are
#: dominated by fixed per-round costs (evaluation transducers, cached
#: re-scoring), so the smoke floor is relaxed; the full-size floor is the
#: ISSUE 4 acceptance bar.
MIN_SPEEDUP = 1.3 if SMOKE else 5.0

#: Per-family wrangler configs. The generic families carry no postcode, so
#: detection blocks on the entity key — without it, pair scoring is
#: quadratic and no path is feasible at 10^4. product_catalog additionally
#: pins the CFD learner to exact dependencies: namespacing CFD ids by
#: context table (ISSUE 5) activated approximate master-data FDs such as
#: ``name → sku`` whose witnesses previously collided into no-ops, and with
#: them the scenario legitimately fuses in two cascaded passes at 10^4 — a
#: shape the patch engine hands to the full pipeline by design. The exact
#: FDs keep the canonical ``sku → name/price`` repairs (fusion stays heavy)
#: while the bench keeps exercising the patch path it is gating.
CASES = {
    "product_catalog": WranglerConfig(
        duplicate_detector=DuplicateDetectorConfig(
            blocking_attributes=("sku",),
            comparison_attributes=("name", "price", "brand", "category"),
        ),
        cfd_learner=CFDLearnerConfig(min_confidence=1.0),
    ),
    "shipment_tracking": WranglerConfig(
        duplicate_detector=DuplicateDetectorConfig(
            blocking_attributes=("tracking_id",),
            comparison_attributes=("dest_city", "weight_kg", "carrier", "status"),
        ),
    ),
}


def _run_case(family: str) -> ValidationReport:
    return check_incremental(
        SynthConfig(family=family, entities=ENTITIES, seed=0),
        rounds=ROUNDS,
        budget=BUDGET,
        wrangler_config=CASES[family],
    )


def _assert_case(report: ValidationReport) -> None:
    # The speedup claim is only meaningful if the cheap path computes the
    # same thing: every round must be row-for-row equal to the full re-run.
    assert report.ok, f"incremental != full re-run: {report.describe()}"
    assert report.patched_rounds == len(report.rounds), (
        f"expected every round patched, got {report.describe()}"
    )
    rows = [
        [
            check.round,
            check.annotations,
            check.rows_full,
            f"{check.seconds_incremental:.3f}",
            f"{check.seconds_full:.3f}",
            f"{check.seconds_full / max(check.seconds_incremental, 1e-9):.1f}x",
        ]
        for check in report.rounds
    ]
    print_table(
        f"{report.scenario}: {BUDGET} annotations/round (≤1% of rows), "
        f"speedup {report.speedup():.2f}x (floor {MIN_SPEEDUP}x)",
        ["round", "annotations", "rows", "incremental s", "full s", "ratio"],
        rows,
    )
    assert report.speedup() >= MIN_SPEEDUP, (
        f"incremental speedup {report.speedup():.2f}x is below the "
        f"{MIN_SPEEDUP}x floor: {report.describe()}"
    )


def test_bench_incremental_product_catalog(benchmark):
    """Fusion-heavy feedback loop: both paths, equality-checked."""
    report = benchmark.pedantic(
        lambda: _run_case("product_catalog"), rounds=1, iterations=1
    )
    _assert_case(report)


def test_bench_incremental_shipment_tracking(benchmark):
    """Join-heavy feedback loop: both paths, equality-checked."""
    report = benchmark.pedantic(
        lambda: _run_case("shipment_tracking"), rounds=1, iterations=1
    )
    _assert_case(report)
