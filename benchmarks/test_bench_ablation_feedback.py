"""Experiment E8 (ablation) — §2.3/§3 step 3: the effect of feedback volume.

Sweeps the feedback budget (number of annotated cells) and reports the
resulting accuracy and the number of match-score revisions. Expected shape:
accuracy is non-decreasing in the budget (more annotations → more wrong
values removed and stronger match-score evidence), with diminishing returns.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro import ScenarioConfig, Wrangler, generate_scenario

BUDGETS = (0, 25, 50, 100, 200)


def run_with_feedback_budget(budget: int):
    scenario = generate_scenario(ScenarioConfig(properties=400, postcodes=80, seed=37))
    wrangler = Wrangler()
    wrangler.add_sources(scenario.sources())
    wrangler.set_target_schema(scenario.target)
    wrangler.run("bootstrap")
    wrangler.add_reference_data(scenario.address_reference)
    wrangler.run("data_context", ground_truth=scenario.ground_truth)
    if budget > 0:
        wrangler.simulate_feedback(scenario.ground_truth, budget=budget, seed=3)
    outcome = wrangler.run("feedback", ground_truth=scenario.ground_truth)
    feedback_facts = wrangler.kb.count("feedback")
    return {
        "budget": budget,
        "annotations": feedback_facts,
        "quality": outcome.quality,
        "evaluations": wrangler.trace.execution_counts().get("mapping_evaluation", 0),
    }


@pytest.mark.benchmark(group="ablation-feedback")
def test_feedback_budget_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: [run_with_feedback_budget(b) for b in BUDGETS], rounds=1, iterations=1)

    rows = []
    for entry in results:
        quality = entry["quality"]
        rows.append([
            entry["budget"],
            entry["annotations"],
            entry["evaluations"],
            f"{quality.accuracy:.3f}",
            f"{quality.completeness:.3f}",
            f"{quality.overall():.4f}",
        ])
    print_table("Feedback ablation — annotation budget sweep",
                ["budget", "annotations", "mapping evaluations",
                 "accuracy", "completeness", "overall"], rows)

    accuracy = [entry["quality"].accuracy for entry in results]
    # Accuracy is non-decreasing in the feedback budget (small slack for the
    # re-materialisation churn at tiny budgets).
    for before, after in zip(accuracy, accuracy[1:]):
        assert after >= before - 0.01
    # A substantial budget visibly improves accuracy over no feedback.
    assert accuracy[-1] > accuracy[0]
    # Feedback actually triggered the evaluation transducer when present.
    assert results[0]["evaluations"] == 0
    assert all(entry["evaluations"] >= 1 for entry in results[1:])
