"""Unit tests for profiling, CFDs, CFD learning, metrics, repair and quality transducers."""

from __future__ import annotations

import pytest

from repro.core import KnowledgeBase, Predicates
from repro.quality import (
    CFD,
    CFD_ARTIFACT_KEY,
    CFDLearner,
    CFDLearnerConfig,
    CFDLearningTransducer,
    CFDRepairer,
    DataRepairTransducer,
    QualityMetricTransducer,
    accuracy_against_reference,
    attribute_completeness,
    build_witness,
    candidate_keys,
    consistency,
    discover_functional_dependencies,
    evaluate_quality,
    find_violations,
    functional_dependency_confidence,
    profile_column,
    profile_table,
    relevance,
    table_completeness,
    value_overlap,
)
from repro.relational import Attribute, DataType, Schema, Table

ADDRESS_SCHEMA = Schema("address", [
    Attribute("street", DataType.STRING),
    Attribute("city", DataType.STRING),
    Attribute("postcode", DataType.STRING),
])

ADDRESSES = Table(ADDRESS_SCHEMA, [
    ("Oak Street", "Manchester", "M1 1AA"),
    ("Oak Street", "Manchester", "M1 1AB"),
    ("Elm Road", "Salford", "M5 3CC"),
    ("Elm Road", "Salford", "M5 3CD"),
    ("Mill Lane", "Stockport", "SK1 2EF"),
] * 6)  # repetition gives constant patterns enough support

PROPERTY_SCHEMA = Schema("property_result", [
    Attribute("street", DataType.STRING),
    Attribute("postcode", DataType.STRING),
    Attribute("price", DataType.FLOAT),
    Attribute("bedrooms", DataType.INTEGER),
])


class TestProfiling:
    def test_column_profile(self, person_table):
        profile = profile_column(person_table, "age")
        assert profile.row_count == 4
        assert profile.null_count == 1
        assert profile.distinct_count == 3
        assert profile.completeness == pytest.approx(0.75)
        assert profile.uniqueness == pytest.approx(1.0)

    def test_profile_table_covers_all_columns(self, person_table):
        profiles = profile_table(person_table)
        assert set(profiles) == {"name", "age", "city"}

    def test_candidate_keys(self, person_table):
        keys = candidate_keys(person_table)
        assert ("name",) in keys
        # city is not a key; (name, city) is not reported because name already is.
        assert ("city",) not in keys
        assert all(not set(("name",)) < set(k) for k in keys)

    def test_fd_confidence_exact_and_approximate(self):
        assert functional_dependency_confidence(ADDRESSES, ["postcode"], "street") == 1.0
        dirty = ADDRESSES.extend([("Wrong Street", "Manchester", "M1 1AA")])
        assert 0.9 < functional_dependency_confidence(dirty, ["postcode"], "street") < 1.0

    def test_discover_functional_dependencies(self):
        found = discover_functional_dependencies(ADDRESSES, min_confidence=0.99)
        assert (("postcode",), "street", 1.0) in found
        assert (("postcode",), "city", 1.0) in found
        # street does not determine postcode (each street has two postcodes).
        assert not any(lhs == ("street",) and rhs == "postcode" for lhs, rhs, _ in found)

    def test_value_overlap(self):
        left = Table(Schema("l", ["x"]), [("a",), ("b",), ("c",)])
        right = Table(Schema("r", ["y"]), [("b",), ("c",), ("d",)])
        assert value_overlap(left, "x", right, "y") == pytest.approx(2 / 3)


class TestCfd:
    def variable_cfd(self) -> CFD:
        return CFD("cfd1", "property_result", ("postcode",), "street")

    def test_validation(self):
        with pytest.raises(ValueError):
            CFD("bad", "r", (), "street")
        with pytest.raises(ValueError):
            CFD("bad", "r", ("street",), "street")
        with pytest.raises(ValueError):
            CFD("bad", "r", ("a",), "b", lhs_pattern=(("c", "x"),))

    def test_applies_to_requires_non_null_lhs(self):
        cfd = self.variable_cfd()
        assert cfd.applies_to({"postcode": "M1 1AA", "street": None})
        assert not cfd.applies_to({"postcode": None, "street": "Oak Street"})

    def test_variable_cfd_checks_against_witness(self):
        cfd = self.variable_cfd()
        witness = {("m11aa",): "Oak Street"}
        assert cfd.check_row({"postcode": "M1 1AA", "street": "Oak Street"}, witness=witness)
        assert not cfd.check_row({"postcode": "M1 1AA", "street": "Elm Road"}, witness=witness)
        # Unknown postcode: nothing to compare against, trivially satisfied.
        assert cfd.check_row({"postcode": "ZZ9 9ZZ", "street": "Elm Road"}, witness=witness)

    def test_constant_cfd(self):
        cfd = CFD("c", "r", ("postcode",), "city",
                  lhs_pattern=(("postcode", "M1 1AA"),), rhs_pattern="Manchester")
        assert cfd.is_constant
        assert cfd.check_row({"postcode": "M1 1AA", "city": "Manchester"})
        assert not cfd.check_row({"postcode": "M1 1AA", "city": "Leeds"})
        assert cfd.check_row({"postcode": "M5 3CC", "city": "Leeds"})  # pattern not applicable

    def test_find_violations(self):
        table = Table(PROPERTY_SCHEMA, [
            ("Oak Street", "M1 1AA", 100.0, 2),
            ("Wrong Road", "M1 1AA", 120.0, 3),
        ])
        cfd = self.variable_cfd()
        witness = {("m11aa",): "Oak Street"}
        violations = find_violations(table, [cfd], witnesses={"cfd1": witness})
        assert len(violations) == 1
        assert violations[0].row_index == 1
        assert violations[0].expected == "Oak Street"

    def test_fact_fields_and_describe(self):
        cfd = self.variable_cfd()
        fields = cfd.to_fact_fields()
        assert fields[0] == "cfd1"
        assert "postcode" in cfd.describe()


class TestCfdLearning:
    def test_learns_postcode_dependencies(self):
        learned = CFDLearner(CFDLearnerConfig(min_constant_support=5)).learn(ADDRESSES)
        variable_rhs = {(cfd.lhs, cfd.rhs) for cfd in learned.variable_cfds()}
        assert (("postcode",), "street") in variable_rhs
        assert (("postcode",), "city") in variable_rhs
        assert learned.witnesses  # witnesses built for every variable CFD
        assert learned.constant_cfds()  # repeated postcodes give constant patterns

    def test_attribute_map_translates_and_filters(self):
        learned = CFDLearner().learn(
            ADDRESSES, target_relation="property",
            attribute_map={"street": "street", "postcode": "postcode"})
        assert all(cfd.relation == "property" for cfd in learned.cfds)
        assert all("city" not in cfd.lhs and cfd.rhs != "city" for cfd in learned.cfds)

    def test_build_witness_normalises_keys(self):
        witness = build_witness(ADDRESSES, ("postcode",), "street")
        assert witness[("m11aa",)] == "Oak Street"


class TestMetrics:
    def result_table(self) -> Table:
        return Table(PROPERTY_SCHEMA, [
            ("Oak Street", "M1 1AA", 100.0, 2),
            ("Elm Road", "M5 3CC", 200.0, None),
            (None, "M1 1AB", 150.0, 3),
        ])

    def test_completeness(self):
        table = self.result_table()
        assert attribute_completeness(table, "street") == pytest.approx(2 / 3)
        assert attribute_completeness(table, "price") == 1.0
        assert table_completeness(table) == pytest.approx((2 / 3 + 1 + 1 + 2 / 3) / 4)

    def test_completeness_weights(self):
        table = self.result_table()
        weighted = table_completeness(table, weights={"street": 1.0})
        assert weighted == pytest.approx(2 / 3)

    def test_completeness_ignores_bookkeeping_columns(self):
        schema = PROPERTY_SCHEMA.add(Attribute("_source", DataType.STRING))
        table = Table(schema, [("Oak Street", "M1 1AA", 100.0, 2, "rightmove")])
        assert table_completeness(table) == 1.0

    def test_accuracy_against_reference(self):
        reference = Table(PROPERTY_SCHEMA, [
            ("Oak Street", "M1 1AA", 100.0, 2),
            ("Elm Road", "M5 3CC", 200.0, 4),
        ])
        table = Table(PROPERTY_SCHEMA, [
            ("Oak Street", "M1 1AA", 100.0, 2),     # all correct
            ("Wrong Road", "M5 3CC", 200.0, None),  # street wrong, bedrooms missing
            ("Mill Lane", "ZZ9 9ZZ", 1.0, 1),       # key not in reference: ignored
        ])
        accuracy = accuracy_against_reference(table, reference, ["postcode", "price"])
        # checked cells: row0 street+bedrooms (2 correct), row1 street (wrong).
        assert accuracy == pytest.approx(2 / 3)

    def test_accuracy_without_checkable_cells_is_zero(self):
        reference = Table(PROPERTY_SCHEMA, [("Oak Street", "M1 1AA", 100.0, 2)])
        table = Table(PROPERTY_SCHEMA, [("Oak Street", "ZZ1 1ZZ", 999.0, 1)])
        assert accuracy_against_reference(table, reference, ["postcode", "price"]) == 0.0

    def test_consistency(self):
        cfd = CFD("cfd1", "property_result", ("postcode",), "street")
        witness = {("m11aa",): "Oak Street"}
        clean = Table(PROPERTY_SCHEMA, [("Oak Street", "M1 1AA", 100.0, 2)])
        dirty = Table(PROPERTY_SCHEMA, [("Bad Street", "M1 1AA", 100.0, 2),
                                        ("Oak Street", "M1 1AA", 120.0, 3)])
        assert consistency(clean, [cfd], witnesses={"cfd1": witness}) == 1.0
        assert consistency(dirty, [cfd], witnesses={"cfd1": witness}) == pytest.approx(0.5)
        assert consistency(clean, []) == 1.0

    def test_relevance(self):
        master = Table(Schema("master", ["postcode"]), [("M1 1AA",), ("M9 9XX",)])
        table = Table(PROPERTY_SCHEMA, [("Oak Street", "M1 1AA", 1.0, 1)])
        assert relevance(table, master, ["postcode"]) == pytest.approx(0.5)

    def test_evaluate_quality_neutral_without_context(self):
        report = evaluate_quality(self.result_table())
        assert report.accuracy == 0.5
        assert report.relevance == 0.5
        assert report.consistency == 1.0
        assert 0 < report.completeness < 1
        assert report.overall() == pytest.approx(
            (report.completeness + 0.5 + 1.0 + 0.5) / 4)

    def test_overall_with_weights(self):
        report = evaluate_quality(self.result_table())
        weighted = report.overall({"completeness": 1.0})
        assert weighted == pytest.approx(report.completeness)


class TestRepair:
    def test_violation_fix_and_imputation(self):
        table = Table(PROPERTY_SCHEMA, [
            ("Wrong Road", "M1 1AA", 100.0, 2),
            (None, "M5 3CC", 150.0, 3),
            ("Mill Lane", "SK1 2EF", 120.0, 2),
        ])
        cfd = CFD("cfd1", "property_result", ("postcode",), "street")
        witnesses = {"cfd1": build_witness(ADDRESSES, ("postcode",), "street")}
        outcome = CFDRepairer().repair(table, [cfd], witnesses=witnesses)
        assert outcome.repaired_cells == 2
        assert outcome.table[0]["street"] == "Oak Street"
        assert outcome.table[1]["street"] == "Elm Road"
        assert outcome.table[2]["street"] == "Mill Lane"
        assert len(outcome.actions_of_kind("violation")) == 1
        assert len(outcome.actions_of_kind("imputation")) == 1

    def test_repair_flags_can_disable_channels(self):
        table = Table(PROPERTY_SCHEMA, [(None, "M1 1AA", 100.0, 2)])
        cfd = CFD("cfd1", "property_result", ("postcode",), "street")
        witnesses = {"cfd1": build_witness(ADDRESSES, ("postcode",), "street")}
        no_impute = CFDRepairer(impute_missing=False).repair(table, [cfd], witnesses=witnesses)
        assert no_impute.repaired_cells == 0

    def test_higher_confidence_cfd_wins(self):
        table = Table(PROPERTY_SCHEMA, [("Wrong Road", "M1 1AA", 100.0, 2)])
        strong = CFD("strong", "property_result", ("postcode",), "street", confidence=1.0)
        weak = CFD("weak", "property_result", ("postcode",), "street", confidence=0.5)
        witnesses = {"strong": {("m11aa",): "Oak Street"}, "weak": {("m11aa",): "Bad Street"}}
        outcome = CFDRepairer().repair(table, [weak, strong], witnesses=witnesses)
        assert outcome.table[0]["street"] == "Oak Street"


class TestQualityTransducers:
    def setup_kb(self) -> KnowledgeBase:
        kb = KnowledgeBase()
        source = Table(PROPERTY_SCHEMA.rename("rightmove"), [
            ("Oak Street", "M1 1AA", 100.0, 2),
            (None, "M5 3CC", 200.0, None),
        ])
        kb.register_table(source, Predicates.ROLE_SOURCE)
        kb.describe_schema(PROPERTY_SCHEMA.rename("property"), Predicates.ROLE_TARGET)
        return kb

    def test_cfd_learning_requires_data_context(self):
        kb = self.setup_kb()
        transducer = CFDLearningTransducer(CFDLearnerConfig(min_constant_support=5))
        assert not transducer.can_run(kb)
        kb.register_table(ADDRESSES, Predicates.ROLE_CONTEXT)
        kb.assert_fact(Predicates.DATA_CONTEXT, "address", "reference", "property")
        assert transducer.can_run(kb)
        result = transducer.execute(kb)
        assert result.facts_added > 0
        assert kb.has_artifact(CFD_ARTIFACT_KEY)
        assert kb.count(Predicates.CFD) == result.facts_added

    def test_quality_metrics_cover_sources(self):
        kb = self.setup_kb()
        result = QualityMetricTransducer().execute(kb)
        assert result.facts_added == 4  # four criteria for the single source
        criteria = {row[2] for row in kb.facts(Predicates.METRIC)}
        assert criteria == {"completeness", "accuracy", "consistency", "relevance"}

    def test_data_repair_fixes_result_tables(self):
        kb = self.setup_kb()
        kb.register_table(ADDRESSES, Predicates.ROLE_CONTEXT)
        kb.assert_fact(Predicates.DATA_CONTEXT, "address", "reference", "property")
        CFDLearningTransducer(CFDLearnerConfig(min_constant_support=5)).execute(kb)
        result_table = Table(PROPERTY_SCHEMA.rename("property_result"), [
            ("Wrong Road", "M1 1AA", 100.0, 2),
        ])
        kb.catalog.register(result_table)
        kb.assert_fact(Predicates.RESULT, "property_result", "m1", 1)
        transducer = DataRepairTransducer()
        assert transducer.can_run(kb)
        outcome = transducer.execute(kb)
        assert "property_result" in outcome.tables_written
        assert kb.get_table("property_result")[0]["street"] == "Oak Street"
        assert kb.count(Predicates.REPAIR) > 0
