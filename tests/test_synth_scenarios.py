"""Unit tests for the parametric scenario generator (repro.scenarios.synth)."""

from __future__ import annotations

import pytest

from repro import Wrangler
from repro.quality import functional_dependency_confidence
from repro.relational.types import DataType
from repro.scenarios import (
    FieldSpec,
    Scenario,
    ScenarioFamily,
    SynthConfig,
    family_names,
    generate_synthetic,
    register_family,
    scenario_suite,
)
from repro.scenarios import synth

SYNTHETIC_FAMILIES = ("product_catalog", "sensor_log", "org_directory")


class TestRegistry:
    def test_builtin_families_registered(self):
        names = family_names()
        for family in (*SYNTHETIC_FAMILIES, "real_estate"):
            assert family in names

    def test_register_family_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_family("product_catalog", synth.PRODUCT_CATALOG)

    def test_register_custom_family(self):
        name = "test_tiny_family"
        family = ScenarioFamily(
            name=name,
            target_relation="widget",
            fields=(
                FieldSpec("widget_id", DataType.STRING, ("ref", "code")),
                FieldSpec("colour", DataType.STRING, ("hue", "tint")),
                FieldSpec("weight", DataType.FLOAT, ("mass", "grams")),
            ),
            evaluation_key=("widget_id",),
            reference_fields=("colour",),
            reference_relation="colours",
            master_fields=("widget_id", "weight"),
            source_prefix="wfeed",
            make_vocab=lambda rng, config: {
                "directory": [{"colour": c} for c in ("red", "green", "blue")]},
            make_entity=lambda rng, index, vocab: {
                "widget_id": f"w{index:03d}",
                "colour": rng.choice(vocab["directory"])["colour"],
                "weight": round(rng.uniform(1.0, 9.0), 2),
            },
        )
        register_family(name, family)
        try:
            scenario = generate_synthetic(SynthConfig(family=name, entities=20, seed=1))
            assert scenario.family == name
            assert len(scenario.ground_truth) == 20
            assert scenario.target.name == "widget"
        finally:
            synth._FAMILIES.pop(name, None)


class TestConfigValidation:
    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            generate_synthetic(SynthConfig(family="nonsense"))

    def test_bad_missing_pattern(self):
        with pytest.raises(ValueError, match="missing pattern"):
            generate_synthetic(SynthConfig(missing_pattern="diagonal"))

    @pytest.mark.parametrize("overrides", [
        {"entities": 0},
        {"sources": 0},
        {"noise": 1.5},
        {"schema_drift": -0.1},
    ])
    def test_out_of_range_knobs(self, overrides):
        with pytest.raises(ValueError):
            generate_synthetic(SynthConfig(**overrides))

    def test_label_defaults_and_override(self):
        assert SynthConfig(family="sensor_log", seed=4).label() == "sensor_log-s4"
        assert SynthConfig(name="custom").label() == "custom"


class TestGeneration:
    @pytest.mark.parametrize("family", SYNTHETIC_FAMILIES)
    def test_deterministic(self, family):
        left = generate_synthetic(SynthConfig(family=family, entities=80, seed=6))
        right = generate_synthetic(SynthConfig(family=family, entities=80, seed=6))
        assert left.ground_truth.tuples() == right.ground_truth.tuples()
        for one, two in zip(left.sources, right.sources):
            assert one.schema.attribute_names == two.schema.attribute_names
            assert one.tuples() == two.tuples()

    @pytest.mark.parametrize("family", SYNTHETIC_FAMILIES)
    def test_seeds_differ(self, family):
        left = generate_synthetic(SynthConfig(family=family, entities=80, seed=6))
        right = generate_synthetic(SynthConfig(family=family, entities=80, seed=7))
        assert left.sources[0].tuples() != right.sources[0].tuples()

    def test_volume_and_source_count(self):
        config = SynthConfig(family="product_catalog", entities=500, sources=4,
                             source_coverage=0.6, seed=2)
        scenario = generate_synthetic(config)
        assert len(scenario.ground_truth) == 500
        assert scenario.source_count == 4
        for source in scenario.sources:
            assert 0.4 * 500 <= len(source) <= 0.8 * 500

    def test_zero_noise_sources_are_subsets_of_truth(self):
        config = SynthConfig(family="org_directory", entities=120, seed=3,
                             noise=0.0, missing=0.0, schema_drift=0.0)
        scenario = generate_synthetic(config)
        for source in scenario.sources:
            for attribute in source.schema.attribute_names:
                truth_values = set(scenario.ground_truth.column(attribute))
                assert set(source.column(attribute)) <= truth_values

    def test_noise_corrupts_values(self):
        clean = generate_synthetic(SynthConfig(family="sensor_log", entities=150, seed=9,
                                               noise=0.0, missing=0.0, schema_drift=0.0))
        noisy = generate_synthetic(SynthConfig(family="sensor_log", entities=150, seed=9,
                                               noise=0.4, missing=0.0, schema_drift=0.0))
        truth_values = set(clean.ground_truth.column("value"))
        novel = [value for value in noisy.sources[0].column("value")
                 if value is not None and value not in truth_values]
        assert novel, "a 40% noise rate must produce values absent from the ground truth"

    def test_evaluation_key_immune_to_noise_and_nulls(self):
        config = SynthConfig(family="product_catalog", entities=200, seed=4,
                             noise=0.5, missing=0.5, schema_drift=0.0)
        scenario = generate_synthetic(config)
        truth_keys = set(scenario.ground_truth.column("sku"))
        for source in scenario.sources:
            for value in source.column("sku"):
                assert value is not None
                assert value in truth_keys

    def test_reference_functional_dependencies_hold(self):
        for family in SYNTHETIC_FAMILIES:
            scenario = generate_synthetic(SynthConfig(family=family, entities=150, seed=5))
            reference = scenario.reference
            assert reference is not None and len(reference) > 0
            key = reference.schema.attribute_names[0]
            for dependent in reference.schema.attribute_names[1:]:
                assert functional_dependency_confidence(reference, [key], dependent) == 1.0

    def test_reference_size_shrinks_reference(self):
        full = generate_synthetic(SynthConfig(family="product_catalog", entities=300,
                                              seed=8, reference_size=1.0))
        half = generate_synthetic(SynthConfig(family="product_catalog", entities=300,
                                              seed=8, reference_size=0.4))
        assert len(half.reference) < len(full.reference)
        none = generate_synthetic(SynthConfig(family="product_catalog", entities=300,
                                              seed=8, reference_size=0.0))
        assert none.reference is None

    def test_master_coverage(self):
        scenario = generate_synthetic(SynthConfig(family="org_directory", entities=400,
                                                  seed=2, master_coverage=0.3))
        assert 0.15 * 400 <= len(scenario.master) <= 0.45 * 400
        bare = generate_synthetic(SynthConfig(family="org_directory", entities=50,
                                              seed=2, master_coverage=0.0))
        assert bare.master is None


class TestSchemaDrift:
    def test_no_drift_keeps_canonical_names(self):
        scenario = generate_synthetic(SynthConfig(family="sensor_log", entities=50,
                                                  seed=1, schema_drift=0.0))
        canonical = set(scenario.target.attribute_names)
        for source in scenario.sources:
            assert set(source.schema.attribute_names) == canonical

    def test_full_drift_renames_attributes(self):
        scenario = generate_synthetic(SynthConfig(family="sensor_log", entities=50,
                                                  seed=1, sources=3, schema_drift=1.0))
        canonical = set(scenario.target.attribute_names)
        for source in scenario.sources:
            assert set(source.schema.attribute_names).isdisjoint(canonical)


class TestMissingPatterns:
    def _null_counts(self, pattern: str) -> dict[str, int]:
        scenario = generate_synthetic(SynthConfig(
            family="org_directory", entities=400, seed=13, sources=1, noise=0.0,
            missing=0.2, missing_pattern=pattern, schema_drift=0.0))
        source = scenario.sources[0]
        return {name: source.null_count(name) for name in source.schema.attribute_names}

    def test_random_pattern_spreads_nulls(self):
        counts = self._null_counts("random")
        nullable = {name: count for name, count in counts.items() if name != "employee_id"}
        assert all(count > 0 for count in nullable.values())

    def test_column_pattern_concentrates_nulls(self):
        counts = self._null_counts("column")
        nullable = [count for name, count in counts.items() if name != "employee_id"]
        assert any(count == 0 for count in nullable)
        assert any(count > 0 for count in nullable)

    def test_tail_pattern_degrades_later_rows(self):
        scenario = generate_synthetic(SynthConfig(
            family="org_directory", entities=400, seed=13, sources=1, noise=0.0,
            missing=0.2, missing_pattern="tail", schema_drift=0.0))
        source = scenario.sources[0]
        half = len(source) // 2
        def nulls(rows):
            return sum(1 for row in rows for value in row.values if value is None)
        first = nulls(source.rows()[:half])
        second = nulls(source.rows()[half:])
        assert second > 2 * first


class TestScenarioContract:
    def test_describe(self):
        scenario = generate_synthetic(SynthConfig(family="product_catalog", entities=40, seed=1))
        description = scenario.describe()
        assert description["family"] == "product_catalog"
        assert description["sources"] == ["catalog1", "catalog2"]
        assert description["ground_truth_rows"] == 40
        assert description["has_reference"] and description["has_master"]

    def test_install_registers_sources_and_target(self):
        scenario = generate_synthetic(SynthConfig(family="sensor_log", entities=30, seed=1))
        wrangler = Wrangler()
        scenario.install(wrangler)
        assert wrangler.kb.source_relations() == sorted(scenario.source_names())
        assert wrangler.kb.target_relations() == [scenario.target.name]

    def test_real_estate_family_adapts_to_contract(self):
        scenario = generate_synthetic(SynthConfig(family="real_estate", entities=60, seed=3))
        assert isinstance(scenario, Scenario)
        assert scenario.family == "real_estate"
        assert scenario.source_count == 3
        assert scenario.evaluation_key == ("postcode", "price")
        assert scenario.reference is not None and scenario.master is not None

    @pytest.mark.parametrize("family", SYNTHETIC_FAMILIES)
    def test_bootstrap_wrangles_every_family(self, family):
        scenario = generate_synthetic(SynthConfig(family=family, entities=60, seed=11))
        wrangler = Wrangler()
        scenario.install(wrangler)
        result = wrangler.run("bootstrap", ground_truth=scenario.ground_truth,
                              ground_truth_key=scenario.evaluation_key)
        assert result.row_count > 0
        assert result.quality is not None
        assert 0.0 < result.quality.overall() <= 1.0


class TestJoinShapedFamily:
    def test_lookup_attributes_absent_from_entity_sources(self):
        scenario = generate_synthetic(
            SynthConfig(family="shipment_tracking", entities=80, seed=2))
        lookup = next(t for t in scenario.sources if t.name == "depots")
        feeds = [t for t in scenario.sources if t.name.startswith("shipfeed")]
        assert feeds and lookup is not None
        # The lookup contributes region/depot_manager *only* via the join key.
        assert set(lookup.schema.attribute_names) == {
            "origin_depot", "region", "depot_manager"}
        for feed in feeds:
            names = set(feed.schema.attribute_names)
            assert "region" not in names and "depot_region" not in names
            assert "depot_manager" not in names and "site_manager" not in names

    def test_lookup_is_clean_and_key_unique(self):
        scenario = generate_synthetic(
            SynthConfig(family="shipment_tracking", entities=120, seed=5, noise=0.3,
                        missing=0.3))
        lookup = next(t for t in scenario.sources if t.name == "depots")
        keys = lookup.column("origin_depot")
        assert len(keys) == len(set(keys))
        assert all(value is not None for row in lookup.tuples() for value in row)

    def test_wrangle_populates_join_only_attributes(self):
        scenario = generate_synthetic(
            SynthConfig(family="shipment_tracking", entities=120, seed=2))
        wrangler = Wrangler()
        scenario.install(wrangler)
        result = wrangler.run("bootstrap", ground_truth=scenario.ground_truth,
                              ground_truth_key=scenario.evaluation_key)
        assert result.selected_mapping is not None
        assert any(len(leaf.sources) > 1 and "depots" in leaf.sources
                   for leaf in result.selected_mapping.leaf_mappings()), (
            "a join mapping over the lookup source must win")
        populated = sum(1 for row in result.table.rows()
                        if row["region"] is not None)
        assert populated > len(result.table) // 2


class TestCrossFamilyMixing:
    def test_mixed_sources_appended_and_renamed(self):
        scenario = generate_synthetic(
            SynthConfig(family="product_catalog", entities=80, seed=1,
                        mix_families=("sensor_log", "sensor_log")))
        names = scenario.source_names()
        assert "feed1_mix1" in names and "feed1_mix2" in names
        assert len(names) == 2 + 2  # own sources + one distractor per mix entry

    def test_mixing_is_deterministic_and_validated(self):
        config = SynthConfig(family="org_directory", entities=60, seed=4,
                             mix_families=("product_catalog",))
        first = generate_synthetic(config)
        second = generate_synthetic(config)
        assert [t.tuples() for t in first.sources] == [t.tuples() for t in second.sources]
        with pytest.raises(ValueError, match="unknown mix family"):
            SynthConfig(mix_families=("nonsense",)).validate()

    def test_builder_families_mix_too(self):
        scenario = generate_synthetic(
            SynthConfig(family="real_estate", entities=60, seed=3,
                        mix_families=("sensor_log",)))
        assert "feed1_mix1" in scenario.source_names()
        assert scenario.source_count == 4  # portals + deprivation + distractor

    def test_distractors_do_not_pollute_the_result(self):
        scenario = generate_synthetic(
            SynthConfig(family="org_directory", entities=80, seed=3,
                        mix_families=("sensor_log",)))
        wrangler = Wrangler()
        scenario.install(wrangler)
        result = wrangler.run("bootstrap", ground_truth=scenario.ground_truth,
                              ground_truth_key=scenario.evaluation_key)
        assert result.row_count > 0
        sources = {row["_source"] for row in result.table.rows()}
        assert all(source.startswith("hrfeed") for source in sources), (
            f"distractor sources leaked into the result: {sources}")


class TestScenarioSuite:
    def test_default_suite_spans_all_families(self):
        configs = scenario_suite(per_family=2, seed=0, entities=100)
        families = {config.family for config in configs}
        assert set(SYNTHETIC_FAMILIES) <= families
        assert len(configs) == 2 * len(family_names())
        assert len({config.seed for config in configs}) == len(configs)
        assert all(config.entities == 100 for config in configs)

    def test_suite_is_deterministic(self):
        assert scenario_suite(per_family=3, seed=5) == scenario_suite(per_family=3, seed=5)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            scenario_suite(["nonsense"])
