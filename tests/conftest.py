"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.relational import Attribute, DataType, Schema, Table
from repro.scenarios import ScenarioConfig, generate_scenario


@pytest.fixture
def person_schema() -> Schema:
    """A tiny schema used by relational-layer tests."""
    return Schema("person", [
        Attribute("name", DataType.STRING),
        Attribute("age", DataType.INTEGER),
        Attribute("city", DataType.STRING),
    ])


@pytest.fixture
def person_table(person_schema) -> Table:
    """A tiny table used by relational-layer tests."""
    return Table(person_schema, [
        ("alice", 34, "Manchester"),
        ("bob", 41, "Salford"),
        ("carol", 29, "Manchester"),
        ("dave", None, "Leeds"),
    ])


@pytest.fixture(scope="session")
def small_scenario():
    """A small (fast) real-estate scenario shared by integration-style tests."""
    return generate_scenario(ScenarioConfig(properties=150, postcodes=40, seed=11))


@pytest.fixture(scope="session")
def tiny_scenario():
    """An even smaller scenario for tests that run full orchestration."""
    return generate_scenario(ScenarioConfig(properties=80, postcodes=25, seed=5))
