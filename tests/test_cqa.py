"""Tests for repro.cqa: parsing, classification, rewriting, enumeration and
the Wrangler/service query surface.

The load-bearing property throughout: for every query, ``mode="certain"``
(rewriting or exhaustive enumeration) equals the brute-force intersection
of the query's answers over every repair of the dirty instance.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cqa import (
    Classification,
    ConjunctiveQuery,
    EnumerationConfig,
    QueryAtom,
    QueryParseError,
    Var,
    answer_certain,
    build_repair_space,
    classify,
    compile_certain,
    certain_answers,
    enumerate_certain,
    keys_from_cfds,
    parse_query,
    query_answers,
)
from repro.cqa.enumerate import _order_key
from repro.quality.cfd import CFD, WILDCARD
from repro.quality.stats import AnswerAgreementStats
from repro.scenarios.synth import SynthConfig, generate_synthetic
from repro.service.api import QueryRequest, QueryResponse, request_from_dict
from repro.service.session import WranglingSession
from repro.wrangler.pipeline import CQA_AGREEMENT_ARTIFACT_KEY


# -- fixtures -----------------------------------------------------------------

R_SCHEMA = ("emp", "dept", "city")
S_SCHEMA = ("dept", "head")

#: Dirty: emp is the key of r, dept the key of s; e1 and d1 have conflicts.
R_DIRTY = [
    ("e1", "d1", "manchester"),
    ("e1", "d2", "manchester"),
    ("e2", "d1", "leeds"),
    ("e3", "d2", "york"),
]
S_DIRTY = [
    ("d1", "ada"),
    ("d1", "grace"),
    ("d2", "alan"),
]

SCHEMAS = {"r": R_SCHEMA, "s": S_SCHEMA}
TABLES = {"r": R_DIRTY, "s": S_DIRTY}
KEYS = {"r": ("emp",), "s": ("dept",)}


def brute_force_certain(query, schemas, tables, keys):
    """The textbook definition: intersect answers over *all* repairs."""
    space = build_repair_space(tables, schemas, keys, query)
    answers = None
    for change_set in space.change_sets(max_repairs=10**9):
        repaired = space.materialise(change_set)
        per_repair = set(query_answers(query, schemas, repaired))
        answers = per_repair if answers is None else answers & per_repair
    return tuple(sorted(answers or set(), key=_order_key))


# -- parsing ------------------------------------------------------------------


class TestParse:
    def test_round_trip(self):
        text = 'q(K, V) :- r(emp=K, dept=V), s(dept=V, head="ada").'
        parsed = parse_query(text)
        assert parsed.name == "q"
        assert list(parsed.head) == ["K", "V"]
        assert parse_query(str(parsed)) == parsed

    def test_constants(self):
        parsed = parse_query(
            "q(X) :- t(a=X, b=3, c=2.5, d=null, e=true, f=word, g='two words')."
        )
        bound = dict(parsed.atoms[0].bindings)
        assert bound["b"] == 3 and bound["c"] == 2.5
        assert bound["d"] is None and bound["e"] is True
        assert bound["f"] == "word" and bound["g"] == "two words"

    def test_head_must_be_variables_from_body(self):
        with pytest.raises(QueryParseError):
            parse_query('q("x") :- t(a=Y).')
        with pytest.raises(ValueError, match="head variable"):
            parse_query("q(X) :- t(a=Y).")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(QueryParseError, match="twice"):
            parse_query("q(X) :- t(a=X, a=Y).")

    def test_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("q(X) :- ")
        with pytest.raises(QueryParseError):
            parse_query("q(X) :- t(a=X) extra.")


class TestKeysFromCfds:
    def test_exact_variable_cfds_become_keys(self):
        cfds = [
            CFD("c1", "t", ("a",), "b", confidence=1.0),
            CFD("c2", "t", ("a",), "c", confidence=1.0),
        ]
        keys = keys_from_cfds(cfds, {"t": ("a", "b", "c")})
        assert keys == {"t": ("a",)}

    def test_inexact_and_constant_cfds_ignored(self):
        cfds = [
            CFD("c1", "t", ("a",), "b", confidence=0.9),
            CFD("c2", "t", ("a",), "c",
                lhs_pattern=(("a", "fixed"),), confidence=1.0),
        ]
        assert keys_from_cfds(cfds, {"t": ("a", "b", "c")}) == {}

    def test_partial_dependencies_shrink_not_drop(self):
        cfds = [CFD("c1", "t", ("a",), "b", confidence=1.0)]
        # a -> b alone: c must stay in the key, b falls out.
        assert keys_from_cfds(cfds, {"t": ("a", "b", "c")}) == {"t": ("a", "c")}

    def test_no_exact_cfds_no_keys(self):
        assert keys_from_cfds([], {"t": ("a", "b")}) == {}


# -- classification -----------------------------------------------------------


class TestClassify:
    def test_selection_is_rewritable(self):
        decision = classify(parse_query("q(K) :- r(emp=K, city=C)."), KEYS)
        assert decision.rewritable
        assert decision.plan is not None

    def test_key_join_is_rewritable(self):
        query = parse_query("q(K, H) :- r(emp=K, dept=D), s(dept=D, head=H).")
        decision = classify(query, KEYS)
        assert decision.rewritable

    def test_self_join_is_not(self):
        query = parse_query("q(K) :- r(emp=K, city=C), r(emp=E, city=C).")
        decision = classify(query, KEYS)
        assert not decision.rewritable
        assert "self-join" in decision.reason

    def test_boolean_query_is_not(self):
        decision = classify(parse_query("q() :- r(emp=K)."), KEYS)
        assert not decision.rewritable

    def test_nonkey_join_between_keyed_atoms_is_not(self):
        # city is a non-key position in r; joining s on a non-key var of a
        # keyed atom whose own non-key position carries it twice → two keyed
        # value occurrences.
        query = parse_query("q(A) :- r(emp=A, city=C), s(dept=C, head=H).")
        keys = {"r": ("emp",), "s": ("head",)}
        decision = classify(query, keys)
        assert not decision.rewritable

    def test_unkeyed_relations_are_always_fine(self):
        query = parse_query("q(A, B) :- r(emp=A, dept=D), s(dept=D, head=B).")
        assert classify(query, {}).rewritable


# -- rewriting vs brute force -------------------------------------------------

REWRITABLE_QUERIES = [
    "q(K) :- r(emp=K).",
    "q(K, C) :- r(emp=K, city=C).",
    'q(K) :- r(emp=K, city="manchester").',
    'q(C) :- r(emp="e1", city=C).',
    "q(H) :- s(dept=D, head=H).",
    "q(K, H) :- r(emp=K, dept=D), s(dept=D, head=H).",
    'q(K) :- r(emp=K, dept=D), s(dept=D, head="ada").',
]

FALLBACK_QUERIES = [
    "q(K) :- r(emp=K, city=C), r(emp=E, city=C).",
    "q() :- r(emp=K, dept=D), s(dept=D, head=H).",
    'q() :- r(emp="e1", city="manchester").',
]


class TestCertainAnswers:
    @pytest.mark.parametrize("text", REWRITABLE_QUERIES)
    def test_rewriting_matches_brute_force(self, text):
        query = parse_query(text)
        decision = classify(query, KEYS)
        assert decision.rewritable, decision.reason
        compiled = compile_certain(decision.plan, SCHEMAS)
        got = tuple(sorted(tuple(row) for row in certain_answers(compiled, TABLES)))
        assert got == brute_force_certain(query, SCHEMAS, TABLES, KEYS)

    @pytest.mark.parametrize("text", REWRITABLE_QUERIES + FALLBACK_QUERIES)
    def test_answer_certain_matches_brute_force(self, text):
        query = parse_query(text)
        result = answer_certain(query, SCHEMAS, TABLES, KEYS)
        assert result.exact
        assert result.answers == brute_force_certain(query, SCHEMAS, TABLES, KEYS)

    def test_certain_is_a_subset_of_naive(self):
        query = parse_query("q(K, H) :- r(emp=K, dept=D), s(dept=D, head=H).")
        certain = set(answer_certain(query, SCHEMAS, TABLES, KEYS).answers)
        naive = set(query_answers(query, SCHEMAS, TABLES))
        assert certain <= naive

    def test_method_reporting(self):
        rewritable = answer_certain(
            parse_query("q(K) :- r(emp=K)."), SCHEMAS, TABLES, KEYS)
        assert rewritable.method == "rewriting"
        fallback = answer_certain(
            parse_query(FALLBACK_QUERIES[0]), SCHEMAS, TABLES, KEYS)
        assert fallback.method == "enumeration"
        assert fallback.enumeration is not None

    def test_boolean_query_convention(self):
        certainly_true = answer_certain(
            parse_query('q() :- s(dept="d2", head=H).'), SCHEMAS, TABLES, KEYS)
        assert certainly_true.answers == ((),)
        not_certain = answer_certain(
            parse_query('q() :- s(dept="d1", head="ada").'), SCHEMAS, TABLES, KEYS)
        assert not_certain.answers == ()


# -- enumeration budgets ------------------------------------------------------


class TestEnumeration:
    def _wide_instance(self, blocks: int, width: int):
        rows = [
            (f"k{index}", f"v{choice}")
            for index in range(blocks)
            for choice in range(width)
        ]
        return {"t": ("k", "v")}, {"t": rows}, {"t": ("k",)}

    def test_exhaustive_below_budget(self):
        schemas, tables, keys = self._wide_instance(3, 2)
        result = enumerate_certain(
            parse_query("q(K, V) :- t(k=K, v=V)."), schemas, tables, keys,
            EnumerationConfig(max_repairs=8))
        assert result.total_repairs == 8
        assert result.repairs_evaluated <= 8
        assert result.exact and not result.truncated

    def test_sampling_over_budget_overapproximates(self):
        schemas, tables, keys = self._wide_instance(10, 2)  # 1024 repairs
        query = parse_query("q(K, V) :- t(k=K, v=V).")
        sampled = enumerate_certain(
            query, schemas, tables, keys, EnumerationConfig(max_repairs=16, seed=1))
        assert sampled.truncated
        assert sampled.repairs_evaluated <= 16
        exact = brute_force_certain(query, schemas, tables, keys)
        assert set(exact) <= set(sampled.answers)
        # every block conflicts, so nothing is certain; the empty
        # intersection is reached and reported exact even while sampling.
        if not sampled.answers:
            assert sampled.exact

    def test_timeout_reported(self):
        schemas, tables, keys = self._wide_instance(6, 2)
        result = enumerate_certain(
            parse_query("q(K, V) :- t(k=K, v=V)."), schemas, tables, keys,
            EnumerationConfig(max_repairs=64, timeout_seconds=0.0))
        assert result.timed_out
        assert result.repairs_evaluated >= 1

    def test_null_and_string_keys_coexist(self):
        # Regression: the deterministic block ordering used to compare raw
        # key values, and NULL keys against string keys raised TypeError.
        schemas = {"t": ("k", "v")}
        tables = {"t": [(None, "x"), (None, "y"), ("k0", "x"), ("k0", "y"), (1, "z")]}
        keys = {"t": ("k",)}
        query = parse_query("q(K, V) :- t(k=K, v=V).")
        result = enumerate_certain(query, schemas, tables, keys)
        assert result.exact
        assert result.answers == brute_force_certain(query, schemas, tables, keys)
        # the NULL block and the k0 block both conflict; the singleton survives
        assert result.answers == ((1, "z"),)

    def test_irrelevant_blocks_are_forced_not_multiplied(self):
        schemas, tables, keys = self._wide_instance(8, 2)
        query = parse_query('q(V) :- t(k="k0", v=V).')
        space = build_repair_space(tables, schemas, keys, query)
        # only k0's block is relevant to the constant filter
        assert len(space.choice_blocks) == 1
        assert space.total_repairs == 2
        result = enumerate_certain(query, schemas, tables, keys)
        assert result.exact
        assert result.answers == brute_force_certain(query, schemas, tables, keys)


# -- hypothesis: the certain-answer contract on random dirty tables -----------

_VALUES = st.sampled_from(["a", "b", "c", 1, 2, None])


@st.composite
def dirty_instances(draw):
    """A small keyed relation with conflicts, plus a query over it."""
    rows = draw(
        st.lists(
            st.tuples(st.sampled_from(["k1", "k2", "k3"]), _VALUES, _VALUES),
            min_size=1,
            max_size=7,
        )
    )
    constant = draw(_VALUES)
    query = draw(
        st.sampled_from(
            [
                "q(K, A) :- t(k=K, a=A).",
                "q(K) :- t(k=K, a=A, b=B).",
                "q(A, B) :- t(a=A, b=B).",
            ]
        )
    )
    return rows, constant, query


@given(dirty_instances())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_certain_answers_property(case):
    """answer_certain == brute force, and ⊆ every single repair's answers."""
    rows, constant, text = case
    schemas = {"t": ("k", "a", "b")}
    tables = {"t": rows}
    keys = {"t": ("k",)}
    query = parse_query(text)

    result = answer_certain(query, schemas, tables, keys)
    assert result.exact
    expected = brute_force_certain(query, schemas, tables, keys)
    assert result.answers == expected

    certain = set(result.answers)
    space = build_repair_space(tables, schemas, keys, query)
    for change_set in itertools.islice(
        space.change_sets(max_repairs=10**9), 0, 20
    ):
        repaired = space.materialise(change_set)
        assert certain <= set(query_answers(query, schemas, repaired))


# -- quality stats ------------------------------------------------------------


class TestAnswerAgreementStats:
    def test_micro_averaged_jaccard(self):
        stats = AnswerAgreementStats()
        assert stats.value() == 1.0
        stats.observe("q1", [("a",), ("b",)], [("a",)])
        stats.observe("q2", [("x",)], [("x",)])
        assert stats.queries == 2
        assert stats.value() == pytest.approx((1 + 1) / (2 + 1))

    def test_observe_replaces_not_accumulates(self):
        stats = AnswerAgreementStats()
        stats.observe("q1", [("a",)], [("b",)])
        stats.observe("q1", [("a",)], [("a",)])
        assert stats.queries == 1
        assert stats.value() == 1.0

    def test_merge_adopts_theirs(self):
        ours = AnswerAgreementStats()
        ours.observe("q1", [("a",)], [("a",)])
        theirs = AnswerAgreementStats()
        theirs.observe("q1", [("a",)], [("b",)])
        theirs.observe("q2", [("c",)], [("c",)])
        ours.merge(theirs)
        assert ours.queries == 2
        assert ours.entries["q1"] == (0, 2)


# -- Wrangler integration -----------------------------------------------------


@pytest.fixture(scope="module")
def queried_session():
    session = WranglingSession.from_scenario(
        SynthConfig(entities=50, seed=3, query_workload=5))
    session.run()
    return session


class TestWranglerQuery:
    def test_three_modes(self, queried_session):
        wrangler = queried_session.wrangler
        target = wrangler.target_relation
        text = f"q(K) :- {target}(sku=K)."
        certain = wrangler.query(text, mode="certain")
        assert certain.certain is not None and certain.repaired is None
        repaired = wrangler.query(text, mode="repaired")
        assert repaired.certain is None and repaired.repaired is not None
        both = wrangler.query(text, mode="both")
        assert both.certain is not None and both.repaired is not None
        assert both.agreement is not None and 0.0 <= both.agreement <= 1.0

    def test_explicit_keys_override(self, queried_session):
        wrangler = queried_session.wrangler
        outcome = wrangler.query(
            "q(K, N) :- product(sku=K, name=N).",
            mode="certain", keys={"product": ("sku",)})
        assert outcome.keys == {"product": ("sku",)}
        assert outcome.rewritable

    def test_agreement_recorded_in_stash_and_artifact(self, queried_session):
        wrangler = queried_session.wrangler
        text = "q(K, B) :- product(sku=K, brand=B)."
        outcome = wrangler.query(text, mode="both", keys={"product": ("sku",)})
        records = wrangler.kb.get_artifact(CQA_AGREEMENT_ARTIFACT_KEY)
        entry = records[str(wrangler.query(text, mode="repaired").query)]
        assert entry["agreement"] == pytest.approx(outcome.agreement)
        report = wrangler.evaluate()
        assert report.answer_agreement is not None
        assert "answer_agreement" in report.as_dict()

    def test_unknown_relation_and_mode_fail_loudly(self, queried_session):
        wrangler = queried_session.wrangler
        with pytest.raises(ValueError, match="unknown relation"):
            wrangler.query("q(X) :- nowhere(a=X).")
        with pytest.raises(ValueError, match="mode"):
            wrangler.query("q(K) :- product(sku=K).", mode="upside_down")

    def test_query_before_run_fails_loudly(self):
        session = WranglingSession.from_scenario(SynthConfig(entities=20, seed=1))
        with pytest.raises(ValueError, match="no result"):
            session.wrangler.query("q(K) :- product(sku=K).")

    def test_workload_certain_matches_ground_truth_intersection(self, queried_session):
        """For generated workload queries, mode="certain" equals the
        brute-force repair intersection of the dirty base instance."""
        wrangler = queried_session.wrangler
        scenario = queried_session.scenario
        keys = {"product": tuple(scenario.evaluation_key)}
        for entry in scenario.details["query_workload"]:
            outcome = wrangler.query(entry["query"], mode="certain", keys=keys)
            query = parse_query(entry["query"])
            schemas, certain_tables, _repaired, _details = (
                wrangler._query_environment(query))
            resolved = {
                relation: key for relation, key in keys.items()
                if relation in schemas
            }
            expected = brute_force_certain(query, schemas, certain_tables, resolved)
            assert outcome.certain == expected


# -- service surface ----------------------------------------------------------


class TestQueryService:
    def test_request_codec_round_trip(self):
        request = QueryRequest(query="q(X) :- t(a=X).", mode="both",
                               keys={"t": ("a", "b")}, max_repairs=64)
        decoded = request_from_dict("query", request.as_dict())
        assert decoded == request

    def test_session_handles_query_request(self, queried_session):
        response = queried_session.handle(
            QueryRequest(query="q(K) :- product(sku=K).", mode="both"))
        assert isinstance(response, QueryResponse)
        payload = response.as_dict()
        assert payload["session_id"] == queried_session.session_id
        assert payload["certain"] is not None
        assert payload["repaired"] is not None
        rebuilt = QueryResponse.from_dict(payload)
        # the response carries the canonical (re-rendered) query text
        assert rebuilt.query == "q(K) :- product(sku=K)"

    def test_session_key_default_falls_back_to_scenario(self):
        session = WranglingSession.from_scenario(
            SynthConfig(entities=30, seed=9, reference_size=0.0,
                        master_coverage=0.0))
        session.run()
        response = session.handle(
            QueryRequest(query="q(K) :- product(sku=K).", mode="certain"))
        # no data context at all → no learned CFDs → scenario evaluation key
        assert response.keys == {"product": ["sku"]}

    def test_budget_knobs_reach_enumeration(self, queried_session):
        response = queried_session.handle(
            QueryRequest(
                query=("q(K) :- product(sku=K, brand=B), "
                       "product(sku=S, brand=B)."),
                mode="certain", keys={"product": ("sku",)}, max_repairs=4))
        assert response.method == "enumeration"
        assert response.details["repairs_evaluated"] <= 4
