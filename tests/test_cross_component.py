"""Cross-component integration tests that tie the substrates together."""

from __future__ import annotations


from repro.datalog import parse_program, query
from repro.mapping import MappingGenerator
from repro.matching import SchemaMatcher
from repro.relational import Catalog, write_csv
from repro.scenarios import ScenarioConfig, generate_scenario
from repro.wrangler import Wrangler, WranglerConfig
from repro.wrangler.result import WranglingResult


class TestMappingsAsVadalog:
    """The paper represents schema mappings in Vadalog; the rendered rules
    must be parseable by the reasoner and evaluate to the mapped tuples."""

    def test_generated_mappings_render_to_parseable_rules(self, tiny_scenario):
        matcher = SchemaMatcher()
        matches = matcher.match_many(
            [tiny_scenario.rightmove.schema, tiny_scenario.deprivation.schema],
            tiny_scenario.target)
        catalog = Catalog()
        for table in tiny_scenario.sources():
            catalog.register(table)
        candidates = MappingGenerator().generate(matches, tiny_scenario.target, catalog)
        assert candidates
        for mapping in candidates:
            text = mapping.to_vadalog(tiny_scenario.target.attribute_names)
            rules = parse_program(text)
            assert rules, f"mapping {mapping.mapping_id} rendered no rules"
            assert all(rule.head.predicate == tiny_scenario.target.name for rule in rules)

    def test_direct_mapping_rule_evaluates_over_edb(self):
        mapping_rule = 'product(T, P) :- shop(T, P, _).'
        results = query(mapping_rule, "product(T, P)",
                        {"shop": [("cable", 7.99, "cables"), ("mouse", 19.5, "peripherals")]})
        assert set(results) == {("cable", 7.99), ("mouse", 19.5)}


class TestKnowledgeBaseReasoning:
    """Datalog rules over the KB's metadata vocabulary (orchestration-style views)."""

    def test_runnable_view_over_match_facts(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        wrangler.run("bootstrap")
        rows = wrangler.kb.query(
            "covered(T, A)",
            "covered(T, A) :- match(S, B, T, A, Sc), Sc >= 0.5.")
        covered = {attribute for _target, attribute in rows}
        assert {"price", "postcode", "street"} <= covered


class TestScenarioPersistence:
    """The catalog's CSV backing makes a wrangling session reproducible from disk."""

    def test_scenario_round_trips_through_csv(self, tmp_path, tiny_scenario):
        for table in (*tiny_scenario.sources(), tiny_scenario.address_reference):
            write_csv(table, tmp_path / f"{table.name}.csv")
        catalog = Catalog(tmp_path)
        loaded = catalog.load_directory()
        assert set(loaded) == {"rightmove", "onthemarket", "deprivation", "address"}

        wrangler = Wrangler()
        wrangler.add_sources([catalog.get("rightmove"), catalog.get("onthemarket"),
                              catalog.get("deprivation")])
        wrangler.set_target_schema(tiny_scenario.target)
        wrangler.add_reference_data(catalog.get("address"))
        outcome = wrangler.run("from_disk", ground_truth=tiny_scenario.ground_truth)
        assert outcome.row_count > 0
        assert outcome.quality.overall() > 0.5


class TestWranglerConfiguration:
    def test_disabled_components_never_execute(self, tiny_scenario):
        config = WranglerConfig(enable_fusion=False, enable_repair=False)
        wrangler = Wrangler(config=config)
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        wrangler.add_reference_data(tiny_scenario.address_reference)
        wrangler.run("all")
        counts = wrangler.trace.execution_counts()
        assert "data_fusion" not in counts
        assert "data_repair" not in counts
        assert "cfd_learning" in counts

    def test_result_summary_is_serialisable(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        outcome = wrangler.run("bootstrap", ground_truth=tiny_scenario.ground_truth)
        summary = outcome.summary()
        assert summary["phase"] == "bootstrap"
        assert summary["rows"] == outcome.row_count
        assert "quality_completeness" in summary
        assert isinstance(outcome, WranglingResult)

    def test_scenario_config_sweeps_compose(self):
        base = ScenarioConfig(properties=50, postcodes=20, seed=2)
        noisier = base.with_noise_scale(1.5)
        assert noisier.properties == base.properties
        assert noisier.rightmove_noise.bedroom_area_rate > base.rightmove_noise.bedroom_area_rate
        scenario = generate_scenario(noisier)
        assert len(scenario.ground_truth) == 50
