"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.context.ahp import PairwiseMatrix, consistency_ratio
from repro.datalog import Program, query
from repro.fusion.duplicates import DuplicatePair, cluster_pairs
from repro.matching.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    name_similarity,
    ngram_similarity,
)
from repro.quality.metrics import attribute_completeness, table_completeness
from repro.relational import Attribute, DataType, Schema, Table, distinct, project, select, union_all
from repro.relational.expressions import col
from repro.relational.keys import normalise_key
from repro.relational.types import coerce_value, infer_type, is_null

# -- strategies ---------------------------------------------------------------

simple_text = st.text(alphabet="abcdefghij XYZ_-", min_size=0, max_size=12)
cell_values = st.one_of(
    st.none(),
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    simple_text,
    st.booleans(),
)


@st.composite
def tables(draw, min_rows: int = 0, max_rows: int = 12):
    """Random small tables with ANY-typed columns."""
    width = draw(st.integers(min_value=1, max_value=4))
    names = [f"c{i}" for i in range(width)]
    schema = Schema("random", [Attribute(name, DataType.ANY) for name in names])
    n_rows = draw(st.integers(min_value=min_rows, max_value=max_rows))
    rows = [tuple(draw(cell_values) for _ in names) for _ in range(n_rows)]
    return Table(schema, rows, coerce=False)


# -- relational invariants -------------------------------------------------------


@given(tables())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_select_never_invents_rows(table):
    predicate = col("c0").is_not_null()
    filtered = select(table, predicate)
    assert len(filtered) <= len(table)
    assert all(values in table.tuples() for values in filtered.tuples())


@given(tables())
@settings(max_examples=60)
def test_distinct_is_idempotent_and_no_larger(table):
    once = distinct(table)
    twice = distinct(once)
    assert len(once) <= len(table)
    assert once.tuples() == twice.tuples()
    assert len(set(once.tuples())) == len(once)


@given(tables(), tables())
@settings(max_examples=40)
def test_union_all_row_count_is_sum(left, right):
    if left.schema.arity != right.schema.arity:
        return
    merged = union_all(left, right.rename(left.name))
    assert len(merged) == len(left) + len(right)


@given(tables(min_rows=1))
@settings(max_examples=60)
def test_projection_preserves_row_count_and_order(table):
    projected = project(table, [table.schema.attribute_names[0]])
    assert len(projected) == len(table)
    first = table.schema.attribute_names[0]
    assert projected.column(first) == table.column(first)


@given(tables())
@settings(max_examples=60)
def test_completeness_is_bounded(table):
    for name in table.schema.attribute_names:
        assert 0.0 <= attribute_completeness(table, name) <= 1.0
    assert 0.0 <= table_completeness(table) <= 1.0


@given(cell_values)
def test_normalise_key_is_idempotent(value):
    once = normalise_key(value)
    assert normalise_key(once) == once


@given(cell_values)
def test_infer_type_coercion_round_trip(value):
    inferred = infer_type(value)
    coerced = coerce_value(value, inferred)
    if is_null(value):
        assert coerced is None
    else:
        assert coerced is not None


# -- similarity invariants ---------------------------------------------------------


@given(simple_text, simple_text)
def test_levenshtein_is_a_metric(left, right):
    assert levenshtein_distance(left, right) == levenshtein_distance(right, left)
    assert levenshtein_distance(left, left) == 0
    assert levenshtein_distance(left, right) <= max(len(left), len(right))


@given(simple_text, simple_text, simple_text)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)


@given(simple_text, simple_text)
def test_similarity_measures_are_bounded_and_symmetric(left, right):
    for measure in (levenshtein_similarity, jaro_winkler_similarity, ngram_similarity,
                    name_similarity):
        forward = measure(left, right)
        backward = measure(right, left)
        assert 0.0 <= forward <= 1.0 + 1e-9
        assert math.isclose(forward, backward, abs_tol=1e-9)


@given(st.sets(st.integers(0, 50)), st.sets(st.integers(0, 50)))
def test_jaccard_bounds_and_identity(left, right):
    value = jaccard_similarity(left, right)
    assert 0.0 <= value <= 1.0
    assert jaccard_similarity(left, left) == 1.0


# -- AHP invariants ------------------------------------------------------------------


@st.composite
def comparison_sets(draw):
    items = [f"i{i}" for i in range(draw(st.integers(min_value=2, max_value=5)))]
    comparisons = {}
    for i, first in enumerate(items):
        for second in items[i + 1:]:
            if draw(st.booleans()):
                comparisons[(first, second)] = draw(
                    st.floats(min_value=1.0, max_value=9.0, allow_nan=False))
    return items, comparisons


@given(comparison_sets())
@settings(max_examples=60)
def test_ahp_weights_are_a_distribution(data):
    items, comparisons = data
    matrix = PairwiseMatrix.from_comparisons(items, comparisons)
    weights = matrix.weight_vector()
    assert set(weights) == set(items)
    assert all(weight >= -1e-9 for weight in weights.values())
    assert math.isclose(sum(weights.values()), 1.0, abs_tol=1e-6)
    assert consistency_ratio(matrix.values) >= 0.0


@given(comparison_sets())
@settings(max_examples=40)
def test_ahp_stated_preferences_are_respected(data):
    items, comparisons = data
    weights = PairwiseMatrix.from_comparisons(items, comparisons).weight_vector()
    # For every *stated* comparison with strength > 1, and no other statements
    # involving either item, the preferred item cannot have a lower weight.
    mentioned = {}
    for (first, second), strength in comparisons.items():
        mentioned[first] = mentioned.get(first, 0) + 1
        mentioned[second] = mentioned.get(second, 0) + 1
    for (first, second), strength in comparisons.items():
        if strength > 1.0 and mentioned[first] == 1 and mentioned[second] == 1:
            assert weights[first] >= weights[second] - 1e-9


# -- datalog invariants ---------------------------------------------------------------


@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=15))
@settings(max_examples=50)
def test_transitive_closure_contains_edges_and_is_transitive(edges):
    program = """
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- edge(X, Y), path(Y, Z).
    """
    results = set(query(program, "path(X, Y)", {"edge": edges}))
    edge_set = {tuple(edge) for edge in edges}
    assert edge_set <= results
    # transitivity: path(a,b) and path(b,c) imply path(a,c)
    for a, b in results:
        for b2, c in results:
            if b == b2:
                assert (a, c) in results


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12))
@settings(max_examples=50)
def test_datalog_evaluation_is_monotone_in_the_edb(edges):
    program = Program.parse("path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).")
    smaller = set(query(program, "path(X, Y)", {"edge": edges[: len(edges) // 2]}))
    larger = set(query(program, "path(X, Y)", {"edge": edges}))
    assert smaller <= larger


# -- fusion invariants -------------------------------------------------------------------


@given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=25),
       st.integers(min_value=20, max_value=20))
@settings(max_examples=50)
def test_cluster_pairs_forms_a_partition(raw_pairs, size):
    pairs = [DuplicatePair(a, b, 0.9) for a, b in raw_pairs if a != b]
    clusters = cluster_pairs(pairs, size)
    seen = [index for cluster in clusters for index in cluster]
    assert len(seen) == len(set(seen))  # no index in two clusters
    assert all(len(cluster) >= 2 for cluster in clusters)
    # every paired index appears in some cluster
    paired = {index for pair in pairs for index in pair.as_tuple()}
    assert paired <= set(seen) | set()
