"""Unit tests for expressions, relational operators, CSV I/O, catalog and keys."""

from __future__ import annotations

import pytest

from repro.relational import (
    Aggregation,
    Attribute,
    Catalog,
    CsvFormatError,
    DataType,
    Schema,
    SchemaError,
    Table,
    TableAlreadyExistsError,
    TableNotFoundError,
    col,
    difference,
    distinct,
    extend,
    group_by,
    join,
    left_outer_join,
    limit,
    lit,
    natural_join,
    normalise_key,
    normalise_key_tuple,
    project,
    read_csv,
    read_csv_text,
    rename_attributes,
    select,
    sort,
    union,
    union_all,
    write_csv,
    write_csv_text,
)


class TestExpressions:
    def test_comparison_and_boolean(self, person_table):
        young_mancunians = select(person_table, (col("age") < 40) & (col("city") == "Manchester"))
        assert {row["name"] for row in young_mancunians} == {"alice", "carol"}

    def test_null_comparisons_are_false(self, person_table):
        assert {row["name"] for row in select(person_table, col("age") > 0)} == {
            "alice", "bob", "carol"}

    def test_is_null_predicates(self, person_table):
        assert [row["name"] for row in select(person_table, col("age").is_null())] == ["dave"]
        assert len(select(person_table, col("age").is_not_null())) == 3

    def test_arithmetic_and_literal(self, person_table):
        with_decade = extend(person_table, "decade", (col("age") / lit(10)))
        assert with_decade[0]["decade"] == pytest.approx(3.4)
        assert with_decade[3]["decade"] is None

    def test_not_and_or(self, person_table):
        outside = select(person_table, ~(col("city") == "Manchester") | (col("age") > 100))
        assert {row["name"] for row in outside} == {"bob", "dave"}

    def test_callable_predicate(self, person_table):
        result = select(person_table, lambda row: row["name"].startswith("a"))
        assert len(result) == 1


class TestProjectRenameExtend:
    def test_project(self, person_table):
        narrowed = project(person_table, ["name"])
        assert narrowed.schema.attribute_names == ("name",)
        assert len(narrowed) == 4

    def test_rename_attributes(self, person_table):
        renamed = rename_attributes(person_table, {"name": "full_name"})
        assert renamed.column("full_name")[0] == "alice"

    def test_extend_duplicate_name_raises(self, person_table):
        with pytest.raises(SchemaError):
            extend(person_table, "name", lit("x"))


class TestJoins:
    @pytest.fixture
    def cities(self):
        schema = Schema("cities", [Attribute("city", DataType.STRING),
                                   Attribute("region", DataType.STRING)])
        return Table(schema, [("Manchester", "North West"), ("Leeds", "Yorkshire")])

    def test_inner_join(self, person_table, cities):
        joined = join(person_table, cities, [("city", "city")])
        assert len(joined) == 3
        assert set(joined.schema.attribute_names) == {"name", "age", "city", "region"}

    def test_left_outer_join_pads_nulls(self, person_table, cities):
        joined = left_outer_join(person_table, cities, [("city", "city")])
        assert len(joined) == 4
        unmatched = [row for row in joined if row["city"] == "Salford"][0]
        assert unmatched["region"] is None

    def test_natural_join(self, person_table, cities):
        assert len(natural_join(person_table, cities)) == 3

    def test_natural_join_without_shared_attributes_raises(self, person_table):
        other = Table(Schema("o", ["x"]), [("1",)])
        with pytest.raises(SchemaError):
            natural_join(person_table, other)

    def test_join_requires_keys(self, person_table, cities):
        with pytest.raises(SchemaError):
            join(person_table, cities, [])

    def test_null_keys_never_match(self, cities):
        schema = Schema("p", ["name", "city"])
        people = Table(schema, [("x", None)])
        assert len(join(people, cities, [("city", "city")])) == 0


class TestSetOperators:
    def test_union_all_and_union(self, person_schema):
        left = Table(person_schema, [("a", 1, "X")])
        right = Table(person_schema, [("a", 1, "X"), ("b", 2, "Y")])
        assert len(union_all(left, right)) == 3
        assert len(union(left, right)) == 2

    def test_union_incompatible_raises(self, person_table):
        other = Table(Schema("o", ["only"]), [("x",)])
        with pytest.raises(SchemaError):
            union_all(person_table, other)

    def test_difference(self, person_schema):
        left = Table(person_schema, [("a", 1, "X"), ("b", 2, "Y")])
        right = Table(person_schema, [("a", 1, "X")])
        assert len(difference(left, right)) == 1

    def test_distinct_on_subset(self, person_table):
        assert len(distinct(person_table, ["city"])) == 3


class TestSortLimitAggregate:
    def test_sort_nulls_last(self, person_table):
        ordered = sort(person_table, ["age"])
        assert ordered[-1]["name"] == "dave"
        assert ordered[0]["name"] == "carol"

    def test_sort_descending(self, person_table):
        ordered = sort(person_table, ["age"], descending=True)
        assert ordered[0]["name"] == "bob"

    def test_limit(self, person_table):
        assert len(limit(person_table, 2)) == 2

    def test_group_by(self, person_table):
        grouped = group_by(person_table, ["city"], [Aggregation("count", "name"),
                                                    Aggregation("avg", "age")])
        by_city = {row["city"]: row for row in grouped}
        assert by_city["Manchester"]["count_name"] == 2
        assert by_city["Manchester"]["avg_age"] == pytest.approx(31.5)
        assert by_city["Leeds"]["avg_age"] is None

    def test_unknown_aggregate_raises(self):
        with pytest.raises(SchemaError):
            Aggregation("median", "age")

    def test_aggregate_whole_table(self, person_table):
        summary = group_by(person_table, [], [Aggregation("max", "age", "oldest"),
                                              Aggregation("count_distinct", "city")])
        assert summary[0]["oldest"] == 41
        assert summary[0]["count_distinct_city"] == 3


class TestCsvIo:
    def test_round_trip_text(self, person_table):
        text = write_csv_text(person_table)
        parsed = read_csv_text(text, name="person")
        assert parsed.column("name") == person_table.column("name")
        assert parsed[3]["age"] is None

    def test_round_trip_file(self, tmp_path, person_table):
        path = tmp_path / "people.csv"
        write_csv(person_table, path)
        loaded = read_csv(path)
        assert loaded.name == "people"
        assert len(loaded) == 4

    def test_empty_input_raises(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("", name="empty")

    def test_ragged_row_raises(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("a,b\n1\n", name="bad")

    def test_duplicate_header_raises(self):
        with pytest.raises(CsvFormatError):
            read_csv_text("a,a\n1,2\n", name="bad")

    def test_explicit_schema_must_match_header(self, person_schema):
        with pytest.raises(CsvFormatError):
            read_csv_text("x,y,z\n1,2,3\n", name="person", schema=person_schema)


class TestCatalog:
    def test_register_and_get(self, person_table):
        catalog = Catalog()
        catalog.register(person_table)
        assert catalog.get("person") is person_table
        assert "person" in catalog
        assert catalog.total_rows() == 4

    def test_duplicate_registration_raises(self, person_table):
        catalog = Catalog()
        catalog.register(person_table)
        with pytest.raises(TableAlreadyExistsError):
            catalog.register(person_table)
        catalog.replace(person_table)

    def test_missing_table_raises(self):
        with pytest.raises(TableNotFoundError):
            Catalog().get("nope")

    def test_register_under_alias(self, person_table):
        catalog = Catalog()
        catalog.register(person_table, name="people")
        assert catalog.get("people").name == "people"

    def test_flush_and_reload(self, tmp_path, person_table):
        catalog = Catalog(tmp_path)
        catalog.register(person_table)
        written = catalog.flush()
        assert len(written) == 1
        fresh = Catalog(tmp_path)
        assert fresh.load_directory() == ["person"]
        assert len(fresh.get("person")) == 4


class TestKeys:
    def test_strings_lose_case_and_whitespace(self):
        assert normalise_key("M1  1AA") == "m11aa"
        assert normalise_key(" Oak Street ") == "oakstreet"

    def test_integral_floats_become_ints(self):
        assert normalise_key(325000.0) == 325000

    def test_null_maps_to_none(self):
        assert normalise_key(None) is None
        assert normalise_key(float("nan")) is None

    def test_tuple_helper(self):
        assert normalise_key_tuple(["M1 1AA", 3.0]) == ("m11aa", 3)
