"""Tests for the parallel batch wrangling runner (repro.wrangler.batch)."""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios.synth import SynthConfig, generate_synthetic, scenario_suite
from repro.wrangler import batch as batch_module
from repro.wrangler.config import WranglerConfig
from repro.wrangler.batch import (
    BatchConfig,
    BatchReport,
    iter_run,
    main,
    run_batch,
    run_scenario,
    table_fingerprint,
    wrangle_scenario,
)

TINY = {"entities": 40, "seed": 3}


def tiny_configs(count: int = 3) -> list[SynthConfig]:
    families = ("product_catalog", "sensor_log", "org_directory")
    return [SynthConfig(family=families[index % 3], seed=20 + index, entities=40)
            for index in range(count)]


class TestSingleScenario:
    def test_run_scenario_produces_structured_result(self):
        result = run_scenario(SynthConfig(family="org_directory", **TINY))
        assert result.ok
        assert result.family == "org_directory"
        assert result.phases == ("bootstrap", "data_context")
        assert result.rows > 0
        assert result.steps > 0
        assert result.manual_actions > 0
        assert 0.0 < result.quality["overall"] <= 1.0
        assert len(result.fingerprint) == 64
        assert result.seconds > 0

    def test_feedback_phase_runs_when_budgeted(self):
        result = run_scenario(SynthConfig(family="product_catalog", **TINY),
                              BatchConfig(feedback_budget=10))
        assert result.phases == ("bootstrap", "data_context", "feedback")

    def test_data_context_can_be_disabled(self):
        result = run_scenario(SynthConfig(family="product_catalog", **TINY),
                              BatchConfig(use_data_context=False))
        assert result.phases == ("bootstrap",)

    def test_failures_become_error_results(self):
        result = run_scenario(SynthConfig(family="no_such_family", seed=1))
        assert not result.ok
        assert "unknown scenario family" in result.error
        assert result.fingerprint == ""

    def test_wrangle_scenario_accepts_prebuilt_scenarios(self):
        scenario = generate_synthetic(SynthConfig(family="sensor_log", **TINY))
        direct = wrangle_scenario(scenario)
        via_config = run_scenario(SynthConfig(family="sensor_log", **TINY))
        assert direct.equivalence_key() == via_config.equivalence_key()

    def test_worker_registry_is_reused_within_a_worker(self):
        first = batch_module._worker_registry()
        sessions = batch_module._worker_sessions()
        second = batch_module._worker_registry()
        assert first is second
        assert batch_module._worker_sessions() == sessions + 1

    def test_table_fingerprint_is_order_independent(self):
        scenario = generate_synthetic(SynthConfig(family="org_directory", **TINY))
        table = scenario.ground_truth
        reversed_table = table.replace_rows(list(reversed(table.tuples())))
        assert table_fingerprint(table) == table_fingerprint(reversed_table)
        assert table_fingerprint(None) != table_fingerprint(table)


class TestBatchExecution:
    def test_serial_and_process_results_are_identical(self):
        configs = tiny_configs(4)
        serial = run_batch(configs, BatchConfig(executor="serial"))
        pooled = run_batch(configs, BatchConfig(executor="process", workers=2))
        assert [r.equivalence_key() for r in serial.results] == \
            [r.equivalence_key() for r in pooled.results]
        assert serial.aggregate() == pooled.aggregate()
        assert pooled.workers == 2

    def test_thread_executor_matches_serial(self):
        configs = tiny_configs(2)
        serial = run_batch(configs, BatchConfig(executor="serial"))
        threaded = run_batch(configs, BatchConfig(executor="thread", workers=2))
        assert [r.equivalence_key() for r in serial.results] == \
            [r.equivalence_key() for r in threaded.results]

    def test_results_preserve_input_order(self):
        configs = tiny_configs(4)
        report = run_batch(configs, BatchConfig(executor="process", workers=2))
        assert [r.name for r in report.results] == [c.label() for c in configs]

    def test_empty_batch(self):
        report = run_batch([], BatchConfig(executor="serial"))
        assert report.results == []
        assert report.aggregate()["scenarios"] == 0

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_batch(tiny_configs(1), BatchConfig(executor="gpu"))

    def test_bad_scenarios_do_not_kill_the_batch(self):
        configs = [*tiny_configs(2), SynthConfig(family="no_such_family", seed=1)]
        report = run_batch(configs, BatchConfig(executor="serial"))
        assert len(report.succeeded) == 2
        assert len(report.failed) == 1
        assert report.aggregate()["failed"] == 1

    def test_kwarg_overrides(self):
        report = run_batch(tiny_configs(2), workers=1, executor="serial")
        assert report.executor == "serial"
        assert report.workers == 1


class TestIterRun:
    def test_streams_results_in_input_order(self):
        configs = tiny_configs(3)
        streamed = list(iter_run(configs, BatchConfig(executor="serial")))
        assert [r.name for r in streamed] == [c.label() for c in configs]

    def test_stream_matches_run_batch(self):
        configs = tiny_configs(3)
        streamed = list(iter_run(configs, BatchConfig(executor="process", workers=2)))
        report = run_batch(configs, BatchConfig(executor="serial"))
        assert [r.equivalence_key() for r in streamed] == \
            [r.equivalence_key() for r in report.results]

    def test_is_lazy_under_serial_executor(self):
        # Pulling one result must not have run the whole batch: the serial
        # path yields as it goes, so large sweeps can stop (or aggregate and
        # discard) without materialising every result.
        ran: list[str] = []
        original = batch_module.run_scenario

        def spy(config, batch=None):
            ran.append(config.label())
            return original(config, batch)

        configs = tiny_configs(3)
        batch_module.run_scenario = spy
        try:
            stream = iter_run(configs, BatchConfig(executor="serial"))
            first = next(stream)
            assert len(ran) == 1
            stream.close()
        finally:
            batch_module.run_scenario = original
        assert first.name == configs[0].label()
        assert len(ran) == 1

    def test_early_close_shuts_pool_down(self):
        stream = iter_run(tiny_configs(3), BatchConfig(executor="process", workers=2))
        first = next(stream)
        stream.close()  # must not hang or leak the pool
        assert first.ok

    def test_empty_stream(self):
        assert list(iter_run([], BatchConfig(executor="serial"))) == []


class TestFeedbackRounds:
    def test_multiple_rounds_extend_the_phase_list(self):
        result = run_scenario(SynthConfig(family="product_catalog", **TINY),
                              BatchConfig(feedback_budget=4, feedback_rounds=3))
        assert result.ok, result.error
        assert result.phases == ("bootstrap", "data_context", "feedback",
                                 "feedback2", "feedback3")
        assert result.incremental_patches == 0

    def test_incremental_rounds_patch_and_match_full_runs(self):
        config = SynthConfig(family="product_catalog", **TINY)
        full = run_scenario(config, BatchConfig(feedback_budget=4, feedback_rounds=2))
        patched = run_scenario(
            config,
            BatchConfig(feedback_budget=4, feedback_rounds=2,
                        wrangler=WranglerConfig(enable_incremental=True)))
        assert full.ok and patched.ok, (full.error, patched.error)
        assert patched.incremental_patches >= 1
        # The incremental engine is an optimisation, not a semantics change.
        assert patched.fingerprint == full.fingerprint
        assert patched.quality == full.quality


class TestCheckpointing:
    def test_restart_reloads_completed_shards(self, tmp_path):
        configs = tiny_configs(3)
        batch = BatchConfig(executor="serial")
        first = run_batch(configs, batch, checkpoint_dir=str(tmp_path))
        assert not first.failed
        assert all(not result.checkpointed for result in first.results)
        assert len(list(tmp_path.glob("*.json"))) == len(configs)

        second = run_batch(configs, batch, checkpoint_dir=str(tmp_path))
        assert all(result.checkpointed for result in second.results)
        assert [r.equivalence_key() for r in second.results] == [
            r.equivalence_key() for r in first.results]

    def test_corrupt_checkpoint_reruns_that_shard(self, tmp_path):
        configs = tiny_configs(2)
        batch = BatchConfig(executor="serial")
        run_batch(configs, batch, checkpoint_dir=str(tmp_path))
        victim = sorted(tmp_path.glob("*.json"))[0]
        victim.write_text("{not json", encoding="utf-8")
        report = run_batch(configs, batch, checkpoint_dir=str(tmp_path))
        assert sum(1 for result in report.results if result.checkpointed) == 1
        assert not report.failed

    def test_fingerprint_mismatch_invalidates_checkpoints(self, tmp_path):
        configs = tiny_configs(2)
        run_batch(configs, BatchConfig(executor="serial"), checkpoint_dir=str(tmp_path))
        # Changing a result-shaping knob changes the shard fingerprints:
        # nothing may resume from the stale shards.
        report = run_batch(configs, BatchConfig(executor="serial", feedback_budget=3),
                           checkpoint_dir=str(tmp_path))
        assert all(not result.checkpointed for result in report.results)

    def test_tampered_payload_is_rejected(self, tmp_path):
        configs = tiny_configs(1)
        batch = BatchConfig(executor="serial")
        run_batch(configs, batch, checkpoint_dir=str(tmp_path))
        path = next(tmp_path.glob("*.json"))
        payload = json.loads(path.read_text())
        payload["shard_fingerprint"] = "0" * 64
        path.write_text(json.dumps(payload), encoding="utf-8")
        report = run_batch(configs, batch, checkpoint_dir=str(tmp_path))
        assert not report.results[0].checkpointed

    def test_partial_checkpoints_only_run_missing_shards(self, tmp_path):
        configs = tiny_configs(3)
        batch = BatchConfig(executor="serial")
        run_batch(configs[:2], batch, checkpoint_dir=str(tmp_path))
        report = run_batch(configs, batch, checkpoint_dir=str(tmp_path))
        flags = [result.checkpointed for result in report.results]
        assert flags == [True, True, False]
        # Input order is preserved across the cached/fresh interleave.
        assert [result.name for result in report.results] == [
            config.label() for config in configs]


class TestBatchReport:
    def test_by_family_and_as_dict(self):
        report = run_batch(tiny_configs(3), BatchConfig(executor="serial"))
        families = report.by_family()
        assert set(families) == {"product_catalog", "sensor_log", "org_directory"}
        rendered = report.as_dict()
        assert rendered["aggregate"]["succeeded"] == 3
        assert len(rendered["results"]) == 3
        json.dumps(rendered)  # must be JSON-serialisable

    def test_fingerprints_exposed_per_scenario(self):
        configs = tiny_configs(2)
        report = run_batch(configs, BatchConfig(executor="serial"))
        prints = report.fingerprints()
        assert set(prints) == {config.label() for config in configs}
        assert all(len(value) == 64 for value in prints.values())


# -- property: batch == sum of independent sequential runs --------------------

config_strategy = st.builds(
    SynthConfig,
    family=st.sampled_from(("product_catalog", "sensor_log", "org_directory")),
    seed=st.integers(min_value=0, max_value=10_000),
    entities=st.integers(min_value=10, max_value=60),
    sources=st.integers(min_value=1, max_value=3),
    source_coverage=st.floats(min_value=0.3, max_value=1.0),
    noise=st.floats(min_value=0.0, max_value=0.4),
    missing=st.floats(min_value=0.0, max_value=0.4),
    missing_pattern=st.sampled_from(("random", "column", "tail")),
    schema_drift=st.floats(min_value=0.0, max_value=1.0),
)


@given(st.lists(config_strategy, min_size=1, max_size=3))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_batch_aggregate_equals_sum_of_independent_runs(configs):
    """For ANY generated scenario set, the batch runner's aggregate report
    equals the aggregate of independent sequential runs of the same configs
    (and the per-scenario results are identical)."""
    batch = BatchConfig(executor="serial")
    report = run_batch(configs, batch)
    independent = [run_scenario(config, batch) for config in configs]

    assert [r.equivalence_key() for r in report.results] == \
        [r.equivalence_key() for r in independent]
    rebuilt = BatchReport(results=independent, wall_seconds=0.0, workers=1,
                          executor="serial")
    assert report.aggregate() == rebuilt.aggregate()
    assert report.by_family() == rebuilt.by_family()


def test_process_pool_aggregate_equals_independent_runs():
    """The same property holds across the process pool, where scenarios are
    regenerated inside worker processes."""
    configs = tiny_configs(4)
    pooled = run_batch(configs, BatchConfig(executor="process", workers=2))
    independent = [run_scenario(config) for config in configs]
    rebuilt = BatchReport(results=independent, wall_seconds=0.0, workers=1,
                          executor="serial")
    assert pooled.aggregate() == rebuilt.aggregate()
    assert [r.equivalence_key() for r in pooled.results] == \
        [r.equivalence_key() for r in independent]


class TestCommandLine:
    def test_cli_serial_run_with_json_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "--families", "product_catalog", "sensor_log",
            "--per-family", "1", "--entities", "40",
            "--executor", "serial", "--json", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "batch: 2/2 scenarios ok" in captured
        payload = json.loads(out.read_text())
        assert payload["aggregate"]["succeeded"] == 2
        assert len(payload["results"]) == 2

    def test_cli_reports_failures_in_exit_code(self, capsys):
        code = main(["--families", "product_catalog", "--per-family", "1",
                     "--entities", "40", "--executor", "serial",
                     "--missing-pattern", "diagonal", "--quiet"])
        assert code == 1
        assert "FAIL" not in capsys.readouterr().out  # --quiet suppresses rows
