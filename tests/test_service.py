"""Tests for the wrangling service layer (`repro.service`).

Covers the typed request/response surface, session lifecycle
(run/feedback/append/explain/evaluate/simulate), checkpoint/restore
equality (a restored session must be indistinguishable from one that never
died — including under hypothesis-generated random request interleavings),
the session store, the async job queue (per-session FIFO, cancellation,
rate limiting) and the deprecation shims on the old ``Wrangler`` surface.
"""

from __future__ import annotations

import pickle
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.facts import Feedback
from repro.incremental.validate import check_restored
from repro.scenarios.synth import SynthConfig, generate_synthetic
from repro.service import (
    AppendRequest,
    BackgroundService,
    CellAnnotation,
    CheckpointRequest,
    EvaluateRequest,
    ExplainRequest,
    ExplainResponse,
    FeedbackRequest,
    JobRecord,
    JobStatus,
    RateLimiter,
    RateLimitExceeded,
    RunRequest,
    SessionMetrics,
    SessionStore,
    SimulateRequest,
    WranglingSession,
    request_from_dict,
)
from repro.wrangler.config import WranglerConfig
from repro.wrangler.pipeline import Wrangler

TINY = dict(entities=40, sources=2, noise=0.1, missing=0.05)


def tiny_config(seed: int = 11) -> SynthConfig:
    return SynthConfig(family="product_catalog", seed=seed, **TINY)


@pytest.fixture
def session() -> WranglingSession:
    """A bootstrapped, scenario-backed session."""
    sess = WranglingSession.from_scenario(tiny_config())
    sess.run(RunRequest(phase="bootstrap"))
    return sess


# -- the typed surface --------------------------------------------------------


class TestRequestCodec:
    @pytest.mark.parametrize(
        "request_object",
        [
            RunRequest(phase="bootstrap", evaluate=False),
            FeedbackRequest(
                annotations=(CellAnnotation("r1", False, "price"),
                             CellAnnotation("r2", True)),
                incremental=True,
                evaluate=False,
            ),
            AppendRequest(relation="catalog1", rows=(("a", 1), ("b", 2)),
                          incremental=False),
            ExplainRequest(row=3, column="price", render=False),
            ExplainRequest(row="key-7"),
            EvaluateRequest(use_stats=False),
            SimulateRequest(budget=5, seed=9, strategy="random"),
            CheckpointRequest(path="/tmp/x.ckpt"),
        ],
    )
    def test_round_trips_through_kind_and_dict(self, request_object):
        rebuilt = request_from_dict(request_object.kind, request_object.as_dict())
        assert rebuilt == request_object

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            request_from_dict("frobnicate", {})

    def test_prebuilt_feedback_round_trips_with_identity(self):
        fact = Feedback(feedback_id="f1", relation="product_result",
                        row_key="r9", attribute="price", correct=False)
        request = FeedbackRequest(annotations=(fact,))
        rebuilt = request_from_dict("feedback", request.as_dict())
        assert rebuilt.annotations == (fact,)

    def test_metric_and_job_responses_round_trip(self):
        metrics = SessionMetrics(session_id="s", phase="feedback", rows=10,
                                 fingerprint="abc", quality={"accuracy": 0.5},
                                 overall=0.5, incremental={"applied": True},
                                 kb_facts=100, kb_revision=7, steps=3, seconds=0.25)
        assert SessionMetrics.from_dict(metrics.as_dict()) == metrics
        job = JobRecord(job_id="j", session_id="s", kind="run",
                        status=JobStatus.DONE, submitted_at=1.0,
                        result=metrics.as_dict())
        assert JobRecord.from_dict(job.as_dict()) == job
        explain = ExplainResponse(session_id="s", tree={"value": 1}, text="t")
        assert ExplainResponse.from_dict(explain.as_dict()) == explain


# -- session lifecycle --------------------------------------------------------


class TestWranglingSession:
    def test_run_produces_metrics_with_fingerprint(self, session):
        metrics = session.run(RunRequest(phase="bootstrap"))
        assert metrics.rows > 0
        assert metrics.fingerprint == session.fingerprint()
        assert metrics.quality is not None and metrics.overall is not None
        assert metrics.session_id == session.session_id

    def test_feedback_via_cell_annotations(self, session):
        table = session.result()
        key = table.row_keys()[0]
        attribute = table.schema.attribute_names[-1]
        metrics = session.feedback(FeedbackRequest(
            annotations=(CellAnnotation(key, False, attribute),
                         CellAnnotation(key, True))))
        assert metrics.phase.startswith("feedback")
        assert session.requests_served >= 2

    def test_simulate_round_uses_scenario_ground_truth(self, session):
        metrics = session.simulate(SimulateRequest(budget=5))
        assert metrics.phase.startswith("feedback")
        assert session._simulated_rounds == 1

    def test_simulate_without_scenario_is_an_error(self):
        scenario = generate_synthetic(tiny_config())
        wrangler = Wrangler()
        scenario.install(wrangler)
        bare = wrangler.session(name="bare")
        with pytest.raises(ValueError, match="not scenario-backed"):
            bare.simulate(SimulateRequest(budget=3))

    def test_append_extends_a_source(self, session):
        source = session.scenario.sources[0]
        template = source.tuples()[0]
        before = len(session.wrangler.kb.get_table(source.name))
        metrics = session.append(AppendRequest(relation=source.name,
                                               rows=(tuple(template),)))
        assert len(session.wrangler.kb.get_table(source.name)) == before + 1
        assert metrics.rows >= 0

    def test_explain_returns_tree_and_text(self, session):
        response = session.explain(ExplainRequest(row=0))
        assert response.tree["kind"] and response.tree["label"]
        assert response.tree.get("children"), "expected lineage branches"
        assert response.text

    def test_evaluate_matches_wrangler_evaluate(self, session):
        metrics = session.evaluate(EvaluateRequest())
        report = session.wrangler.evaluate()
        assert metrics.overall == pytest.approx(report.overall())
        assert metrics.quality == pytest.approx(report.as_dict())

    def test_handle_dispatches_by_request_type(self, session):
        metrics = session.handle(EvaluateRequest())
        assert isinstance(metrics, SessionMetrics)
        with pytest.raises(TypeError, match="unsupported request"):
            session.handle(object())

    def test_info_describes_the_session(self, session):
        info = session.info()
        assert info["session_id"] == session.session_id
        assert info["rows"] == len(session.result())
        assert info["scenario"] == session.scenario.name

    def test_wrangler_session_method_links_back(self):
        wrangler = Wrangler()
        sess = wrangler.session(session_id="abc", name="mine")
        assert sess.wrangler is wrangler
        assert (sess.session_id, sess.name) == ("abc", "mine")


# -- checkpoint / restore -----------------------------------------------------


class TestCheckpointRestore:
    def test_checkpoint_file_round_trips(self, session, tmp_path):
        path = str(tmp_path / "s.ckpt")
        info = session.checkpoint(path)
        assert info["bytes"] > 0 and info["session_id"] == session.session_id
        restored = WranglingSession.restore(path)
        assert restored.session_id == session.session_id
        assert restored.fingerprint() == session.fingerprint()

    def test_corrupt_checkpoint_fails_loudly(self, session, tmp_path):
        path = str(tmp_path / "s.ckpt")
        session.checkpoint(path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:-10])
        with pytest.raises(ValueError, match="corrupt"):
            WranglingSession.restore(path)

    def test_foreign_pickle_is_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        payload = pickle.dumps({"format": 999, "session": None})
        import hashlib

        digest = hashlib.sha256(payload).hexdigest()
        path.write_bytes(digest.encode() + b"\n" + payload)
        with pytest.raises(ValueError, match="format"):
            WranglingSession.restore(str(path))

    def test_restored_session_serves_identical_feedback(self):
        """The tentpole acceptance criterion: checkpoint → kill → restore →
        feedback must be bit-identical to an uninterrupted session."""
        report = check_restored(tiny_config(seed=5), rounds=2, budget=6, seed=5)
        assert report.ok, report.describe()

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.lists(st.sampled_from(["simulate", "append", "evaluate", "run"]),
                        min_size=1, max_size=4),
           cut=st.integers(min_value=0, max_value=3))
    def test_restore_is_invisible_under_random_interleavings(self, tmp_path_factory,
                                                             ops, cut):
        """Whatever the request mix, killing and restoring the session at a
        random point must not change any subsequent response."""
        path = str(tmp_path_factory.mktemp("ckpt") / "s.ckpt")
        live = WranglingSession.from_scenario(tiny_config(seed=13))
        live.run(RunRequest(phase="bootstrap"))
        source = live.scenario.sources[0]
        template = tuple(source.tuples()[0])

        def requests():
            for name in ops:
                if name == "simulate":
                    yield SimulateRequest(budget=3)
                elif name == "append":
                    yield AppendRequest(relation=source.name, rows=(template,))
                elif name == "evaluate":
                    yield EvaluateRequest()
                else:
                    yield RunRequest(phase="touch")

        def comparable(answer):
            payload = answer.as_dict()
            payload.pop("seconds", None)  # wall clock is the one legal difference
            if payload.get("incremental"):
                payload["incremental"].pop("metrics_seconds", None)
            return payload

        survivor = None
        for position, request in enumerate(requests()):
            if position == min(cut, len(ops) - 1):
                live.checkpoint(path)
                survivor = WranglingSession.restore(path)
            live_answer = live.handle(request)
            if survivor is not None:
                restored_answer = survivor.handle(request)
                assert comparable(restored_answer) == comparable(live_answer)
        assert survivor.fingerprint() == live.fingerprint()


# -- session store ------------------------------------------------------------


class TestSessionStore:
    def test_create_get_list_drop(self):
        store = SessionStore()
        sess = store.create(tiny_config(), name="one")
        assert store.get(sess.session_id) is sess
        assert sess.session_id in store and len(store) == 1
        assert [info["name"] for info in store.list()] == ["one"]
        store.drop(sess.session_id)
        with pytest.raises(KeyError, match="unknown session"):
            store.get(sess.session_id)

    def test_duplicate_registration_is_an_error(self):
        store = SessionStore()
        sess = store.create(tiny_config())
        with pytest.raises(ValueError, match="already exists"):
            store.add(sess)

    def test_empty_session_for_manual_sources(self):
        store = SessionStore()
        sess = store.create(config=WranglerConfig(track_provenance=False))
        assert sess.result() is None
        assert sess.scenario is None

    def test_checkpoint_uses_store_directory(self, tmp_path):
        store = SessionStore(str(tmp_path))
        sess = store.create(tiny_config())
        sess.run(RunRequest(phase="bootstrap"))
        info = store.checkpoint(sess.session_id)
        assert info["path"].startswith(str(tmp_path))
        fingerprint = sess.fingerprint()
        restored = store.restore(sess.session_id)
        assert store.get(sess.session_id) is restored
        assert restored.fingerprint() == fingerprint

    def test_memory_only_store_requires_explicit_paths(self):
        store = SessionStore()
        with pytest.raises(ValueError, match="no directory"):
            store.checkpoint_path("s1")


# -- rate limiting ------------------------------------------------------------


class TestRateLimiter:
    def test_burst_then_refill(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=2, clock=lambda: clock[0])
        assert limiter.try_acquire("t") == 0.0
        assert limiter.try_acquire("t") == 0.0
        assert limiter.try_acquire("t") > 0.0  # bucket empty
        clock[0] += 1.0  # one token refilled
        assert limiter.try_acquire("t") == 0.0

    def test_tenants_are_independent(self):
        limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: 0.0)
        assert limiter.try_acquire("a") == 0.0
        assert limiter.try_acquire("b") == 0.0
        assert limiter.try_acquire("a") > 0.0

    def test_check_raises_with_retry_hint(self):
        limiter = RateLimiter(rate=2.0, burst=1, clock=lambda: 0.0)
        limiter.check("t")
        with pytest.raises(RateLimitExceeded) as excinfo:
            limiter.check("t")
        assert excinfo.value.retry_after == pytest.approx(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0)


# -- the job queue ------------------------------------------------------------


@pytest.fixture(scope="class")
def service():
    svc = BackgroundService(SessionStore(), workers=2)
    yield svc
    svc.close()


class TestJobQueue:
    def test_submit_wait_returns_metrics_payload(self, service):
        sess = service.store.create(tiny_config(seed=21))
        job = service.submit(sess.session_id, RunRequest(phase="bootstrap"))
        assert not job.finished  # submission returns before the round runs
        finished = service.wait(job.job_id, timeout=60)
        assert finished.status == JobStatus.DONE
        assert finished.result["rows"] > 0
        assert finished.finished and finished.started_at is not None

    def test_jobs_of_one_session_run_in_submission_order(self, service):
        sess = service.store.create(tiny_config(seed=22))
        jobs = [service.submit(sess.session_id, RunRequest(phase="bootstrap"))]
        jobs += [service.submit(sess.session_id, SimulateRequest(budget=2))
                 for _ in range(3)]
        finished = [service.wait(job.job_id, timeout=120) for job in jobs]
        assert all(job.status == JobStatus.DONE for job in finished)
        starts = [job.started_at for job in finished]
        assert starts == sorted(starts)
        # KB revision strictly grows across the ordered rounds.
        revisions = [job.result["kb_revision"] for job in finished]
        assert revisions == sorted(revisions)

    def test_failed_job_carries_the_error(self, service):
        sess = service.store.create(tiny_config(seed=23))
        payload = service.submit(
            sess.session_id, AppendRequest(relation="nope", rows=(("x",),)))
        finished = service.wait(payload.job_id, timeout=60)
        assert finished.status == JobStatus.FAILED
        assert "nope" in finished.error
        with pytest.raises(RuntimeError, match="failed"):
            service.perform(sess.session_id,
                            AppendRequest(relation="nope", rows=(("x",),)))

    def test_unknown_session_fails_fast(self, service):
        with pytest.raises(KeyError, match="unknown session"):
            service.submit("ghost", RunRequest())

    def test_cancel_only_pending_jobs(self, service):
        sess = service.store.create(tiny_config(seed=24))
        first = service.submit(sess.session_id, RunRequest(phase="bootstrap"))
        queued = [service.submit(sess.session_id, SimulateRequest(budget=2))
                  for _ in range(4)]
        cancelled = [job for job in queued if service.cancel(job.job_id)]
        assert cancelled, "expected at least one still-pending job to cancel"
        for job in cancelled:
            record = service.wait(job.job_id, timeout=60)
            assert record.status == JobStatus.CANCELLED
            assert record.result is None
        done = service.wait(first.job_id, timeout=60)
        assert done.status == JobStatus.DONE
        assert not service.cancel(first.job_id)  # terminal jobs cannot cancel

    def test_rate_limited_tenant_is_rejected(self):
        clock = [0.0]
        svc = BackgroundService(
            SessionStore(), workers=1,
            rate_limiter=RateLimiter(rate=1.0, burst=2, clock=lambda: clock[0]))
        try:
            sess = svc.store.create(tiny_config(seed=25))
            svc.submit(sess.session_id, EvaluateRequest(), tenant="greedy")
            svc.submit(sess.session_id, EvaluateRequest(), tenant="greedy")
            with pytest.raises(RateLimitExceeded):
                svc.submit(sess.session_id, EvaluateRequest(), tenant="greedy")
            # Another tenant (and a refilled bucket) still get through.
            svc.submit(sess.session_id, EvaluateRequest(), tenant="patient")
            clock[0] += 1.0
            svc.submit(sess.session_id, EvaluateRequest(), tenant="greedy")
        finally:
            svc.close()

    def test_jobs_listing_filters_by_session(self, service):
        sess = service.store.create(tiny_config(seed=26))
        job = service.submit(sess.session_id, RunRequest(phase="bootstrap"))
        service.wait(job.job_id, timeout=60)
        mine = service.jobs(sess.session_id)
        assert [record.job_id for record in mine] == [job.job_id]
        assert job.job_id in {record.job_id for record in service.jobs()}


# -- the deprecated Wrangler surface ------------------------------------------


class TestDeprecatedSurface:
    def test_old_methods_warn_but_still_work(self, session):
        wrangler = session.wrangler
        table = session.result()
        key = table.row_keys()[0]
        annotation = wrangler.feedback_on_tuple(key, correct=True)
        with pytest.warns(DeprecationWarning, match="session API"):
            result = wrangler.apply_feedback([annotation], evaluate=False)
        assert result.table is not None
        source = session.scenario.sources[0]
        with pytest.warns(DeprecationWarning, match="session API"):
            wrangler.append_source_rows(source.name, [source.tuples()[0]])

    def test_result_explain_equals_wrangler_explain(self, session):
        wrangler = session.wrangler
        result = wrangler.run("touch", evaluate=False)
        assert result.explain(0).as_dict() == wrangler.explain(0).as_dict()

    def test_result_explain_catalog_kwarg_is_deprecated(self, session):
        wrangler = session.wrangler
        result = wrangler.run("touch", evaluate=False)
        with pytest.warns(DeprecationWarning, match="catalog"):
            result.explain(0, catalog=wrangler.kb.catalog)

    def test_session_surface_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sess = WranglingSession.from_scenario(tiny_config(seed=31))
            sess.run(RunRequest(phase="bootstrap"))
            sess.simulate(SimulateRequest(budget=3))
            source = sess.scenario.sources[0]
            sess.append(AppendRequest(relation=source.name,
                                      rows=(tuple(source.tuples()[0]),)))
            sess.evaluate(EvaluateRequest())
            sess.explain(ExplainRequest(row=0))
