"""Unit tests for the real-estate scenario generator and the manual-ETL baseline."""

from __future__ import annotations

import pytest

from repro.baselines import ManualEtlConfig, ManualEtlPipeline, default_real_estate_etl
from repro.quality import accuracy_against_reference, functional_dependency_confidence
from repro.relational.types import is_null
from repro.scenarios import ScenarioConfig, generate_scenario, target_schema


class TestScenarioGeneration:
    def test_determinism(self):
        left = generate_scenario(ScenarioConfig(properties=60, postcodes=20, seed=3))
        right = generate_scenario(ScenarioConfig(properties=60, postcodes=20, seed=3))
        assert left.rightmove.tuples() == right.rightmove.tuples()
        assert left.ground_truth.tuples() == right.ground_truth.tuples()

    def test_different_seeds_differ(self):
        left = generate_scenario(ScenarioConfig(properties=60, postcodes=20, seed=3))
        right = generate_scenario(ScenarioConfig(properties=60, postcodes=20, seed=4))
        assert left.rightmove.tuples() != right.rightmove.tuples()

    def test_schemas_match_figure_2(self, small_scenario):
        assert small_scenario.target.attribute_names == (
            "type", "description", "street", "postcode", "bedrooms", "price", "crimerank")
        assert small_scenario.rightmove.schema.attribute_names == (
            "price", "street", "postcode", "bedrooms", "type", "description")
        assert small_scenario.onthemarket.schema.attribute_names == (
            "asking_price", "address_street", "post_code", "beds", "property_type", "summary")
        assert small_scenario.deprivation.schema.attribute_names == ("postcode", "crime")
        assert small_scenario.address_reference.schema.attribute_names == (
            "street", "city", "postcode")

    def test_coverage_fractions(self, small_scenario):
        config = small_scenario.config
        total = config.properties
        assert len(small_scenario.ground_truth) == total
        assert 0.5 * config.rightmove_coverage <= len(small_scenario.rightmove) / total <= 1.0
        assert 0.4 * config.onthemarket_coverage <= len(small_scenario.onthemarket) / total <= 1.0

    def test_postcode_determines_street_in_reference(self, small_scenario):
        confidence = functional_dependency_confidence(
            small_scenario.address_reference, ["postcode"], "street")
        assert confidence == 1.0

    def test_ground_truth_crimerank_comes_from_deprivation(self, small_scenario):
        crime = {row["postcode"]: row["crime"] for row in small_scenario.deprivation.rows()}
        for row in small_scenario.ground_truth.rows():
            if row["crimerank"] is not None:
                assert crime[row["postcode"]] == row["crimerank"]

    def test_sources_are_noisy_but_related_to_truth(self, small_scenario):
        accuracy = accuracy_against_reference(
            small_scenario.rightmove, small_scenario.ground_truth, ["postcode", "price"])
        assert 0.5 < accuracy < 1.0

    def test_noise_scaling(self):
        config = ScenarioConfig(properties=50, postcodes=20, seed=1).with_noise_scale(2.0)
        assert config.rightmove_noise.bedroom_area_rate == pytest.approx(0.30)
        zero = ScenarioConfig(properties=50, postcodes=20, seed=1).with_noise_scale(0.0)
        scenario = generate_scenario(zero)
        # with zero noise every listed price appears verbatim in the ground truth
        truth_prices = set(scenario.ground_truth.column("price"))
        assert set(v for v in scenario.rightmove.column("price") if v is not None) <= truth_prices

    def test_web_pages_round_trip_row_counts(self, tiny_scenario):
        pages = tiny_scenario.web_pages()
        assert set(pages) == {"rightmove", "onthemarket"}
        assert sum(len(p) for p in pages["rightmove"]) == len(tiny_scenario.rightmove)

    def test_target_schema_helper(self):
        assert target_schema("t").name == "t"


class TestManualEtlBaseline:
    def test_manual_actions_counted(self):
        pipeline = default_real_estate_etl()
        # 6 + 6 + 2 attribute mappings, 2 union sources, 1 join (x2), 7 target attributes
        assert pipeline.manual_actions() == 14 + 2 + 2 + 7

    def test_runs_over_scenario(self, small_scenario):
        pipeline = default_real_estate_etl()
        sources = {table.name: table for table in small_scenario.sources()}
        result = pipeline.run(sources, small_scenario.target)
        assert len(result) == len(small_scenario.rightmove) + len(small_scenario.onthemarket)
        assert result.schema.attribute_names == small_scenario.target.attribute_names
        # the deprivation join fills crimerank for most rows with a clean postcode
        filled = sum(1 for v in result.column("crimerank") if not is_null(v))
        assert filled > 0.5 * len(result)

    def test_missing_sources_are_skipped(self, small_scenario):
        pipeline = default_real_estate_etl()
        result = pipeline.run({"rightmove": small_scenario.rightmove}, small_scenario.target)
        assert len(result) == len(small_scenario.rightmove)
        assert all(is_null(v) for v in result.column("crimerank"))

    def test_empty_configuration_gives_empty_result(self, small_scenario):
        pipeline = ManualEtlPipeline(ManualEtlConfig(
            attribute_mappings={}, union_sources=(), target_attributes=()))
        result = pipeline.run({}, small_scenario.target)
        assert len(result) == 0

    def test_quality_comparable_to_sources(self, small_scenario):
        pipeline = default_real_estate_etl()
        sources = {table.name: table for table in small_scenario.sources()}
        result = pipeline.run(sources, small_scenario.target)
        accuracy = accuracy_against_reference(
            result, small_scenario.ground_truth, ["postcode", "price"])
        assert accuracy > 0.5
