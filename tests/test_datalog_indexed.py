"""Edge cases the hash-indexed join path must preserve.

Every semantic test runs the same program through ``Engine(indexed=True)``
and the ``indexed=False`` escape hatch and requires identical models, so the
naive nested-loop evaluation stays the executable specification of the
indexed one. The remaining tests pin down index lifecycle (lazy build,
incremental maintenance, invalidation on ``remove``/``copy``/``merge``) and
the constant-key semantics (``1``/``1.0`` match, ``True`` never matches
``1``) in both probe and scan paths.
"""

from __future__ import annotations

import pytest

from repro.datalog import Database, Engine, Program
from repro.datalog.engine import _constants_match, _unify
from repro.datalog.terms import Atom, Constant, Variable, hash_key, row_key


def models_of(text: str, edb: dict) -> tuple[Database, Database]:
    """Evaluate ``text`` over ``edb`` with both engine modes."""
    program = Program.parse(text)
    return (Engine(program, indexed=True).run(edb),
            Engine(program, indexed=False).run(edb))


def assert_identical(text: str, edb: dict) -> Database:
    """Assert both modes derive the same model; return the indexed one."""
    indexed, naive = models_of(text, edb)

    def snapshot(model: Database) -> dict:
        return {p: sorted(model.relation(p), key=repr) for p in model.predicates()}

    assert snapshot(indexed) == snapshot(naive)
    return indexed


class TestDeltaSemanticsAcrossStrata:
    def test_negation_over_recursive_predicate(self):
        """Stratum 2 negates the fixpoint of stratum 1, not a partial delta."""
        edb = {
            "edge": [("a", "b"), ("b", "c"), ("c", "d"), ("x", "y")],
            "node": [("a",), ("b",), ("c",), ("d",), ("x",), ("y",)],
        }
        model = assert_identical("""
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- tc(X, Y), edge(Y, Z).
            unreach(X, Y) :- node(X), node(Y), not tc(X, Y).
        """, edb)
        assert ("a", "d") in model.relation("tc")
        assert ("a", "d") not in model.relation("unreach")
        # d reaches nothing, so every (d, _) pair is unreachable.
        assert ("d", "a") in model.relation("unreach")
        assert ("x", "c") in model.relation("unreach")

    def test_two_recursive_literals_in_one_rule(self):
        """Semi-naive must take each positive literal's turn as the delta."""
        edb = {"edge": [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]}
        model = assert_identical("""
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- tc(X, Y), tc(Y, Z).
        """, edb)
        assert ("a", "e") in model.relation("tc")
        assert model.count("tc") == 10

    def test_negation_within_recursive_stratum_uses_lower_stratum(self):
        edb = {
            "edge": [("a", "b"), ("b", "c"), ("c", "d")],
            "bad": [("c",)],
        }
        model = assert_identical("""
            safe(X, Y) :- edge(X, Y), not bad(Y).
            safe(X, Z) :- safe(X, Y), edge(Y, Z), not bad(Z).
        """, edb)
        assert ("a", "b") in model.relation("safe")
        assert ("a", "c") not in model.relation("safe")
        assert ("a", "d") not in model.relation("safe")  # path must avoid c


class TestUnificationShapes:
    def test_anonymous_variables_never_join(self):
        edb = {"p": [("a", 1), ("b", 2)], "q": [("a",)]}
        model = assert_identical("r(X) :- p(X, _), q(X).", edb)
        assert model.relation("r") == {("a",)}

    def test_multiple_anonymous_variables_are_independent(self):
        edb = {"t": [("a", 1, 2), ("b", 3, 3)]}
        model = assert_identical("s(X) :- t(X, _, _).", edb)
        assert model.relation("s") == {("a",), ("b",)}

    def test_repeated_variable_in_one_atom(self):
        edb = {"p": [(1, 1), (1, 2), (3, 3)]}
        model = assert_identical("d(X) :- p(X, X).", edb)
        assert model.relation("d") == {(1,), (3,)}

    def test_repeated_variable_with_bound_probe(self):
        """The repeated occurrence is part of the probe key once bound."""
        edb = {"s": [(1,), (2,)], "p": [(1, 1), (2, 3)]}
        model = assert_identical("d(X) :- s(X), p(X, X).", edb)
        assert model.relation("d") == {(1,)}

    def test_constant_positions_probe_the_index(self):
        edb = {"p": [("a", 1), ("a", 2), ("b", 1)]}
        model = assert_identical('r(Y) :- p("a", Y).', edb)
        assert model.relation("r") == {(1,), (2,)}

    def test_mixed_arity_relation_does_not_break_index(self):
        """Rows shorter than the probed columns are skipped, not crashed on."""
        db = Database({"p": [("a",), ("a", 1), ("b", 2)]})
        index = db.index_for("p", (1,))
        assert sorted(index[row_key(("a", 1), (1,))]) == [("a", 1)]
        program = Program.parse("r(X, Y) :- p(X, Y).")
        model = Engine(program).run(db)
        assert model.relation("r") == {("a", 1), ("b", 2)}


class TestIndexLifecycle:
    def test_index_built_lazily_and_maintained_on_add(self):
        db = Database({"p": [("a", 1)]})
        assert db.indexed_positions("p") == []
        index = db.index_for("p", (0,))
        assert db.indexed_positions("p") == [(0,)]
        db.add("p", ("a", 2))
        assert sorted(index[row_key(("a", 2), (0,))]) == [("a", 1), ("a", 2)]
        # Re-inserting an existing row must not duplicate index entries.
        db.add("p", ("a", 2))
        assert len(index[row_key(("a", 2), (0,))]) == 2

    def test_remove_invalidates_indexes(self):
        db = Database({"p": [("a", 1), ("b", 2)]})
        db.index_for("p", (0,))
        db.remove("p", ("a", 1))
        assert db.indexed_positions("p") == []
        rebuilt = db.index_for("p", (0,))
        assert row_key(("a", 1), (0,)) not in rebuilt
        assert rebuilt[row_key(("b", 2), (0,))] == [("b", 2)]

    def test_copy_does_not_share_indexes(self):
        db = Database({"p": [("a", 1)]})
        original_index = db.index_for("p", (0,))
        clone = db.copy()
        assert clone.indexed_positions("p") == []
        clone.add("p", ("a", 2))
        # The original's index must not see the clone's insert, and vice versa.
        assert original_index[row_key(("a", 1), (0,))] == [("a", 1)]
        assert sorted(clone.index_for("p", (0,))[row_key(("a", 2), (0,))]) == [
            ("a", 1), ("a", 2)]
        assert db.relation("p") == {("a", 1)}

    def test_merge_updates_existing_indexes(self):
        db = Database({"p": [("a", 1)]})
        index = db.index_for("p", (0,))
        other = Database({"p": [("a", 2), ("b", 3)], "q": [("z",)]})
        db.merge(other)
        assert sorted(index[row_key(("a", 1), (0,))]) == [("a", 1), ("a", 2)]
        assert index[row_key(("b", 3), (0,))] == [("b", 3)]
        assert db.relation("q") == {("z",)}
        # Merging the same tuples again must not duplicate bucket entries.
        db.merge(other)
        assert len(index[row_key(("a", 1), (0,))]) == 2


class TestConstantKeySemantics:
    """1 / 1.0 / True must behave identically in probes and naive unification.

    Note Python set semantics make ``(1,)``, ``(1.0,)`` and ``(True,)`` one
    stored tuple, so which value a relation holds is first-insert-wins; the
    matching semantics on top are what these tests pin down.
    """

    def test_constants_match_is_symmetric(self):
        for left, right, expected in [
            (1, 1.0, True), (1.0, 1, True),
            (1, True, False), (True, 1, False),
            (1.0, True, False), (True, 1.0, False),
            (0, False, False), (False, 0, False),
            (True, True, True), ("a", "a", True), ("1", 1, False),
        ]:
            assert _constants_match(left, right) is expected
            assert _constants_match(right, left) is expected

    def test_hash_key_mirrors_constants_match(self):
        assert hash_key(1) == hash_key(1.0)
        assert hash_key(1) != hash_key(True)
        assert hash_key(0) != hash_key(False)
        assert hash_key("a") != hash_key(("a",))

    @pytest.mark.parametrize("indexed", [True, False])
    def test_int_probe_matches_float_row(self, indexed):
        program = Program.parse("r(X) :- s(X), p(X).")
        model = Engine(program, indexed=indexed).run({"p": [(1.0,)], "s": [(1,)]})
        assert model.count("r") == 1

    @pytest.mark.parametrize("indexed", [True, False])
    def test_bool_probe_never_matches_int_row(self, indexed):
        program = Program.parse("r(X) :- s(X), p(X).")
        model = Engine(program, indexed=indexed).run({"p": [(1,)], "s": [(True,)]})
        assert model.count("r") == 0

    @pytest.mark.parametrize("indexed", [True, False])
    def test_negation_agrees_with_positive_matching(self, indexed):
        """`not p(True)` must succeed over {(1,)} exactly when p(True) fails.

        The seed engine used raw set membership for negation, which conflated
        True with 1 while positive unification did not; both paths now share
        `_constants_match` semantics.
        """
        program = Program.parse("r(X) :- s(X), not p(X).")
        model = Engine(program, indexed=indexed).run({"p": [(1,)], "s": [(True,)]})
        assert model.count("r") == 1  # p(True) does not hold, only p(1)
        model = Engine(program, indexed=indexed).run({"p": [(1,)], "s": [(1.0,)]})
        assert model.count("r") == 0  # p(1.0) holds via numeric equality

    @pytest.mark.parametrize("indexed", [True, False])
    def test_decimal_rows_join_with_int_probes(self, indexed):
        """Non-builtin numeric types share the numeric key space."""
        from decimal import Decimal
        from fractions import Fraction

        program = Program.parse("r(X) :- s(X), p(X).")
        model = Engine(program, indexed=indexed).run(
            {"p": [(Decimal("1"),)], "s": [(1,)]})
        assert model.count("r") == 1
        model = Engine(program, indexed=indexed).run(
            {"p": [(Fraction(1, 2),)], "s": [(0.5,)]})
        assert model.count("r") == 1

    @pytest.mark.parametrize("indexed", [True, False])
    def test_ints_beyond_float_range_do_not_crash(self, indexed):
        program = Program.parse("r(X) :- s(X), p(X).")
        model = Engine(program, indexed=indexed).run(
            {"p": [(10**400,)], "s": [(10**400,)]})
        assert model.count("r") == 1
        model = Engine(program, indexed=indexed).run(
            {"p": [(10**400,)], "s": [(1.0,)]})
        assert model.count("r") == 0

    def test_unify_repeated_variable_uses_constant_semantics(self):
        atom = Atom("p", (Variable("X"), Variable("X")))
        assert _unify(atom, (1, 1.0), {}) == {"X": 1}
        assert _unify(atom, (1, True), {}) is None
        assert _unify(Atom("p", (Constant(2), Variable("Y"))), (2.0, "v"), {}) == {"Y": "v"}


class TestPlannerAndEscapeHatch:
    def test_most_selective_literal_first_preserves_results(self):
        """Body order must not affect the model, whatever the planner picks."""
        edb = {
            "big": [(i, i + 1) for i in range(50)],
            "small": [(3,)],
        }
        left = assert_identical("r(X, Y) :- big(X, Y), small(X).", edb)
        right = assert_identical("r(X, Y) :- small(X), big(X, Y).", edb)
        assert left.relation("r") == right.relation("r") == {(3, 4)}

    def test_escape_hatch_flag_is_exposed(self):
        program = Program.parse("r(X) :- p(X).")
        assert Engine(program).indexed is True
        assert Engine(program, indexed=False).indexed is False

    def test_comparisons_and_assignment_identical(self):
        edb = {"q": [(1,), (2,), (3,)]}
        model = assert_identical("p(X, Y) :- q(X), Y = 1, X > Y.", edb)
        assert model.relation("p") == {(2, 1), (3, 1)}


class TestKnowledgeBaseModelCache:
    def test_cached_model_invalidated_on_change(self):
        from repro.core.knowledge_base import KnowledgeBase

        kb = KnowledgeBase()
        kb.assert_fact("edge", "a", "b")
        rules = "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z)."
        assert kb.query("path(X, Y)", rules) == [("a", "b")]
        # Second query at the same revision hits the cache.
        assert kb.query("path(X, Y)", rules) == [("a", "b")]
        kb.assert_fact("edge", "b", "c")
        assert ("a", "c") in kb.query("path(X, Y)", rules)
        kb.retract_fact("edge", "b", "c")
        assert kb.query("path(X, Y)", rules) == [("a", "b")]

    def test_empty_program_queries_share_live_database(self):
        from repro.core.knowledge_base import KnowledgeBase

        kb = KnowledgeBase()
        kb.assert_fact("p", 1)
        assert kb.query("p(X)") == [(1,)]
        kb.assert_fact("p", 2)
        assert kb.query("p(X)") == [(1,), (2,)]
        assert kb.query("missing(X)") == []
