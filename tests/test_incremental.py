"""Tests for the incremental re-wrangling engine (`repro.incremental`)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.facts import Feedback, Predicates
from repro.feedback.annotations import simulate_feedback
from repro.fusion.fusion import DataFuser, FusionPolicy
from repro.incremental import (
    ChangeSet,
    FeedbackDelta,
    FusionPolicyDelta,
    ImpactIndex,
    MappingRevisionDelta,
    RuleDelta,
    SourceRowsDelta,
    cluster_map,
)
from repro.incremental.validate import _prepare, check_incremental
from repro.quality.transducers import CFD_ARTIFACT_KEY
from repro.quality.cfd_learning import LearnedCFDs
from repro.scenarios.synth import SynthConfig, generate_synthetic
from repro.wrangler.config import WranglerConfig


def tables_equal(left, right):
    """Row-for-row equality (same schema, same order, same values)."""
    if left is None or right is None:
        return left is right
    return (
        list(left.schema.attribute_names) == list(right.schema.attribute_names)
        and left.tuples() == right.tuples()
    )


def twin_sessions(config: SynthConfig, wrangler_config: WranglerConfig | None = None):
    """Two identically prepared sessions over one scenario."""
    scenario = generate_synthetic(config)
    wrangler_config = wrangler_config or WranglerConfig()
    return scenario, _prepare(scenario, wrangler_config), _prepare(scenario, wrangler_config)


class TestChangeSetAlgebra:
    def test_union_deduplicates_preserving_order(self):
        a = ChangeSet((FeedbackDelta("r", "k1", "x", False),), origin="a")
        b = ChangeSet(
            (FeedbackDelta("r", "k1", "x", False), FeedbackDelta("r", "k2", None, True)),
            origin="b",
        )
        merged = a | b
        assert len(merged) == 2
        assert merged.deltas[0].row_key == "k1"
        assert merged.origin == "a + b"

    def test_restrict_to_table(self):
        deltas = ChangeSet(
            (
                FeedbackDelta("res_a", "k", "x", False),
                FeedbackDelta("res_b", "k", "x", False),
                SourceRowsDelta("src1", appended=((1,),)),
                FusionPolicyDelta(relation="res_a"),
                MappingRevisionDelta("res", "m2"),
            )
        )
        restricted = deltas.restrict_to_table("res_a", source_relations=["src2"])
        kinds = [delta.kind for delta in restricted]
        # src1 is not a source of res_a, res_b feedback is elsewhere.
        assert kinds == ["feedback", "fusion_policy", "mapping"]
        # Without source knowledge, source deltas are kept conservatively.
        assert "source_rows" in [d.kind for d in deltas.restrict_to_table("res_a")]

    def test_from_feedback_maps_any_attribute_to_none(self):
        annotations = [
            Feedback("f1", "res", "k1", Predicates.ANY_ATTRIBUTE, False),
            Feedback("f2", "res", "k2", "price", True),
        ]
        change_set = ChangeSet.from_feedback(annotations)
        assert change_set.feedback_deltas()[0].attribute is None
        assert change_set.feedback_deltas()[1].attribute == "price"
        assert change_set.describe()["by_kind"] == {"feedback": 2}

    def test_changes_table_only_for_negative_feedback(self):
        assert FeedbackDelta("r", "k", "x", correct=False).changes_table
        assert not FeedbackDelta("r", "k", "x", correct=True).changes_table


class TestClusterMap:
    def test_transitive_clusters(self):
        clusters = cluster_map([("a", "b"), ("b", "c"), ("x", "y")])
        assert clusters["a"] == clusters["c"] == frozenset({"a", "b", "c"})
        assert clusters["x"] == frozenset({"x", "y"})
        assert "z" not in clusters

    def test_empty(self):
        assert cluster_map([]) == {}


class TestImpactIndex:
    @pytest.fixture(scope="class")
    def session(self):
        scenario = generate_synthetic(
            SynthConfig(family="shipment_tracking", entities=150, seed=4)
        )
        return _prepare(scenario, WranglerConfig())

    def index(self, wrangler):
        relation = wrangler.result_name()
        state = wrangler.incremental
        mapping = wrangler.selected_mapping()
        return (
            ImpactIndex(
                wrangler.provenance,
                state,
                mappings={relation: mapping},
                catalog=wrangler.kb.catalog,
            ),
            relation,
        )

    def test_lookup_ref_fans_out_to_joined_rows(self, session):
        index, relation = self.index(session)
        downstream = index.downstream_of_source("depots")
        assert downstream, "joined depot rows must appear in the inverted index"
        assert all(rel == relation for rel, _key in downstream)
        # The driving rows' keys are shipfeed rows, not depot rows.
        assert all(key.startswith("shipfeed") for _rel, key in downstream)

    def test_repair_fan_out_names_exact_cells(self, session):
        index, relation = self.index(session)
        learned = session.kb.get_artifact(CFD_ARTIFACT_KEY)
        repaired = set()
        for cfd in learned.cfds:
            repaired |= index.repaired_by(cfd.cfd_id)
        if not repaired:  # pragma: no cover - scenario-dependent
            pytest.skip("no repairs recorded in this scenario")
        assert all(rel == relation for rel, _key in repaired)

    def test_feedback_closure_includes_cluster_members(self):
        # product_catalog over-merges aggressively, so clusters are plentiful.
        scenario = generate_synthetic(
            SynthConfig(family="product_catalog", entities=120, seed=2)
        )
        wrangler = _prepare(scenario, WranglerConfig())
        index, relation = self.index(wrangler)
        state = wrangler.incremental.get(relation)
        clustered = cluster_map(state.pairs)
        assert clustered, "expected duplicate clusters in product_catalog"
        member = next(iter(clustered))
        change_set = ChangeSet(
            (FeedbackDelta(relation, member, "price", correct=False, feedback_id="fx"),)
        )
        dirty = change_set.row_key_closure(index)
        assert clustered[member] <= dirty[relation].recompute


class TestApplyFeedbackIncremental:
    def run_rounds(self, config, rounds=2, budget=6, wrangler_config=None):
        scenario, incremental, full = twin_sessions(config, wrangler_config)
        outcomes = []
        for round_number in range(1, rounds + 1):
            annotations = simulate_feedback(
                full.result(),
                scenario.ground_truth,
                scenario.evaluation_key,
                budget=budget,
                seed=round_number,
                strategy="targeted",
                id_prefix=f"t{round_number}",
            )
            result = incremental.apply_feedback(annotations, incremental=True)
            outcomes.append(result.details["incremental"])
            full.add_feedback(annotations)
            full.run("feedback")
            assert tables_equal(incremental.result(), full.result()), (
                f"round {round_number} diverged"
            )
        return incremental, full, outcomes

    def test_patched_rounds_match_full_pipeline(self):
        incremental, full, outcomes = self.run_rounds(
            SynthConfig(family="product_catalog", entities=120, seed=2)
        )
        assert any(outcome["applied"] for outcome in outcomes)
        assert sorted(incremental.kb.facts(Predicates.MATCH)) == sorted(
            full.kb.facts(Predicates.MATCH)
        )
        assert (
            incremental.selected_mapping().mapping_id == full.selected_mapping().mapping_id
        )

    def test_tuple_level_feedback_drops_rows_in_both_paths(self):
        scenario, incremental, full = twin_sessions(
            SynthConfig(family="sensor_log", entities=100, seed=5)
        )
        victim = incremental.result().row_keys()[3]
        annotations = [Feedback("drop1", incremental.result_name(), victim,
                                Predicates.ANY_ATTRIBUTE, False)]
        result = incremental.apply_feedback(annotations, incremental=True)
        assert result.details["incremental"]["applied"]
        full.add_feedback(annotations)
        full.run("feedback")
        assert victim not in incremental.result().row_keys()
        assert tables_equal(incremental.result(), full.result())

    def test_stale_snapshot_falls_back_and_still_matches(self):
        scenario, incremental, full = twin_sessions(
            SynthConfig(family="product_catalog", entities=100, seed=7)
        )
        incremental.incremental.get(incremental.result_name()).mark_stale("test-staleness")
        annotations = simulate_feedback(
            full.result(), scenario.ground_truth, scenario.evaluation_key,
            budget=5, seed=1, strategy="targeted", id_prefix="s",
        )
        result = incremental.apply_feedback(annotations, incremental=True)
        assert not result.details["incremental"]["applied"]
        assert "test-staleness" in result.details["incremental"]["reason"]
        full.add_feedback(annotations)
        full.run("feedback")
        assert tables_equal(incremental.result(), full.result())

    def test_incremental_disabled_without_provenance(self):
        scenario = generate_synthetic(SynthConfig(family="org_directory", entities=80, seed=1))
        wrangler = _prepare(scenario, WranglerConfig(track_provenance=False))
        annotations = simulate_feedback(
            wrangler.result(), scenario.ground_truth, scenario.evaluation_key,
            budget=3, seed=0, strategy="targeted",
        )
        result = wrangler.apply_feedback(annotations, incremental=True)
        assert not result.details["incremental"]["applied"]
        assert result.table is not None

    def test_positive_feedback_only_keeps_table_untouched(self):
        scenario, incremental, full = twin_sessions(
            SynthConfig(family="org_directory", entities=90, seed=9)
        )
        annotations = [
            annotation
            for annotation in simulate_feedback(
                full.result(), scenario.ground_truth, scenario.evaluation_key,
                budget=40, seed=2, strategy="random", id_prefix="p",
            )
            if annotation.correct
        ][:5]
        if not annotations:  # pragma: no cover - scenario-dependent
            pytest.skip("no confirmable cells in this scenario")
        result = incremental.apply_feedback(annotations, incremental=True)
        assert result.details["incremental"]["applied"]
        full.add_feedback(annotations)
        full.run("feedback")
        assert tables_equal(incremental.result(), full.result())


class TestStructuralDeltas:
    def test_source_append_matches_full_rerun(self):
        scenario, incremental, full = twin_sessions(
            SynthConfig(family="shipment_tracking", entities=120, seed=6)
        )
        source = scenario.sources[0]
        new_rows = [source.tuples()[0], source.tuples()[1]]
        result = incremental.append_source_rows(source.name, new_rows, incremental=True)
        full.append_source_rows(source.name, new_rows, incremental=False)
        assert tables_equal(incremental.result(), full.result())
        assert len(incremental.result()) == len(full.result())
        outcome = result.details["incremental"]
        if outcome["applied"]:
            assert outcome["rows_rematerialised"] >= len(new_rows)

    def test_lookup_append_rematerialises_joined_rows(self):
        scenario, incremental, full = twin_sessions(
            SynthConfig(family="shipment_tracking", entities=120, seed=8)
        )
        # A brand-new depot no shipment references: nothing should change.
        depots = incremental.kb.get_table("depots")
        unknown = ("DEP-9999", "nowhere", "z.nobody")
        before = incremental.result().tuples()
        result = incremental.append_source_rows("depots", [unknown], incremental=True)
        assert result.details["incremental"]["applied"]
        assert incremental.result().tuples() == before
        full.append_source_rows("depots", [unknown], incremental=False)
        assert tables_equal(incremental.result(), full.result())
        assert len(depots) + 1 == len(incremental.kb.get_table("depots"))

    def test_combined_appends_to_one_source_all_materialise(self):
        scenario, incremental, full = twin_sessions(
            SynthConfig(family="org_directory", entities=100, seed=12)
        )
        source = scenario.sources[0]
        first = [source.tuples()[0]]
        second = [source.tuples()[1], source.tuples()[2]]
        # Two appends combined into one change set: both deltas must resolve
        # to their own tail positions, not just the most recent append's.
        table = incremental.kb.get_table(source.name)
        incremental.kb.update_table(table.extend(first + second))
        change_set = ChangeSet(
            (SourceRowsDelta(source.name, appended=tuple(first)),)
        ) | ChangeSet((SourceRowsDelta(source.name, appended=tuple(second)),))
        result = incremental.apply_change_set(change_set)
        full.append_source_rows(source.name, first + second, incremental=False)
        assert tables_equal(incremental.result(), full.result())
        outcome = result.details["incremental"]
        if outcome["applied"]:
            assert outcome["rows_rematerialised"] >= 3

    def test_cfd_removal_reverts_only_its_repairs(self):
        scenario, incremental, full = twin_sessions(
            SynthConfig(family="shipment_tracking", entities=150, seed=4)
        )
        learned = incremental.kb.get_artifact(CFD_ARTIFACT_KEY)
        index = ImpactIndex(
            incremental.provenance,
            incremental.incremental,
            mappings={incremental.result_name(): incremental.selected_mapping()},
            catalog=incremental.kb.catalog,
        )
        victim = next(
            (cfd for cfd in learned.cfds if index.repaired_by(cfd.cfd_id)), None
        )
        if victim is None:  # pragma: no cover - scenario-dependent
            pytest.skip("no repairing CFD in this scenario")

        def retire(wrangler):
            current = wrangler.kb.get_artifact(CFD_ARTIFACT_KEY)
            remaining = [cfd for cfd in current.cfds if cfd.cfd_id != victim.cfd_id]
            witnesses = {
                cfd_id: witness
                for cfd_id, witness in current.witnesses.items()
                if cfd_id != victim.cfd_id
            }
            wrangler.kb.store_artifact(
                CFD_ARTIFACT_KEY, LearnedCFDs(cfds=remaining, witnesses=witnesses)
            )
            wrangler.kb.retract_where(Predicates.CFD, p0=victim.cfd_id)

        retire(incremental)
        result = incremental.apply_change_set(
            ChangeSet((RuleDelta(cfd_ids=(victim.cfd_id,), change="removed"),))
        )
        retire(full)
        full.run("revision")
        assert tables_equal(incremental.result(), full.result())
        outcome = result.details["incremental"]
        if outcome["applied"]:
            assert outcome["rows_recomputed"] > 0

    def test_fusion_policy_flip_refuses_only_clusters(self):
        config = SynthConfig(family="product_catalog", entities=120, seed=2)
        scenario = generate_synthetic(config)
        wrangler = _prepare(scenario, WranglerConfig())
        relation = wrangler.result_name()
        state = wrangler.incremental.get(relation)
        if not state.pairs:  # pragma: no cover - scenario-dependent
            pytest.skip("no duplicate clusters in this scenario")
        before = dict(zip(wrangler.result().row_keys(), wrangler.result().tuples()))
        # Flip the price conflict policy and re-fuse only the clusters.
        wrangler.registry.get("data_fusion")._fuser = DataFuser(
            attribute_policies={"price": FusionPolicy.MAX}
        )
        result = wrangler.apply_change_set(ChangeSet((FusionPolicyDelta(),)))
        outcome = result.details["incremental"]
        assert outcome["applied"]
        assert outcome["clusters_refused"] > 0
        after = dict(zip(wrangler.result().row_keys(), wrangler.result().tuples()))
        clustered = set(cluster_map(state.pairs))
        for key in set(before) & set(after):
            if key not in clustered:
                assert before[key] == after[key], "non-cluster rows must not change"

    def test_mapping_revision_delta_forces_rebuild(self):
        scenario, incremental, full = twin_sessions(
            SynthConfig(family="product_catalog", entities=100, seed=1)
        )
        mapping = incremental.selected_mapping()
        result = incremental.apply_change_set(
            ChangeSet(
                (MappingRevisionDelta(mapping.target_relation, mapping.mapping_id),)
            )
        )
        # A mapping revision is a rebuild, not a patch — and the fallback's
        # full pass must land on the same result.
        assert not result.details["incremental"]["applied"]
        assert tables_equal(incremental.result(), full.result())


class TestIncrementalMetrics:
    """ISSUE 5: metric facts patch from sufficient statistics, and the
    impact index updates in place instead of re-inverting per revision."""

    def feedback_round(self, scenario, session, round_number, budget=5):
        annotations = simulate_feedback(
            session.result(),
            scenario.ground_truth,
            scenario.evaluation_key,
            budget=budget,
            seed=round_number,
            strategy="targeted",
            id_prefix=f"m{round_number}",
        )
        result = session.apply_feedback(annotations, incremental=True, evaluate=False)
        return result.details["incremental"]

    def assert_stats_exact(self, session):
        fast = session.evaluate()
        slow = session.evaluate(use_stats=False)
        assert fast is not None and slow is not None
        assert fast.as_dict() == slow.as_dict()
        assert fast.attribute_completeness == slow.attribute_completeness
        assert fast.row_count == slow.row_count

    def test_feedback_rounds_patch_metrics_without_index_rebuild(self):
        scenario = generate_synthetic(SynthConfig(family="sensor_log", entities=120, seed=3))
        session = _prepare(scenario, WranglerConfig())
        relation = session.result_name()
        for round_number in (1, 2, 3):
            outcome = self.feedback_round(scenario, session, round_number)
            assert outcome["applied"], outcome
            assert relation in outcome["metrics_patched"]
            self.assert_stats_exact(session)
        # Feedback-only closures never need the inverted store at all —
        # the index must not have been built even once.
        index = session.incremental.impact
        assert index is not None and index.builds == 0

    def test_rule_removal_inverts_once_then_patches_in_place(self):
        scenario = generate_synthetic(
            SynthConfig(family="shipment_tracking", entities=150, seed=4)
        )
        session = _prepare(scenario, WranglerConfig())
        learned = session.kb.get_artifact(CFD_ARTIFACT_KEY)
        assert learned is not None and learned.cfds
        victim = learned.cfds[-1]
        remaining = [cfd for cfd in learned.cfds if cfd.cfd_id != victim.cfd_id]
        witnesses = {
            cfd_id: witness
            for cfd_id, witness in learned.witnesses.items()
            if cfd_id != victim.cfd_id
        }
        session.kb.store_artifact(
            CFD_ARTIFACT_KEY, LearnedCFDs(cfds=remaining, witnesses=witnesses)
        )
        session.kb.retract_where(Predicates.CFD, p0=victim.cfd_id)
        outcome = session.apply_change_set(
            ChangeSet((RuleDelta(cfd_ids=(victim.cfd_id,), change="removed"),)),
            evaluate=False,
        ).details["incremental"]
        index = session.incremental.impact
        if outcome["applied"]:
            assert index is not None and index.builds <= 1
            builds_after_rule = index.builds
            # A follow-up feedback round reuses the same inversion.
            follow_up = self.feedback_round(scenario, session, 9)
            if follow_up["applied"]:
                assert session.incremental.impact.builds == builds_after_rule
                self.assert_stats_exact(session)

    def test_source_append_patches_source_metrics(self):
        scenario = generate_synthetic(SynthConfig(family="sensor_log", entities=90, seed=6))
        session = _prepare(scenario, WranglerConfig())
        source = scenario.sources[0].name
        from repro.quality.transducers import quality_stats_stash

        stash = quality_stats_stash(session.kb, create=False)
        assert stash is not None and source in stash.entries
        template = session.kb.get_table(source).tuples()[0]
        result = session.append_source_rows(source, [template, template])
        outcome = result.details["incremental"]
        if outcome["applied"]:
            assert source in outcome["metrics_patched"]
            entry = stash.entries[source]
            assert entry.stats.row_count == len(session.kb.get_table(source))

    def test_base_table_provider_matches_real_execution(self):
        from repro.mapping.execution import MappingExecutor
        from repro.mapping.transducers import _snapshot_base_table_provider

        scenario = generate_synthetic(
            SynthConfig(family="shipment_tracking", entities=80, seed=2)
        )
        session = _prepare(scenario, WranglerConfig())
        # Age the snapshot through a feedback round first: the provider must
        # serve pre-repair base rows even after patches touched the result.
        self.feedback_round(scenario, session, 1)
        mapping = session.selected_mapping()
        provider = _snapshot_base_table_provider(session.kb)
        assert provider is not None
        served = provider(mapping)
        if served is None:
            pytest.skip("snapshot not servable in this scenario")
        target_schema = session.kb.schema_of(mapping.target_relation)
        executed = MappingExecutor(session.kb.catalog).execute(
            mapping, target_schema, result_name="__candidate_check"
        )
        assert dict(zip(served.row_keys(), served.tuples())) == dict(
            zip(executed.row_keys(), executed.tuples())
        )


class TestValidateHarness:
    def test_check_incremental_reports_equal_rounds(self):
        report = check_incremental(
            SynthConfig(family="sensor_log", entities=90, seed=1), rounds=2, budget=4
        )
        assert report.ok, report.describe()
        assert len(report.rounds) == 2
        assert report.patched_rounds >= 1
        assert report.speedup() > 0

    def test_validate_cli_check_passes(self, capsys):
        from repro.incremental.validate import main

        code = main(
            [
                "--family", "org_directory", "--entities", "80",
                "--rounds", "1", "--budget", "3", "--check",
            ]
        )
        assert code == 0
        assert "EQUAL" in capsys.readouterr().out


class TestIncrementalProperty:
    """The satellite contract: for a random scenario and a random feedback
    batch, incremental re-wrangling is row-for-row equal to a from-scratch
    full pipeline, round after round."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        family=st.sampled_from(
            ["product_catalog", "sensor_log", "org_directory", "shipment_tracking"]
        ),
        seed=st.integers(min_value=0, max_value=10_000),
        entities=st.integers(min_value=50, max_value=140),
        budget=st.integers(min_value=1, max_value=10),
        rounds=st.integers(min_value=1, max_value=2),
    )
    def test_incremental_equals_from_scratch(self, family, seed, entities, budget, rounds):
        report = check_incremental(
            SynthConfig(family=family, entities=entities, seed=seed),
            rounds=rounds,
            budget=budget,
            seed=seed,
        )
        assert report.ok, report.describe()
