"""Unit tests for the user-context (AHP) and data-context components."""

from __future__ import annotations

import numpy as np
import pytest

from repro.context import (
    ACCURACY,
    COMPLETENESS,
    CONSISTENCY,
    RELEVANCE,
    Criterion,
    CriterionWeightTransducer,
    DataContext,
    PairwiseMatrix,
    Preference,
    UserContext,
    consistency_ratio,
    derive_weights,
    verbal_strength,
)
from repro.core import KnowledgeBase, Predicates
from repro.relational import Attribute, Schema, Table


class TestCriterion:
    def test_key_round_trip(self):
        criterion = Criterion("completeness", "crimerank")
        assert criterion.key == "completeness.crimerank"
        assert Criterion.from_key(criterion.key) == criterion
        assert Criterion.from_key("consistency") == Criterion("consistency")

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError):
            Criterion("beauty")

    def test_constructors(self):
        assert COMPLETENESS("street").dimension == "completeness"
        assert ACCURACY().attribute == ""
        assert CONSISTENCY("x").attribute == "x"
        assert RELEVANCE().dimension == "relevance"

    def test_str(self):
        assert str(COMPLETENESS("street")) == "completeness of street"
        assert str(CONSISTENCY()) == "consistency"


class TestVerbalScale:
    def test_paper_phrases(self):
        assert verbal_strength("very strongly more important than") == 7.0
        assert verbal_strength("strongly more important than") == 5.0
        assert verbal_strength("moderately more important than") == 3.0

    def test_short_forms_and_equal(self):
        assert verbal_strength("equally") == 1.0
        assert verbal_strength("extremely") == 9.0

    def test_unknown_phrase_rejected(self):
        with pytest.raises(ValueError):
            verbal_strength("sort of better")


class TestAhp:
    def test_identity_matrix_gives_uniform_weights(self):
        matrix = PairwiseMatrix.identity(["a", "b", "c"])
        weights = matrix.weight_vector()
        assert all(w == pytest.approx(1 / 3) for w in weights.values())
        assert matrix.consistency_ratio() == pytest.approx(0.0)

    def test_weights_follow_preferences(self):
        matrix = PairwiseMatrix.from_comparisons(["a", "b"], {("a", "b"): 5.0})
        weights = matrix.weight_vector()
        assert weights["a"] > weights["b"]
        assert weights["a"] / weights["b"] == pytest.approx(5.0, rel=1e-6)

    def test_reciprocal_fill_in(self):
        matrix = PairwiseMatrix.from_comparisons(["a", "b"], {("a", "b"): 3.0})
        assert matrix.values[1, 0] == pytest.approx(1 / 3)

    def test_unknown_item_rejected(self):
        with pytest.raises(KeyError):
            PairwiseMatrix.from_comparisons(["a"], {("a", "z"): 2.0})

    def test_nonpositive_strength_rejected(self):
        with pytest.raises(ValueError):
            PairwiseMatrix.from_comparisons(["a", "b"], {("a", "b"): 0.0})

    def test_derive_weights_validates_input(self):
        with pytest.raises(ValueError):
            derive_weights(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError):
            derive_weights(np.array([[1.0, -1.0], [1.0, 1.0]]))

    def test_consistent_matrix_has_zero_cr(self):
        matrix = np.array([[1, 2, 4], [0.5, 1, 2], [0.25, 0.5, 1]], dtype=float)
        assert consistency_ratio(matrix) == pytest.approx(0.0, abs=1e-9)

    def test_contradictory_matrix_has_high_cr(self):
        # a > b, b > c, but c > a: maximally inconsistent.
        matrix = np.array([[1, 3, 1 / 3], [1 / 3, 1, 3], [3, 1 / 3, 1]], dtype=float)
        assert consistency_ratio(matrix) > 0.1


class TestUserContext:
    def paper_context(self) -> UserContext:
        context = UserContext()
        context.prefer(COMPLETENESS("crimerank"), ACCURACY("type"),
                       "very strongly more important than")
        context.prefer(CONSISTENCY(), COMPLETENESS("bedrooms"),
                       "strongly more important than")
        context.prefer(COMPLETENESS("street"), COMPLETENESS("postcode"),
                       "moderately more important than")
        return context

    def test_preference_strength_validation(self):
        with pytest.raises(ValueError):
            Preference(COMPLETENESS("a"), ACCURACY("b"), -1.0)

    def test_from_phrase(self):
        preference = Preference.from_phrase(COMPLETENESS("a"), "strongly", ACCURACY("b"))
        assert preference.strength == 5.0

    def test_weights_respect_stated_priorities(self):
        weights = {c.key: w for c, w in self.paper_context().weights().items()}
        assert weights["completeness.crimerank"] > weights["accuracy.type"]
        assert weights["consistency"] > weights["completeness.bedrooms"]
        assert weights["completeness.street"] > weights["completeness.postcode"]
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_dimension_weights_normalise(self):
        dims = self.paper_context().dimension_weights()
        assert sum(dims.values()) == pytest.approx(1.0)
        assert dims["completeness"] > dims["accuracy"]

    def test_attribute_weights_within_dimension(self):
        scoped = self.paper_context().attribute_weights("completeness")
        assert scoped["crimerank"] > scoped["postcode"]
        assert sum(scoped.values()) == pytest.approx(1.0)

    def test_empty_context_is_falsy(self):
        context = UserContext()
        assert not context
        assert context.weights() == {}
        assert context.dimension_weights() == {}
        assert context.consistency_ratio() == 0.0

    def test_assert_into_and_from_kb_round_trip(self):
        kb = KnowledgeBase()
        context = self.paper_context()
        context.assert_into(kb)
        assert kb.count(Predicates.PREFERENCE) == 3
        assert kb.count(Predicates.CRITERION_WEIGHT) == len(context.criteria())
        assert kb.has(Predicates.USER_CONTEXT_SET)
        rebuilt = UserContext.from_kb(kb)
        assert len(rebuilt) == 3
        assert {c.key for c in rebuilt.criteria()} == {c.key for c in context.criteria()}

    def test_reasserting_replaces_previous_context(self):
        kb = KnowledgeBase()
        self.paper_context().assert_into(kb)
        other = UserContext().prefer(ACCURACY(), CONSISTENCY(), 3)
        other.assert_into(kb)
        assert kb.count(Predicates.PREFERENCE) == 1

    def test_describe(self):
        lines = self.paper_context().describe()
        assert len(lines) == 3
        assert "more important than" in lines[0]


class TestDataContext:
    def make_reference(self) -> Table:
        schema = Schema("address", [Attribute("street"), Attribute("city"),
                                    Attribute("postcode")])
        return Table(schema, [("Oak Street", "Manchester", "M1 1AA")])

    def test_bindings_and_kinds(self):
        context = DataContext()
        context.reference(self.make_reference(), "property")
        assert len(context) == 1
        assert context.bindings_of_kind(Predicates.CONTEXT_REFERENCE)
        assert not context.bindings_of_kind(Predicates.CONTEXT_MASTER)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DataContext().bind(self.make_reference(), "bogus", "property")

    def test_assert_into_registers_table_and_facts(self):
        kb = KnowledgeBase()
        context = DataContext().reference(self.make_reference(), "property")
        added = context.assert_into(kb)
        assert added == 1
        assert kb.has("data_context", "address", "reference", "property")
        assert kb.has_table("address")
        assert kb.has(Predicates.DATA_CONTEXT_SET)

    def test_attribute_map_defaults_to_identity(self):
        binding = DataContext().reference(self.make_reference(), "property").bindings[0]
        assert binding.mapped_attributes()["street"] == "street"

    def test_describe(self):
        context = DataContext().master(self.make_reference(), "property")
        assert "master" in context.describe()[0]


class TestCriterionWeightTransducer:
    def test_derives_weights_from_preferences(self):
        kb = KnowledgeBase()
        kb.assert_fact(Predicates.PREFERENCE, "completeness.crimerank", "accuracy.type", 7.0)
        transducer = CriterionWeightTransducer()
        assert transducer.can_run(kb)
        result = transducer.execute(kb)
        assert result.facts_added == 2
        weights = dict(kb.facts(Predicates.CRITERION_WEIGHT))
        assert weights["completeness.crimerank"] > weights["accuracy.type"]

    def test_not_runnable_without_preferences(self):
        assert not CriterionWeightTransducer().can_run(KnowledgeBase())
