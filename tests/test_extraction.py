"""Unit tests for the synthetic deep-web extraction substrate."""

from __future__ import annotations

import pytest

from repro.core import KnowledgeBase
from repro.extraction import (
    DataExtractionTransducer,
    ExtractionRule,
    NoiseInjector,
    NoiseProfile,
    SiteTemplate,
    SiteWrapper,
    SyntheticSite,
    WebExtractor,
    induce_wrapper,
    register_web_source,
)
from repro.relational import DataType

TEMPLATE = SiteTemplate(
    name="rightmove",
    field_labels={
        "price": "Price",
        "street": "Street",
        "postcode": "Postcode",
        "bedrooms": "Bedrooms",
        "type": "Property type",
        "description": "Description",
    },
    price_format="currency",
)

RECORDS = [
    {"price": 325000.0, "street": "Oak Street", "postcode": "M1 1AA", "bedrooms": 3,
     "type": "detached", "description": "A lovely home"},
    {"price": 150000.0, "street": "Elm Road", "postcode": "M5 3CC", "bedrooms": 2,
     "type": "flat", "description": "Compact and bijou"},
    {"price": 410000.0, "street": "Mill Lane", "postcode": "SK1 2EF", "bedrooms": None,
     "type": "bungalow", "description": None},
]

HINTS = {
    "price": ("price",),
    "street": ("street",),
    "postcode": ("postcode",),
    "bedrooms": ("bedroom",),
    "type": ("type",),
    "description": ("description",),
}


class TestPages:
    def test_pagination(self):
        site = SyntheticSite(TEMPLATE, page_size=2)
        pages = site.render_pages(RECORDS)
        assert len(pages) == 2
        assert len(pages[0]) == 2
        assert len(pages[1]) == 1
        assert pages[0].page_number == 1

    def test_currency_formatting_and_dropped_nulls(self):
        site = SyntheticSite(TEMPLATE)
        listing = site.render_pages(RECORDS)[0].listings[0]
        fields = listing.field_dict()
        assert fields["Price"] == "£325,000"
        missing = site.render_pages(RECORDS)[0].listings[2].field_dict()
        assert "Bedrooms" not in missing
        assert "Description" not in missing

    def test_dropped_fields_never_rendered(self):
        template = SiteTemplate("minimal", {"price": "Price"}, dropped_fields=("price",))
        listing = SyntheticSite(template).render_pages(RECORDS)[0].listings[0]
        assert "Price" not in listing.field_dict()
        assert "price" not in listing.field_dict()

    def test_render_text(self):
        page = SyntheticSite(TEMPLATE).render_pages(RECORDS)[0]
        text = page.render()
        assert "rightmove" in text
        assert "Oak Street" in text

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            SyntheticSite(TEMPLATE, page_size=0)


class TestNoise:
    def test_missing_rates(self):
        profile = NoiseProfile(missing_rates={"description": 1.0})
        noisy = NoiseInjector(profile, seed=1).corrupt_records(RECORDS)
        assert all(record["description"] is None for record in noisy)

    def test_bedroom_area_error(self):
        profile = NoiseProfile(bedroom_area_rate=1.0)
        noisy = NoiseInjector(profile, seed=1).corrupt_records(RECORDS[:2])
        assert all(record["bedrooms"] >= 90 for record in noisy)

    def test_street_typos_change_text(self):
        profile = NoiseProfile(street_typo_rate=1.0)
        noisy = NoiseInjector(profile, seed=1).corrupt_records(RECORDS)
        assert any(record["street"] != original["street"]
                   for record, original in zip(noisy, RECORDS))

    def test_postcode_drift(self):
        profile = NoiseProfile(postcode_format_rate=1.0)
        noisy = NoiseInjector(profile, seed=2).corrupt_records(RECORDS * 5)
        assert any(record["postcode"] != original["postcode"]
                   for record, original in zip(noisy, RECORDS * 5))

    def test_originals_not_mutated(self):
        profile = NoiseProfile(missing_rates={"price": 1.0})
        NoiseInjector(profile, seed=0).corrupt_records(RECORDS)
        assert RECORDS[0]["price"] == 325000.0

    def test_determinism_per_seed(self):
        profile = NoiseProfile(street_typo_rate=0.5, bedroom_area_rate=0.5)
        first = NoiseInjector(profile, seed=7).corrupt_records(RECORDS)
        second = NoiseInjector(profile, seed=7).corrupt_records(RECORDS)
        assert first == second


class TestWrapperAndExtractor:
    def pages(self):
        return SyntheticSite(TEMPLATE).render_pages(RECORDS)

    def test_induced_wrapper_maps_labels_to_attributes(self):
        wrapper = induce_wrapper("rightmove", self.pages(), HINTS)
        assert set(wrapper.attributes()) == {"price", "street", "postcode", "bedrooms",
                                             "type", "description"}

    def test_extraction_round_trip(self):
        wrapper = induce_wrapper("rightmove", self.pages(), HINTS)
        table = WebExtractor(wrapper).extract(self.pages())
        assert table.name == "rightmove"
        assert len(table) == 3
        prices = sorted(v for v in table.column("price") if v is not None)
        assert prices == [150000.0, 325000.0, 410000.0]
        assert table.schema.dtype("price") in (DataType.FLOAT, DataType.INTEGER)
        assert table.column("bedrooms")[2] is None

    def test_hand_written_wrapper(self):
        wrapper = SiteWrapper("rightmove", (
            ExtractionRule("price", "Price"),
            ExtractionRule("street", "Street"),
        ))
        records = wrapper.extract_pages(self.pages())
        assert records[0]["street"] == "Oak Street"

    def test_unhinted_labels_keep_normalised_names(self):
        wrapper = induce_wrapper("rightmove", self.pages(), {"price": ("price",)})
        assert "property_type" in wrapper.attributes()

    def test_empty_pages_give_empty_wrapper(self):
        assert induce_wrapper("rightmove", [], HINTS).rules == ()


class TestExtractionTransducer:
    def test_extracts_registered_web_sources(self):
        kb = KnowledgeBase()
        kb_pages = SyntheticSite(TEMPLATE).render_pages(RECORDS)
        transducer = DataExtractionTransducer()
        assert not transducer.can_run(kb)
        register_web_source(kb, "rightmove", kb_pages)
        assert transducer.can_run(kb)
        outcome = transducer.execute(kb)
        assert "rightmove" in outcome.tables_written
        assert kb.has_table("rightmove")
        assert kb.source_relations() == ["rightmove"]
        assert len(kb.get_table("rightmove")) == 3

    def test_hand_written_wrapper_takes_precedence(self):
        kb = KnowledgeBase()
        pages = SyntheticSite(TEMPLATE).render_pages(RECORDS)
        wrapper = SiteWrapper("rightmove", (ExtractionRule("price", "Price"),))
        register_web_source(kb, "rightmove", pages, wrapper=wrapper)
        DataExtractionTransducer().execute(kb)
        assert kb.get_table("rightmove").schema.attribute_names == ("price",)
