"""Unit tests for repro.relational.schema and repro.relational.table."""

from __future__ import annotations

import pytest

from repro.relational import (
    ArityError,
    Attribute,
    DataType,
    DuplicateAttributeError,
    Schema,
    SchemaError,
    Table,
    UnknownAttributeError,
)


class TestAttribute:
    def test_string_dtype_is_parsed(self):
        attribute = Attribute("price", "float")
        assert attribute.dtype is DataType.FLOAT

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_with_name_and_type(self):
        attribute = Attribute("price", DataType.FLOAT, description="asking price")
        renamed = attribute.with_name("cost")
        assert renamed.name == "cost"
        assert renamed.dtype is DataType.FLOAT
        assert renamed.description == "asking price"
        retyped = attribute.with_type(DataType.INTEGER)
        assert retyped.dtype is DataType.INTEGER
        assert retyped.name == "price"


class TestSchema:
    def test_string_attributes_are_promoted(self):
        schema = Schema("t", ["a", "b"])
        assert schema.attribute("a").dtype is DataType.ANY

    def test_duplicate_names_rejected(self):
        with pytest.raises(DuplicateAttributeError):
            Schema("t", ["a", "a"])

    def test_unknown_key_rejected(self):
        with pytest.raises(UnknownAttributeError):
            Schema("t", ["a"], key=["b"])

    def test_position_and_contains(self, person_schema):
        assert person_schema.position("age") == 1
        assert "age" in person_schema
        assert "salary" not in person_schema

    def test_unknown_attribute_raises(self, person_schema):
        with pytest.raises(UnknownAttributeError):
            person_schema.attribute("salary")

    def test_project_preserves_order(self, person_schema):
        projected = person_schema.project(["city", "name"])
        assert projected.attribute_names == ("city", "name")

    def test_drop(self, person_schema):
        dropped = person_schema.drop(["age"])
        assert dropped.attribute_names == ("name", "city")

    def test_rename_attributes(self, person_schema):
        renamed = person_schema.rename_attributes({"name": "full_name"})
        assert "full_name" in renamed
        assert "name" not in renamed

    def test_rename_unknown_attribute_raises(self, person_schema):
        with pytest.raises(UnknownAttributeError):
            person_schema.rename_attributes({"salary": "pay"})

    def test_merge_prefixes_duplicates(self, person_schema):
        other = Schema("job", [Attribute("name"), Attribute("title")])
        merged = person_schema.merge(other)
        assert "job.name" in merged
        assert "title" in merged

    def test_compatible_with(self):
        left = Schema("l", [Attribute("a", DataType.INTEGER), Attribute("b", DataType.STRING)])
        right = Schema("r", [Attribute("x", DataType.FLOAT), Attribute("y", DataType.STRING)])
        assert left.compatible_with(right)
        incompatible = Schema("r2", [Attribute("x", DataType.STRING),
                                     Attribute("y", DataType.STRING)])
        assert not left.compatible_with(incompatible)

    def test_round_trip_dict(self, person_schema):
        assert Schema.from_dict(person_schema.to_dict()) == person_schema

    def test_equality_and_hash(self, person_schema):
        clone = Schema.from_dict(person_schema.to_dict())
        assert clone == person_schema
        assert hash(clone) == hash(person_schema)


class TestTable:
    def test_values_are_coerced_to_schema_types(self, person_schema):
        table = Table(person_schema, [("eve", "55", "Bolton")])
        assert table[0]["age"] == 55

    def test_arity_mismatch_raises(self, person_schema):
        with pytest.raises(ArityError):
            Table(person_schema, [("eve", 55)])

    def test_from_dicts_fills_missing_with_null(self, person_schema):
        table = Table.from_dicts(person_schema, [{"name": "eve"}])
        assert table[0]["age"] is None

    def test_from_dicts_strict_rejects_unknown(self, person_schema):
        with pytest.raises(UnknownAttributeError):
            Table.from_dicts(person_schema, [{"name": "eve", "salary": 1}], strict=True)

    def test_infer_schema_from_records(self):
        table = Table.infer("t", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert table.schema.dtype("a") is DataType.INTEGER
        assert table.schema.dtype("b") is DataType.STRING

    def test_infer_requires_records(self):
        with pytest.raises(SchemaError):
            Table.infer("t", [])

    def test_column_and_distinct(self, person_table):
        assert person_table.column("city") == ["Manchester", "Salford", "Manchester", "Leeds"]
        assert person_table.distinct_values("city") == {"Manchester", "Salford", "Leeds"}

    def test_null_count(self, person_table):
        assert person_table.null_count("age") == 1
        assert person_table.null_count("name") == 0

    def test_append_row_returns_new_table(self, person_table):
        grown = person_table.append_row({"name": "erin", "age": 22, "city": "York"})
        assert len(grown) == len(person_table) + 1
        assert len(person_table) == 4

    def test_extend(self, person_table):
        grown = person_table.extend([("frank", 31, "Hull")])
        assert len(grown) == 5

    def test_map_column(self, person_table):
        upper = person_table.map_column("city", lambda c: c.upper() if c else c)
        assert upper[0]["city"] == "MANCHESTER"

    def test_rows_as_mapping(self, person_table):
        row = person_table[1]
        assert dict(row)["name"] == "bob"
        assert row.get("missing", "default") == "default"
        assert "city" in row

    def test_head_and_rename(self, person_table):
        assert len(person_table.head(2)) == 2
        assert person_table.rename("people").name == "people"

    def test_equality(self, person_schema):
        rows = [("a", 1, "X")]
        assert Table(person_schema, rows) == Table(person_schema, rows)

    def test_pretty_renders_header_and_rows(self, person_table):
        text = person_table.pretty(limit=2)
        assert "name" in text
        assert "alice" in text
        assert "more rows" in text
