"""Unit tests for the core architecture: KB, transducers, orchestrator, trace."""

from __future__ import annotations

import pytest

from repro.core import (
    Activity,
    GenericNetworkTransducer,
    KnowledgeBase,
    KnowledgeBaseError,
    Orchestrator,
    OrchestrationError,
    Predicates,
    PreferInstanceMatchingPolicy,
    RegistryError,
    RoundRobinPolicy,
    Trace,
    TraceStep,
    Transducer,
    TransducerRegistry,
    TransducerResult,
)
from repro.core.errors import DependencyError, TransducerError
from repro.relational import Attribute, DataType, Schema, Table


def make_table(name: str = "rightmove") -> Table:
    schema = Schema(name, [Attribute("price", DataType.FLOAT),
                           Attribute("postcode", DataType.STRING)])
    return Table(schema, [(100000.0, "M1 1AA"), (200000.0, "M2 2BB")])


class RecordingTransducer(Transducer):
    """Asserts a fixed fact; used to exercise the orchestration machinery."""

    activity = Activity.MATCHING
    input_dependencies = ("schema(S, source)",)

    def __init__(self, name: str, output_predicate: str = "match_done", priority: int = 100):
        self.name = name
        self.priority = priority
        super().__init__()
        self._output_predicate = output_predicate

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        added = kb.assert_fact(self._output_predicate, self.name)
        return TransducerResult(facts_added=int(added), notes="ran")


class TestKnowledgeBase:
    def test_assert_and_query_facts(self):
        kb = KnowledgeBase()
        assert kb.assert_fact("match", "rightmove", "price", "property", "price", 0.9)
        assert not kb.assert_fact("match", "rightmove", "price", "property", "price", 0.9)
        assert kb.has("match", "rightmove", "price", "property", "price", 0.9)
        assert kb.count("match") == 1

    def test_revision_tracking(self):
        kb = KnowledgeBase()
        base = kb.revision
        kb.assert_fact("schema", "s", "source")
        assert kb.revision == base + 1
        assert kb.predicate_revision("schema") == kb.revision
        kb.assert_fact("schema", "s", "source")  # duplicate: no bump
        assert kb.revision == base + 1
        kb.retract_fact("schema", "s", "source")
        assert kb.revision == base + 2

    def test_retract_where_by_position(self):
        kb = KnowledgeBase()
        kb.assert_fact("match", "a", "x", "t", "x", 0.5)
        kb.assert_fact("match", "b", "y", "t", "y", 0.6)
        removed = kb.retract_where("match", p0="a")
        assert removed == 1
        assert kb.count("match") == 1

    def test_register_table_creates_metadata(self):
        kb = KnowledgeBase()
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)
        assert kb.has("schema", "rightmove", "source")
        assert kb.count("attribute") == 2
        assert kb.source_relations() == ["rightmove"]
        assert kb.get_table("rightmove").row_count == 2

    def test_register_table_rejects_unknown_role(self):
        kb = KnowledgeBase()
        with pytest.raises(KnowledgeBaseError):
            kb.register_table(make_table(), "nonsense")

    def test_update_table_refreshes_row_count(self):
        kb = KnowledgeBase()
        table = make_table()
        kb.register_table(table, Predicates.ROLE_SOURCE)
        bigger = table.extend([(300000.0, "M3 3CC")])
        kb.update_table(bigger)
        assert kb.has("dataset", "rightmove", "source", 3)

    def test_schema_of_metadata_only_relation(self):
        kb = KnowledgeBase()
        schema = Schema("property", [Attribute("price", DataType.FLOAT),
                                     Attribute("postcode", DataType.STRING)])
        kb.describe_schema(schema, Predicates.ROLE_TARGET)
        rebuilt = kb.schema_of("property")
        assert rebuilt.attribute_names == ("price", "postcode")
        assert kb.target_relations() == ["property"]

    def test_schema_of_unknown_relation_raises(self):
        with pytest.raises(KnowledgeBaseError):
            KnowledgeBase().schema_of("ghost")

    def test_datalog_query_with_helper_rules(self):
        kb = KnowledgeBase()
        kb.assert_fact("schema", "rightmove", "source")
        kb.assert_fact("schema", "property", "target")
        rows = kb.query("ready(S, T)",
                        "ready(S, T) :- schema(S, source), schema(T, target).")
        assert rows == [("rightmove", "property")]

    def test_query_unknown_predicate_is_empty(self):
        assert KnowledgeBase().query("nothing(X)") == []

    def test_satisfied(self):
        kb = KnowledgeBase()
        kb.assert_fact("schema", "s", "source")
        assert kb.satisfied(["schema(S, source)"])
        assert not kb.satisfied(["schema(S, source)", "schema(T, target)"])

    def test_artifacts(self):
        kb = KnowledgeBase()
        kb.store_artifact("thing", {"a": 1})
        assert kb.has_artifact("thing")
        assert kb.get_artifact("thing") == {"a": 1}
        assert kb.get_artifact("missing", 42) == 42
        assert kb.artifact_keys() == ["thing"]

    def test_snapshot(self):
        kb = KnowledgeBase()
        kb.assert_fact("schema", "s", "source")
        assert kb.snapshot() == {"schema": [("s", "source")]}


class TestTransducer:
    def test_dependencies_must_parse(self):
        class Broken(Transducer):
            input_dependencies = ("this is not datalog(",)

            def run(self, kb):  # pragma: no cover - never reached
                return TransducerResult()

        with pytest.raises(DependencyError):
            Broken()

    def test_can_run_requires_satisfied_dependencies(self):
        kb = KnowledgeBase()
        transducer = RecordingTransducer("matcher")
        assert not transducer.can_run(kb)
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)
        assert transducer.can_run(kb)

    def test_rerun_only_after_input_change(self):
        kb = KnowledgeBase()
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)
        transducer = RecordingTransducer("matcher")
        transducer.execute(kb)
        assert not transducer.can_run(kb)
        kb.assert_fact("schema", "onthemarket", "source")
        assert transducer.can_run(kb)

    def test_own_output_does_not_retrigger(self):
        kb = KnowledgeBase()
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)

        class SelfFeeding(Transducer):
            activity = Activity.MATCHING
            input_dependencies = ("schema(S, source)",)

            def run(self, inner_kb):
                added = inner_kb.assert_fact("schema", "derived", "source")
                return TransducerResult(facts_added=int(added))

        transducer = SelfFeeding()
        transducer.execute(kb)
        assert not transducer.can_run(kb)

    def test_watch_predicates_extend_input_predicates(self):
        class Watching(RecordingTransducer):
            watch_predicates = ("feedback",)

        transducer = Watching("watcher")
        assert "feedback" in transducer.input_predicates()
        assert "schema" in transducer.input_predicates()

    def test_execute_wraps_failures(self):
        class Exploding(Transducer):
            input_dependencies = ()

            def run(self, kb):
                raise ValueError("boom")

        with pytest.raises(TransducerError):
            Exploding().execute(KnowledgeBase())

    def test_describe_and_reset(self):
        transducer = RecordingTransducer("matcher")
        kb = KnowledgeBase()
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)
        transducer.execute(kb)
        description = transducer.describe()
        assert description["name"] == "matcher"
        assert description["runs"] == 1
        transducer.reset()
        assert not transducer.has_run


class TestRegistry:
    def test_register_and_lookup(self):
        registry = TransducerRegistry([RecordingTransducer("a"), RecordingTransducer("b")])
        assert len(registry) == 2
        assert registry.get("a").name == "a"
        assert "b" in registry
        assert registry.names() == ["a", "b"]

    def test_duplicate_names_rejected(self):
        registry = TransducerRegistry([RecordingTransducer("a")])
        with pytest.raises(RegistryError):
            registry.register(RecordingTransducer("a"))
        registry.register(RecordingTransducer("a"), replace=True)

    def test_unknown_lookup_raises(self):
        with pytest.raises(RegistryError):
            TransducerRegistry().get("ghost")

    def test_by_activity(self):
        registry = TransducerRegistry([RecordingTransducer("a")])
        assert [t.name for t in registry.by_activity(Activity.MATCHING)] == ["a"]
        assert registry.by_activity(Activity.MAPPING) == []


class TestOrchestrator:
    def test_runs_until_quiescent(self):
        kb = KnowledgeBase()
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)
        orchestrator = Orchestrator(kb, [RecordingTransducer("a"), RecordingTransducer("b")])
        trace = orchestrator.run()
        assert len(trace) == 2
        assert orchestrator.runnable() == []

    def test_generic_policy_orders_by_activity_then_priority(self):
        kb = KnowledgeBase()
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)

        class Extractor(RecordingTransducer):
            activity = Activity.EXTRACTION

        matcher = RecordingTransducer("matcher", priority=50)
        extractor = Extractor("extractor", priority=99)
        policy = GenericNetworkTransducer()
        chosen = policy.choose([matcher, extractor], kb, Trace())
        assert chosen is extractor

    def test_prefer_instance_matching_policy(self):
        kb = KnowledgeBase()
        schema_matcher = RecordingTransducer("schema_matching", priority=1)
        instance_matcher = RecordingTransducer("instance_matching", priority=99)
        policy = PreferInstanceMatchingPolicy()
        chosen = policy.choose([schema_matcher, instance_matcher], kb, Trace())
        assert chosen is instance_matcher

    def test_round_robin_policy_cycles(self):
        kb = KnowledgeBase()
        transducers = [RecordingTransducer("a"), RecordingTransducer("b")]
        policy = RoundRobinPolicy()
        first = policy.choose(transducers, kb, Trace())
        second = policy.choose(transducers, kb, Trace())
        assert {first.name, second.name} == {"a", "b"}

    def test_phase_labels_recorded(self):
        kb = KnowledgeBase()
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)
        orchestrator = Orchestrator(kb, [RecordingTransducer("a")])
        orchestrator.set_phase("bootstrap")
        orchestrator.run()
        assert orchestrator.trace.steps[0].phase == "bootstrap"

    def test_step_budget_enforced(self):
        """Two components that keep feeding each other new facts never quiesce;
        the orchestrator's step budget catches the runaway loop."""
        kb = KnowledgeBase()
        kb.assert_fact("ping", 0)

        class Echo(Transducer):
            activity = Activity.MATCHING

            def __init__(self, name, listens_to, emits):
                self.name = name
                self.input_dependencies = (f"{listens_to}(X)",)
                super().__init__()
                self._emits = emits
                self._counter = 0

            def run(self, kb):
                self._counter += 1
                kb.assert_fact(self._emits, self._counter)
                return TransducerResult(facts_added=1)

        orchestrator = Orchestrator(
            kb, [Echo("a", "ping", "pong"), Echo("b", "pong", "ping")], max_steps=5)
        with pytest.raises(OrchestrationError):
            orchestrator.run()

    def test_stall_raises_with_trace(self):
        """Regression: a session where nothing can ever run must raise (with
        the trace and the unmet dependencies), not silently return an empty
        trace."""
        kb = KnowledgeBase()  # no source registered: dependencies unmet
        orchestrator = Orchestrator(kb, [RecordingTransducer("matcher")])
        with pytest.raises(OrchestrationError) as excinfo:
            orchestrator.run()
        assert "unmet input dependencies" in str(excinfo.value)
        assert "matcher" in str(excinfo.value)
        assert "schema(S, source)" in str(excinfo.value)
        assert excinfo.value.trace is orchestrator.trace
        assert len(excinfo.value.trace) == 0

    def test_quiescence_after_progress_does_not_raise(self):
        """A starved transducer is normal once other work has executed (e.g.
        extraction never runs in a table-only session)."""
        kb = KnowledgeBase()
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)

        class Starved(RecordingTransducer):
            input_dependencies = ("web_source(S)",)

        orchestrator = Orchestrator(
            kb, [RecordingTransducer("matcher"), Starved("extractor")])
        trace = orchestrator.run()
        assert len(trace) == 1
        assert orchestrator.pending_dependencies() == {"extractor": ("web_source(S)",)}
        # A later run call on the quiescent session stays silent too.
        assert orchestrator.run() is trace

    def test_empty_registry_quiesces_quietly(self):
        orchestrator = Orchestrator(KnowledgeBase(), [])
        assert len(orchestrator.run()) == 0

    def test_pending_dependencies_reports_each_unmet_goal(self):
        kb = KnowledgeBase()

        class TwoGoals(RecordingTransducer):
            input_dependencies = ("schema(S, source)", "schema(T, target)")

        transducer = TwoGoals("both")
        orchestrator = Orchestrator(kb, [transducer])
        assert orchestrator.pending_dependencies() == {
            "both": ("schema(S, source)", "schema(T, target)")}
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)
        assert orchestrator.pending_dependencies() == {"both": ("schema(T, target)",)}

    def test_budget_error_carries_trace(self):
        kb = KnowledgeBase()
        kb.assert_fact("ping", 0)

        class Echo(Transducer):
            activity = Activity.MATCHING

            def __init__(self, name, listens_to, emits):
                self.name = name
                self.input_dependencies = (f"{listens_to}(X)",)
                super().__init__()
                self._emits = emits
                self._counter = 0

            def run(self, inner_kb):
                self._counter += 1
                inner_kb.assert_fact(self._emits, self._counter)
                return TransducerResult(facts_added=1)

        orchestrator = Orchestrator(
            kb, [Echo("a", "ping", "pong"), Echo("b", "pong", "ping")], max_steps=3)
        with pytest.raises(OrchestrationError) as excinfo:
            orchestrator.run()
        assert len(excinfo.value.trace) == 3

    def test_reset_clears_history(self):
        kb = KnowledgeBase()
        kb.register_table(make_table(), Predicates.ROLE_SOURCE)
        orchestrator = Orchestrator(kb, [RecordingTransducer("a")])
        orchestrator.run()
        orchestrator.reset()
        assert len(orchestrator.trace) == 0
        assert [t.name for t in orchestrator.runnable()] == ["a"]


class TestTrace:
    def make_step(self, index: int, name: str, phase: str = "") -> TraceStep:
        return TraceStep(index=index, transducer=name, activity="matching", runnable=(name,),
                         revision_before=index, revision_after=index + 1, facts_added=1,
                         tables_written=(), duration_seconds=0.01, phase=phase)

    def test_counters_and_reruns(self):
        trace = Trace()
        trace.record(self.make_step(0, "a", "bootstrap"))
        trace.record(self.make_step(1, "a", "feedback"))
        trace.record(self.make_step(2, "b", "feedback"))
        assert trace.execution_counts() == {"a": 2, "b": 1}
        assert trace.reruns() == {"a": 1}
        assert trace.activity_counts() == {"matching": 3}
        assert trace.phase_counts() == {"bootstrap": 1, "feedback": 2}
        assert trace.total_facts_added() == 3
        assert len(trace.steps_in_phase("feedback")) == 2

    def test_rendering(self):
        trace = Trace()
        assert "empty" in trace.to_text()
        trace.record(self.make_step(0, "a"))
        assert "a (matching)" in trace.to_text()
        summary = trace.summary()
        assert summary["steps"] == 1
