"""Unit tests for similarity measures, matchers and matching transducers."""

from __future__ import annotations

import pytest

from repro.core import KnowledgeBase, Predicates
from repro.matching import (
    Correspondence,
    InstanceMatcher,
    InstanceMatcherConfig,
    InstanceMatchingTransducer,
    MatchSet,
    SchemaMatcher,
    SchemaMatcherConfig,
    SchemaMatchingTransducer,
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    name_similarity,
    ngram_similarity,
    normalise_name,
    numeric_overlap,
    token_set_similarity,
)
from repro.relational import Attribute, DataType, Schema, Table


class TestStringSimilarity:
    def test_levenshtein_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("same", "same") == 0

    def test_levenshtein_similarity_bounds(self):
        assert levenshtein_similarity("", "") == 1.0
        assert 0.0 <= levenshtein_similarity("abc", "xyz") <= 1.0

    def test_jaro_winkler_prefers_shared_prefix(self):
        assert jaro_winkler_similarity("crime", "crimerank") > 0.85
        assert jaro_winkler_similarity("abc", "abc") == 1.0
        assert jaro_winkler_similarity("abc", "") == 0.0

    def test_ngram_similarity(self):
        assert ngram_similarity("postcode", "postcode") == 1.0
        assert ngram_similarity("postcode", "zipcode") > 0.2
        assert ngram_similarity("", "") == 1.0
        assert ngram_similarity("a", "") == 0.0

    def test_jaccard_and_tokens(self):
        assert jaccard_similarity({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard_similarity(set(), set()) == 1.0
        assert token_set_similarity("property type", "type of property") == pytest.approx(2 / 3)

    def test_numeric_overlap(self):
        assert numeric_overlap([0, 10], [5, 15]) == pytest.approx(5 / 15)
        assert numeric_overlap([0, 1], [5, 6]) == 0.0
        assert numeric_overlap([], [1]) == 0.0


class TestNameSimilarity:
    def test_normalisation_unifies_conventions(self):
        assert normalise_name("propertyType") == normalise_name("property_type")
        assert normalise_name("PROPERTY TYPE") == "property type"
        assert "bedrooms" in normalise_name("beds")
        assert "postcode" in normalise_name("zip")

    def test_identical_names(self):
        assert name_similarity("price", "price") == 1.0

    def test_abbreviations_match(self):
        assert name_similarity("beds", "bedrooms") > 0.9
        assert name_similarity("post_code", "postcode") > 0.7
        assert name_similarity("desc", "description") > 0.9

    def test_unrelated_names_score_low(self):
        assert name_similarity("price", "crimerank") < 0.5
        assert name_similarity("description", "bedrooms") < 0.5

    def test_prefix_extension_matches(self):
        assert name_similarity("crime", "crimerank") >= 0.8


class TestCorrespondence:
    def test_score_bounds(self):
        with pytest.raises(ValueError):
            Correspondence("s", "a", "t", "b", 1.5)

    def test_with_score_clamps(self):
        c = Correspondence("s", "a", "t", "b", 0.5)
        assert c.with_score(2.0).score == 1.0
        assert c.with_score(-1.0).score == 0.0

    def test_match_set_keeps_best_score(self):
        matches = MatchSet()
        matches.add(Correspondence("s", "a", "t", "b", 0.4))
        matches.add(Correspondence("s", "a", "t", "b", 0.8))
        assert len(matches) == 1
        assert matches.get(("s", "a", "t", "b")).score == 0.8

    def test_match_set_combine_modes(self):
        base = Correspondence("s", "a", "t", "b", 0.4)
        matches = MatchSet([base])
        matches.add(base.with_score(0.8), combine="mean")
        assert matches.get(base.pair).score == pytest.approx(0.6)
        matches.add(base.with_score(0.2), combine="replace")
        assert matches.get(base.pair).score == pytest.approx(0.2)

    def test_filters(self):
        matches = MatchSet([
            Correspondence("s1", "a", "t", "x", 0.9),
            Correspondence("s2", "b", "t", "y", 0.3),
        ])
        assert len(matches.above(0.5)) == 1
        assert len(matches.for_source("s2")) == 1
        assert matches.source_relations() == ["s1", "s2"]

    def test_best_per_target_attribute(self):
        matches = MatchSet([
            Correspondence("s", "a1", "t", "x", 0.7),
            Correspondence("s", "a2", "t", "x", 0.9),
        ])
        best = matches.best_per_target_attribute("s", "t")
        assert best["x"].source_attribute == "a2"

    def test_kb_round_trip_and_replace(self):
        kb = KnowledgeBase()
        MatchSet([Correspondence("s", "a", "t", "x", 0.7)]).assert_into(kb)
        assert kb.count(Predicates.MATCH) == 1
        MatchSet([Correspondence("s", "a", "t", "x", 0.9)]).assert_into(kb, replace=True)
        assert kb.count(Predicates.MATCH) == 1
        loaded = MatchSet.from_kb(kb)
        assert loaded.get(("s", "a", "t", "x")).score == 0.9


SOURCE_SCHEMA = Schema("onthemarket", [
    Attribute("asking_price", DataType.FLOAT),
    Attribute("address_street", DataType.STRING),
    Attribute("post_code", DataType.STRING),
    Attribute("beds", DataType.INTEGER),
    Attribute("property_type", DataType.STRING),
    Attribute("summary", DataType.STRING),
])

TARGET_SCHEMA = Schema("property", [
    Attribute("type", DataType.STRING),
    Attribute("description", DataType.STRING),
    Attribute("street", DataType.STRING),
    Attribute("postcode", DataType.STRING),
    Attribute("bedrooms", DataType.INTEGER),
    Attribute("price", DataType.FLOAT),
    Attribute("crimerank", DataType.INTEGER),
])


class TestSchemaMatcher:
    def test_matches_renamed_attributes(self):
        matches = SchemaMatcher().match(SOURCE_SCHEMA, TARGET_SCHEMA)
        best = matches.best_per_target_attribute("onthemarket", "property")
        assert best["price"].source_attribute == "asking_price"
        assert best["street"].source_attribute == "address_street"
        assert best["postcode"].source_attribute == "post_code"
        assert best["bedrooms"].source_attribute == "beds"

    def test_type_mismatch_penalised(self):
        matcher = SchemaMatcher()
        compatible = matcher.score("price", DataType.FLOAT, "price", DataType.FLOAT)
        mismatched = matcher.score("price", DataType.STRING, "price", DataType.INTEGER)
        assert mismatched < compatible

    def test_threshold_filters_weak_matches(self):
        strict = SchemaMatcher(SchemaMatcherConfig(threshold=0.95))
        matches = strict.match(SOURCE_SCHEMA, TARGET_SCHEMA)
        assert all(c.score >= 0.95 for c in matches)

    def test_match_many(self):
        other = Schema("deprivation", [Attribute("postcode", DataType.STRING),
                                       Attribute("crime", DataType.INTEGER)])
        matches = SchemaMatcher().match_many([SOURCE_SCHEMA, other], TARGET_SCHEMA)
        assert matches.get(("deprivation", "crime", "property", "crimerank")) is not None


class TestInstanceMatcher:
    def make_tables(self):
        source = Table(Schema("src", [Attribute("pc", DataType.STRING),
                                      Attribute("cost", DataType.FLOAT)]),
                       [("M1 1AA", 100.0), ("M2 2BB", 200.0), ("M3 3CC", 300.0)])
        context = Table(Schema("ref", [Attribute("postcode", DataType.STRING),
                                       Attribute("price", DataType.FLOAT)]),
                        [("M1 1AA", 110.0), ("M2 2BB", 190.0), ("M9 9ZZ", 500.0)])
        return source, context

    def test_value_overlap_matches_columns_despite_names(self):
        source, context = self.make_tables()
        matches = InstanceMatcher(InstanceMatcherConfig(threshold=0.2)).match(
            source, context, target_relation="property")
        assert matches.get(("src", "pc", "property", "postcode")) is not None

    def test_numeric_columns_never_match_string_columns(self):
        source, context = self.make_tables()
        matcher = InstanceMatcher(InstanceMatcherConfig(threshold=0.01))
        matches = matcher.match(source, context, target_relation="property")
        assert matches.get(("src", "cost", "property", "postcode")) is None

    def test_column_similarity_bounds(self):
        matcher = InstanceMatcher()
        assert matcher.column_similarity(["a", "b"], ["a", "b"]) == 1.0
        assert matcher.column_similarity(["a"], [1.0]) == 0.0


class TestMatchingTransducers:
    def setup_kb(self) -> KnowledgeBase:
        kb = KnowledgeBase()
        source = Table(SOURCE_SCHEMA, [(250000.0, "Oak Street", "M1 1AA", 3, "flat", "nice")])
        kb.register_table(source, Predicates.ROLE_SOURCE)
        kb.describe_schema(TARGET_SCHEMA, Predicates.ROLE_TARGET)
        return kb

    def test_schema_matching_dependencies_and_output(self):
        kb = KnowledgeBase()
        transducer = SchemaMatchingTransducer()
        assert not transducer.can_run(kb)
        kb = self.setup_kb()
        assert transducer.can_run(kb)
        result = transducer.execute(kb)
        assert result.facts_added > 0
        assert kb.count(Predicates.MATCH) == result.facts_added

    def test_instance_matching_needs_data_context(self):
        kb = self.setup_kb()
        transducer = InstanceMatchingTransducer()
        assert not transducer.can_run(kb)
        reference = Table(Schema("address", [Attribute("street"), Attribute("postcode")]),
                          [("Oak Street", "M1 1AA")])
        kb.register_table(reference, Predicates.ROLE_CONTEXT)
        kb.assert_fact(Predicates.DATA_CONTEXT, "address", "reference", "property")
        assert transducer.can_run(kb)
        result = transducer.execute(kb)
        matches = MatchSet.from_kb(kb)
        assert matches.get(("onthemarket", "post_code", "property", "postcode")) is not None
        assert result.facts_added >= 1

    def test_instance_matching_refines_existing_scores(self):
        kb = self.setup_kb()
        kb.assert_fact(Predicates.MATCH, "onthemarket", "post_code", "property", "postcode", 0.2)
        reference = Table(Schema("address", [Attribute("street"), Attribute("postcode")]),
                          [("Oak Street", "M1 1AA")])
        kb.register_table(reference, Predicates.ROLE_CONTEXT)
        kb.assert_fact(Predicates.DATA_CONTEXT, "address", "reference", "property")
        InstanceMatchingTransducer().execute(kb)
        best = MatchSet.from_kb(kb).get(("onthemarket", "post_code", "property", "postcode"))
        assert best.score > 0.2
