"""End-to-end reproduction check: the pay-as-you-go demonstration (paper §3).

This is the integration test behind the Figure-3 benchmark: running the four
stages on a seeded scenario must show the paper's qualitative shape —
providing more information (data context, feedback, user context) never
makes the result worse, and the user context tailors the result to the
user's stated priorities.
"""

from __future__ import annotations

import pytest

from repro import (
    ACCURACY,
    COMPLETENESS,
    CONSISTENCY,
    UserContext,
    Wrangler,
    generate_scenario,
    ScenarioConfig,
)

#: Small tolerance: stages interact (e.g. clearing a wrong value trades
#: completeness for accuracy), so strict monotonicity per criterion is not
#: expected — but the overall score must not regress materially.
SLACK = 0.02


@pytest.fixture(scope="module")
def payg_results():
    scenario = generate_scenario(ScenarioConfig(properties=250, postcodes=50, seed=13))
    wrangler = Wrangler()
    wrangler.add_sources(scenario.sources())
    wrangler.set_target_schema(scenario.target)

    stage1 = wrangler.run("bootstrap", ground_truth=scenario.ground_truth)

    wrangler.add_reference_data(scenario.address_reference)
    wrangler.add_master_data(scenario.master)
    stage2 = wrangler.run("data_context", ground_truth=scenario.ground_truth)

    wrangler.simulate_feedback(scenario.ground_truth, budget=80, seed=1)
    stage3 = wrangler.run("feedback", ground_truth=scenario.ground_truth)

    context = UserContext()
    context.prefer(COMPLETENESS("crimerank"), ACCURACY("type"), "very strongly")
    context.prefer(CONSISTENCY(), COMPLETENESS("bedrooms"), "strongly")
    context.prefer(COMPLETENESS("street"), COMPLETENESS("postcode"), "moderately")
    wrangler.set_user_context(context)
    stage4 = wrangler.run("user_context", ground_truth=scenario.ground_truth)

    return {"wrangler": wrangler, "context": context, "scenario": scenario,
            "stages": [stage1, stage2, stage3, stage4]}


class TestPayAsYouGoShape:
    def test_every_stage_produces_a_result(self, payg_results):
        for stage in payg_results["stages"]:
            assert stage.table is not None
            assert stage.quality is not None
            assert stage.row_count > 0

    def test_overall_quality_never_regresses_through_stage_three(self, payg_results):
        stages = payg_results["stages"]
        overall = [stage.quality.overall() for stage in stages[:3]]
        assert overall[1] >= overall[0] - SLACK
        assert overall[2] >= overall[1] - SLACK

    def test_data_context_improves_coverage_or_accuracy(self, payg_results):
        stage1, stage2 = payg_results["stages"][0], payg_results["stages"][1]
        improved_relevance = stage2.quality.relevance >= stage1.quality.relevance - SLACK
        improved_accuracy = stage2.quality.accuracy >= stage1.quality.accuracy - SLACK
        assert improved_relevance and improved_accuracy
        assert (stage2.quality.relevance > stage1.quality.relevance
                or stage2.quality.accuracy > stage1.quality.accuracy)

    def test_feedback_does_not_hurt_accuracy(self, payg_results):
        stage2, stage3 = payg_results["stages"][1], payg_results["stages"][2]
        assert stage3.quality.accuracy >= stage2.quality.accuracy - SLACK

    def test_user_context_improves_the_user_weighted_score(self, payg_results):
        stage3, stage4 = payg_results["stages"][2], payg_results["stages"][3]
        weights = payg_results["context"].dimension_weights()
        assert stage4.quality.overall(weights) >= stage3.quality.overall(weights) - SLACK

    def test_later_stages_execute_additional_transducers(self, payg_results):
        wrangler = payg_results["wrangler"]
        counts = wrangler.trace.execution_counts()
        for name in ("schema_matching", "instance_matching", "cfd_learning",
                     "mapping_generation", "mapping_quality", "mapping_selection",
                     "result_materialisation", "mapping_evaluation", "criterion_weighting"):
            assert counts.get(name, 0) >= 1, f"{name} never executed"

    def test_reruns_happen_because_of_new_information(self, payg_results):
        wrangler = payg_results["wrangler"]
        reruns = wrangler.trace.reruns()
        assert reruns.get("mapping_generation", 0) >= 1
        assert reruns.get("mapping_selection", 0) >= 2

    def test_phases_are_labelled_in_the_trace(self, payg_results):
        phases = payg_results["wrangler"].trace.phase_counts()
        assert set(phases) == {"bootstrap", "data_context", "feedback", "user_context"}


class TestAgainstManualEtlBaseline:
    def test_vada_needs_fewer_manual_actions_for_comparable_quality(self, payg_results):
        from repro.baselines import default_real_estate_etl
        from repro.quality import evaluate_quality

        scenario = payg_results["scenario"]
        wrangler = payg_results["wrangler"]
        pipeline = default_real_estate_etl()
        sources = {table.name: table for table in scenario.sources()}
        etl_result = pipeline.run(sources, scenario.target)
        etl_quality = evaluate_quality(
            etl_result, reference=scenario.ground_truth, reference_key=["postcode", "price"],
            master=scenario.ground_truth, master_key=["postcode", "price"])
        vada_bootstrap_actions = 4  # three sources + target schema
        assert vada_bootstrap_actions < pipeline.manual_actions()
        # bootstrap quality is in the same ballpark as the hand-written ETL
        bootstrap = payg_results["stages"][0]
        assert bootstrap.quality.overall() >= etl_quality.overall() - 0.15
        # and the fully-paid result is at least as good as the static pipeline
        final = payg_results["stages"][3]
        weights = payg_results["context"].dimension_weights()
        assert final.quality.overall(weights) >= etl_quality.overall(weights) - SLACK
