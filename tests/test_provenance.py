"""Tests for the end-to-end provenance subsystem (`repro.provenance`)."""

from __future__ import annotations

import pickle

import pytest

from repro.core import KnowledgeBase, Predicates
from repro.fusion.duplicates import DuplicatePair, cluster_row_keys
from repro.fusion.fusion import DataFuser, FusionPolicy
from repro.mapping.execution import MappingExecutor
from repro.mapping.model import AttributeAssignment, JoinCondition, SchemaMapping
from repro.provenance import (
    LineageFeedbackPropagator,
    ProvenanceStore,
    SourceRef,
    explain,
    provenance_store,
    render_lineage,
)
from repro.quality.cfd import CFD
from repro.quality.repair import CFDRepairer
from repro.relational import Attribute, Catalog, DataType, Schema, Table
from repro.relational.operators import distinct, union_all
from repro.wrangler.pipeline import Wrangler

TARGET = Schema("item", [
    Attribute("name", DataType.STRING),
    Attribute("price", DataType.FLOAT),
    Attribute("origin", DataType.STRING),
])

RESULT_SCHEMA = Schema("item_result", [
    Attribute("name", DataType.STRING),
    Attribute("price", DataType.FLOAT),
    Attribute("origin", DataType.STRING),
    Attribute("_source", DataType.STRING),
    Attribute("_row_id", DataType.STRING),
])


def catalog_with_sources() -> Catalog:
    catalog = Catalog()
    catalog.register(Table(Schema("shop_a", [
        Attribute("title", DataType.STRING),
        Attribute("cost", DataType.FLOAT),
    ]), [("widget", 10.0), ("gadget", 20.0)]))
    catalog.register(Table(Schema("makers", [
        Attribute("title", DataType.STRING),
        Attribute("country", DataType.STRING),
    ]), [("widget", "DE"), ("sprocket", "FR")]))
    return catalog


def direct_mapping() -> SchemaMapping:
    return SchemaMapping(
        mapping_id="m_direct_shop_a",
        target_relation="item",
        kind="direct",
        sources=("shop_a",),
        assignments=(
            AttributeAssignment("name", "shop_a", "title"),
            AttributeAssignment("price", "shop_a", "cost"),
        ),
    )


def join_mapping() -> SchemaMapping:
    return SchemaMapping(
        mapping_id="m_join_shop_a_makers",
        target_relation="item",
        kind="join",
        sources=("shop_a", "makers"),
        assignments=(
            AttributeAssignment("name", "shop_a", "title"),
            AttributeAssignment("price", "shop_a", "cost"),
            AttributeAssignment("origin", "makers", "country"),
        ),
        join_conditions=(JoinCondition("shop_a", "title", "makers", "title"),),
    )


class TestProvenanceStore:
    def test_ref_interning(self):
        store = ProvenanceStore()
        assert store.ref("s", "s:1") is store.ref("s", "s:1")

    def test_cell_sources_interning(self):
        store = ProvenanceStore()
        first = store.intern_cell_sources({"a": "s", "b": "t"})
        second = store.intern_cell_sources({"b": "t", "a": "s"})
        assert first is second

    def test_disabled_store_records_nothing(self):
        store = ProvenanceStore(enabled=False)
        store.record_tuple("r", "k", operator="mapping",
                           witnesses=(frozenset((SourceRef("s", "s:0"),)),))
        store.record_cell("r", "k", "a", operator="repair")
        store.merge_tuples("r", "k", ["j"])
        store.record_drop("r", "k", reason="x")
        assert store.tracked_count() == 0
        assert store.stats()["tuples"] == 0

    def test_merge_unions_witnesses_and_drops_members(self):
        store = ProvenanceStore()
        left = frozenset((store.ref("s", "s:0"),))
        right = frozenset((store.ref("t", "t:4"),))
        store.record_tuple("r", "a", operator="mapping", witnesses=(left,), mapping_id="m1")
        store.record_tuple("r", "b", operator="mapping", witnesses=(right,), mapping_id="m1")
        store.merge_tuples("r", "a", ["b"])
        lineage = store.tuple_lineage("r", "a")
        assert lineage.witnesses == frozenset((left, right))
        assert lineage.operator == "fusion"
        assert store.tuple_lineage("r", "b") is None
        assert "b" in store.dropped("r")

    def test_why_and_contributing_sources(self):
        store = ProvenanceStore()
        witness = frozenset((store.ref("s", "s:0"), store.ref("t", "t:1")))
        store.record_tuple("r", "k", operator="mapping", witnesses=(witness,),
                           cell_sources={"name": "s", "origin": "t"})
        assert store.contributing_sources("r", "k") == {"s", "t"}
        assert store.contributing_sources("r", "k", "origin") == {"t"}
        assert store.why("r", "k", "name") == frozenset((frozenset((store.ref("s", "s:0"),)),))

    def test_pickle_roundtrip(self):
        store = ProvenanceStore()
        store.record_tuple("r", "k", operator="mapping",
                           witnesses=(frozenset((store.ref("s", "s:0"),)),),
                           mapping_id="m1", cell_sources={"a": "s"})
        restored = pickle.loads(pickle.dumps(store))
        assert restored.tuple_lineage("r", "k").mapping_id == "m1"
        assert restored.contributing_sources("r", "k", "a") == {"s"}


class TestMappingExecutionLineage:
    def test_direct_rows_record_single_witness(self):
        store = ProvenanceStore()
        executor = MappingExecutor(catalog_with_sources(), provenance=store)
        table = executor.execute(direct_mapping(), TARGET, result_name="item_result")
        lineage = store.tuple_lineage("item_result", "shop_a:0")
        assert lineage.mapping_id == "m_direct_shop_a"
        assert lineage.witnesses == frozenset((frozenset((SourceRef("shop_a", "shop_a:0"),)),))
        assert table.row_keys() == ["shop_a:0", "shop_a:1"]

    def test_empty_lineage_constant_for_unassigned_attribute(self):
        # ``origin`` has no assignment in the direct mapping: the cell is a
        # padded NULL constant whose why-provenance is the empty witness set.
        store = ProvenanceStore()
        executor = MappingExecutor(catalog_with_sources(), provenance=store)
        table = executor.execute(direct_mapping(), TARGET, result_name="item_result")
        assert table[0]["origin"] is None
        cell = store.cell_lineage("item_result", "shop_a:0", "origin")
        assert cell.witnesses == frozenset()
        assert store.contributing_sources("item_result", "shop_a:0", "origin") == set()

    def test_join_rows_record_joined_witness_and_cell_sources(self):
        store = ProvenanceStore()
        executor = MappingExecutor(catalog_with_sources(), provenance=store)
        executor.execute(join_mapping(), TARGET, result_name="item_result")
        lineage = store.tuple_lineage("item_result", "shop_a:0")
        assert lineage.all_refs() == {SourceRef("shop_a", "shop_a:0"),
                                      SourceRef("makers", "makers:0")}
        # The joined-in attribute is attributed to the lookup source alone.
        assert store.contributing_sources("item_result", "shop_a:0", "origin") == {"makers"}
        assert store.contributing_sources("item_result", "shop_a:0", "price") == {"shop_a"}

    def test_unjoined_row_has_empty_cell_lineage_for_joined_attribute(self):
        # "gadget" has no maker: left-outer semantics keep the row, the
        # joined attribute stays NULL with no witness.
        store = ProvenanceStore()
        executor = MappingExecutor(catalog_with_sources(), provenance=store)
        table = executor.execute(join_mapping(), TARGET, result_name="item_result")
        assert table[1]["origin"] is None
        assert store.contributing_sources("item_result", "shop_a:1", "origin") == set()

    def test_rematerialisation_replaces_lineage(self):
        store = ProvenanceStore()
        executor = MappingExecutor(catalog_with_sources(), provenance=store)
        executor.execute(join_mapping(), TARGET, result_name="item_result")
        executor.execute(direct_mapping(), TARGET, result_name="item_result")
        lineage = store.tuple_lineage("item_result", "shop_a:0")
        assert lineage.mapping_id == "m_direct_shop_a"
        assert lineage.all_refs() == {SourceRef("shop_a", "shop_a:0")}


class TestFusionLineage:
    def fused_table(self, store: ProvenanceStore):
        table = Table(RESULT_SCHEMA, [
            ("widget", 10.0, "DE", "shop_a", "shop_a:0"),
            ("widget", 12.0, None, "shop_b", "shop_b:0"),
            ("gadget", 20.0, None, "shop_a", "shop_a:1"),
        ])
        for key, source in (("shop_a:0", "shop_a"), ("shop_b:0", "shop_b"),
                            ("shop_a:1", "shop_a")):
            store.record_tuple(
                "item_result", key, operator="mapping",
                witnesses=(frozenset((store.ref(source, key),)),),
                mapping_id="m_union", cell_sources={"name": source, "price": source,
                                                    "origin": source})
        fuser = DataFuser(attribute_policies={"price": FusionPolicy.MIN})
        pairs = [DuplicatePair(0, 1, 0.99)]
        return fuser.fuse(table, pairs, provenance=store)

    def test_fused_duplicates_merge_witnesses(self):
        store = ProvenanceStore()
        result = self.fused_table(store)
        assert result.rows_removed == 1
        lineage = store.tuple_lineage("item_result", "shop_a:0")
        assert lineage.operator == "fusion"
        # One why-provenance witness per merged duplicate.
        assert len(lineage.witnesses) == 2
        assert store.tuple_lineage("item_result", "shop_b:0") is None

    def test_conflicting_cell_blames_the_winning_source(self):
        store = ProvenanceStore()
        result = self.fused_table(store)
        # MIN policy: the 10.0 price from shop_a wins the conflict.
        assert result.table[0]["price"] == 10.0
        cell = store.cell_lineage("item_result", "shop_a:0", "price")
        assert cell.operator == "fusion"
        assert cell.detail == FusionPolicy.MIN
        assert cell.source_relations() == {"shop_a"}
        # The non-conflicting name is still supported by both duplicates.
        assert store.contributing_sources("item_result", "shop_a:0", "name") == {
            "shop_a", "shop_b"}

    def test_cluster_row_keys(self):
        table = Table(RESULT_SCHEMA, [
            ("widget", 10.0, "DE", "shop_a", "shop_a:0"),
            ("widget", 12.0, None, "shop_b", "shop_b:0"),
            ("gadget", 20.0, None, "shop_a", "shop_a:1"),
        ])
        clusters = cluster_row_keys(table, [DuplicatePair(0, 1, 0.99)])
        assert clusters == [["shop_a:0", "shop_b:0"]]


class TestRepairLineage:
    def test_repaired_cell_records_cfd_override(self):
        store = ProvenanceStore()
        table = Table(RESULT_SCHEMA, [
            ("widget", 10.0, "FR", "shop_a", "shop_a:0"),
        ])
        store.record_tuple("item_result", "shop_a:0", operator="mapping",
                           witnesses=(frozenset((store.ref("shop_a", "shop_a:0"),)),),
                           mapping_id="m1",
                           cell_sources={"name": "shop_a", "price": "shop_a",
                                         "origin": "shop_a"})
        cfd = CFD(cfd_id="c1", relation="item_result", lhs=("name",), rhs="origin",
                  lhs_pattern=(("name", "widget"),), rhs_pattern="DE",
                  support=1.0, confidence=1.0)
        repairer = CFDRepairer()
        result = repairer.repair(table, [cfd], provenance=store)
        assert result.repaired_cells == 1
        cell = store.cell_lineage("item_result", "shop_a:0", "origin")
        assert cell.operator == "repair"
        assert cell.detail == "c1:violation"
        # The repaired value no longer descends from the mapped source row.
        assert cell.witnesses == frozenset()
        # Untouched cells keep their mapping lineage.
        assert store.contributing_sources("item_result", "shop_a:0", "name") == {"shop_a"}


class TestOperatorLineage:
    def test_distinct_merges_duplicate_lineage_by_row_key(self):
        store = ProvenanceStore()
        table = Table(RESULT_SCHEMA, [
            ("widget", 10.0, "DE", "shop_a", "shop_a:0"),
            ("widget", 10.0, "DE", "shop_b", "shop_b:0"),
            ("gadget", 20.0, None, "shop_a", "shop_a:1"),
        ])
        for key in ("shop_a:0", "shop_b:0", "shop_a:1"):
            store.record_tuple("item_result", key, operator="mapping",
                               witnesses=(frozenset((store.ref("x", key),)),))
        deduplicated = distinct(table, ["name", "price"], provenance=store)
        assert len(deduplicated) == 2
        lineage = store.tuple_lineage("item_result", "shop_a:0")
        assert lineage.operator == "distinct"
        assert len(lineage.witnesses) == 2
        assert store.tuple_lineage("item_result", "shop_b:0") is None
        # Untouched rows keep their lineage, keyed stably.
        assert store.tuple_lineage("item_result", "shop_a:1") is not None

    def test_positional_tables_are_not_tracked(self):
        # Without the stable row-identity column, positional keys would be
        # misattributed as soon as rows shift — so nothing is recorded.
        store = ProvenanceStore()
        schema = Schema("part", [Attribute("name", DataType.STRING)])
        left = Table(schema, [("widget",), ("widget",)])
        right = Table(schema.rename("part_b"), [("gadget",)])
        combined = union_all(left, right, relation_name="parts", provenance=store)
        deduplicated = distinct(combined, provenance=store)
        assert store.tracked_count() == 0
        assert len(deduplicated) == 2

    def test_union_all_records_lineage_for_stable_keyed_inputs(self):
        store = ProvenanceStore()
        left = Table(RESULT_SCHEMA.rename("left_result"), [
            ("widget", 10.0, "DE", "shop_a", "shop_a:0"),
        ])
        right = Table(RESULT_SCHEMA.rename("right_result"), [
            ("gadget", 20.0, None, "shop_b", "shop_b:0"),
        ])
        combined = union_all(left, right, relation_name="parts", provenance=store)
        assert len(combined) == 2
        assert store.tracked_count("parts") == 2
        assert store.contributing_sources("parts", "shop_a:0") == {"left_result"}
        assert store.contributing_sources("parts", "shop_b:0") == {"right_result"}


class TestExplain:
    def build_result(self):
        store = ProvenanceStore()
        catalog = catalog_with_sources()
        executor = MappingExecutor(catalog, provenance=store)
        table = executor.execute(join_mapping(), TARGET, result_name="item_result")
        return store, catalog, table

    def test_explain_cell_returns_source_rows_and_mapping(self):
        store, catalog, table = self.build_result()
        tree = explain(table, 0, "origin", store=store, catalog=catalog)
        assert tree.kind == "cell"
        assert tree.value == "DE"
        assert tree.mapping_id == "m_join_shop_a_makers"
        leaves = [node for node in tree.walk() if node.kind == "source"]
        assert [leaf.relation for leaf in leaves] == ["makers"]
        assert leaves[0].source_row == {"title": "widget", "country": "DE"}

    def test_explain_tuple_and_row_key_addressing(self):
        store, catalog, table = self.build_result()
        tree = explain(table, "shop_a:0", store=store, catalog=catalog)
        assert tree.kind == "tuple"
        assert tree.source_relations() == {"shop_a", "makers"}

    def test_render_lineage_mentions_sources_and_mapping(self):
        store, catalog, table = self.build_result()
        text = render_lineage(explain(table, 0, "origin", store=store, catalog=catalog))
        assert "m_join_shop_a_makers" in text
        assert "makers:0" in text
        assert "country='DE'" in text

    def test_explain_unknown_row_and_missing_lineage(self):
        store, catalog, table = self.build_result()
        with pytest.raises(KeyError):
            explain(table, 99, "origin", store=store)
        with pytest.raises(LookupError):
            explain(table, 0, store=ProvenanceStore())


class TestLineageFeedbackPropagation:
    def seeded_kb(self):
        kb = KnowledgeBase()
        store = provenance_store(kb)
        catalog = catalog_with_sources()
        executor = MappingExecutor(catalog, provenance=store)
        table = executor.execute(join_mapping(), TARGET, result_name="item_result")
        kb.catalog.register(table)
        kb.assert_fact(Predicates.RESULT, "item_result", "m_join_shop_a_makers", len(table))
        return kb, store

    def test_feedback_attributed_to_joined_source(self):
        kb, store = self.seeded_kb()
        kb.assert_fact(Predicates.FEEDBACK, "f1", "item_result", "shop_a:0",
                       "origin", Predicates.INCORRECT)
        propagation = LineageFeedbackPropagator().collect(kb, store)
        assert propagation.unattributed == []
        assert ("makers", "origin") in propagation.evidence
        assert ("shop_a", "origin") not in propagation.evidence
        assert propagation.evidence[("makers", "origin")].incorrect == 1

    def test_mapping_penalties_implicate_only_containing_mappings(self):
        kb, store = self.seeded_kb()
        kb.assert_fact(Predicates.FEEDBACK, "f1", "item_result", "shop_a:0",
                       "origin", Predicates.INCORRECT)
        candidates = {"m_join_shop_a_makers": join_mapping(),
                      "m_direct_shop_a": direct_mapping()}
        propagation = LineageFeedbackPropagator().collect(kb, store, candidates)
        assert propagation.implicated_mappings() == ["m_join_shop_a_makers"]

    def test_repaired_cell_blames_the_cfd_not_the_mapping(self):
        kb, store = self.seeded_kb()
        store.record_cell("item_result", "shop_a:0", "origin",
                          operator="repair", detail="c1:violation")
        kb.assert_fact(Predicates.FEEDBACK, "f1", "item_result", "shop_a:0",
                       "origin", Predicates.INCORRECT)
        propagation = LineageFeedbackPropagator().collect(kb, store)
        assert ("cfd:c1:violation", "origin") in propagation.evidence
        assert ("makers", "origin") not in propagation.evidence


class TestWranglerIntegration:
    @pytest.fixture(scope="class")
    def session(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        result = wrangler.run("bootstrap")
        return wrangler, result

    def test_explain_on_real_estate_cell(self, session):
        wrangler, result = session
        assert result.selected_mapping is not None
        # Find a row whose crimerank is populated: its lineage must name the
        # deprivation source row that supplied it.
        table = result.table
        index = next(i for i, row in enumerate(table.rows())
                     if row["crimerank"] is not None)
        tree = wrangler.explain(index, "crimerank")
        assert tree.mapping_id == result.selected_mapping.mapping_id
        leaves = [node for node in tree.walk() if node.kind == "source"]
        assert leaves, "expected contributing source rows"
        assert {leaf.relation for leaf in leaves} == {"deprivation"}
        assert leaves[0].source_row is not None
        rendered = wrangler.explain_text(index, "crimerank")
        assert "deprivation" in rendered

    def test_lineage_feedback_changes_only_implicated_mapping_scores(self, session,
                                                                     tiny_scenario):
        wrangler, result = session
        table = result.table
        index = next(i for i, row in enumerate(table.rows())
                     if row["crimerank"] is not None)
        row_key = table.row_key(index)
        before = {(mapping_id, criterion): value
                  for mapping_id, criterion, value
                  in wrangler.kb.facts(Predicates.MAPPING_SCORE)}
        implicated_sources = wrangler.explain(index, "crimerank").source_relations()
        assert implicated_sources == {"deprivation"}
        implicated = {mapping.mapping_id
                      for mapping in wrangler.candidate_mappings()
                      if any(assignment.source_relation in implicated_sources
                             and assignment.target_attribute == "crimerank"
                             for leaf in mapping.leaf_mappings()
                             for assignment in leaf.assignments)}
        wrangler.feedback_on_attribute(row_key, "crimerank", correct=False)
        wrangler.run("feedback")
        after = {(mapping_id, criterion): value
                 for mapping_id, criterion, value
                 in wrangler.kb.facts(Predicates.MAPPING_SCORE)}
        changed_mappings = {mapping_id
                            for (mapping_id, criterion) in set(before) | set(after)
                            if before.get((mapping_id, criterion))
                            != after.get((mapping_id, criterion))}
        assert changed_mappings, "feedback should revise some mapping scores"
        assert changed_mappings <= implicated, (
            f"only implicated mappings may change, got {changed_mappings - implicated}")

    def test_provenance_off_switch(self, tiny_scenario):
        from repro.wrangler.config import WranglerConfig

        wrangler = Wrangler(config=WranglerConfig(track_provenance=False))
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        result = wrangler.run("bootstrap")
        assert result.table is not None
        assert wrangler.provenance.tracked_count() == 0
        with pytest.raises(LookupError):
            wrangler.explain(0, "crimerank")


class TestStoreSizeStability:
    def test_record_tuple_revives_dropped_keys(self):
        store = ProvenanceStore()
        store.record_tuple("r", "k", operator="mapping",
                           witnesses=(frozenset((store.ref("s", "s:0"),)),))
        store.record_drop("r", "k", reason="merged away")
        assert "k" in store.dropped("r")
        store.record_tuple("r", "k", operator="mapping",
                           witnesses=(frozenset((store.ref("s", "s:0"),)),))
        # Patched rows replace their annotations: no lingering drop marker.
        assert "k" not in store.dropped("r")
        assert store.tuple_lineage("r", "k") is not None

    def test_store_size_stable_across_repeated_apply_feedback(self):
        """Repeated feedback rounds must not grow the lineage store: patched
        rows replace (not append to) their witness sets and drop markers."""
        from repro.feedback.annotations import simulate_feedback
        from repro.incremental.validate import _prepare
        from repro.scenarios.synth import SynthConfig, generate_synthetic
        from repro.wrangler.config import WranglerConfig

        scenario = generate_synthetic(
            SynthConfig(family="product_catalog", entities=120, seed=2))
        wrangler = _prepare(scenario, WranglerConfig())
        relation = wrangler.result_name()
        store = wrangler.provenance

        sizes = []
        for round_number in range(1, 5):
            annotations = simulate_feedback(
                wrangler.result(), scenario.ground_truth, scenario.evaluation_key,
                budget=6, seed=round_number, strategy="targeted",
                id_prefix=f"g{round_number}")
            wrangler.apply_feedback(annotations, incremental=True)
            stats = store.stats(relation)
            sizes.append((stats["tuples"], stats["cell_overrides"], stats["dropped"]))
        # The first round may add feedback overrides for newly annotated
        # cells; after that the store must be size-stable — patched rows
        # replace their witness sets and drop markers instead of appending.
        assert sizes[1] == sizes[2] == sizes[3], sizes
        tuples0, overrides0, dropped0 = sizes[0]
        tuples_n, overrides_n, dropped_n = sizes[-1]
        assert tuples_n <= tuples0
        assert overrides_n <= overrides0 + tuples0  # new feedback marks only
        assert dropped_n <= dropped0 + 1
        # And the tracked population still matches the table + merged rows.
        assert tuples_n <= len(wrangler.incremental.get(relation).order)


class TestBatchProvenance:
    def test_annotated_results_pickle_through_process_pool(self):
        from repro.scenarios.synth import SynthConfig
        from repro.wrangler.batch import BatchConfig, run_batch

        configs = [SynthConfig(family="product_catalog", entities=60, seed=3)]
        report = run_batch(configs, BatchConfig(executor="process", workers=1))
        [result] = report.results
        assert result.ok, result.error
        assert result.provenance is not None
        assert result.provenance["tuples"] == result.rows
        assert result.provenance["sources"]
        # The result (with its lineage summary) survives another pickle hop.
        restored = pickle.loads(pickle.dumps(result))
        assert restored.provenance == result.provenance
        assert restored.as_dict()["provenance"]["tuples"] == result.rows

    def test_batch_provenance_off_switch(self):
        from repro.scenarios.synth import SynthConfig
        from repro.wrangler.batch import BatchConfig, run_scenario

        config = SynthConfig(family="product_catalog", entities=60, seed=3)
        result = run_scenario(config, BatchConfig(executor="serial",
                                                  track_provenance=False))
        assert result.ok, result.error
        assert result.provenance is None
