"""Unit tests for mapping model, generation, execution, selection and transducers."""

from __future__ import annotations

import pytest

from repro.core import KnowledgeBase, Predicates
from repro.mapping import (
    AttributeAssignment,
    JoinCondition,
    MappingExecutor,
    MappingGenerationTransducer,
    MappingGenerator,
    MappingGeneratorConfig,
    MappingQualityTransducer,
    MappingScore,
    MappingScorer,
    MappingSelectionTransducer,
    MappingSelector,
    MAPPINGS_ARTIFACT_KEY,
    ResultMaterialisationTransducer,
    SchemaMapping,
    SourceSelectionTransducer,
    result_relation_name,
)
from repro.matching import Correspondence, MatchSet
from repro.relational import Attribute, Catalog, DataType, Schema, Table

TARGET = Schema("property", [
    Attribute("street", DataType.STRING),
    Attribute("postcode", DataType.STRING),
    Attribute("price", DataType.FLOAT),
    Attribute("crimerank", DataType.INTEGER),
])

RIGHTMOVE = Table(Schema("rightmove", [
    Attribute("street", DataType.STRING),
    Attribute("postcode", DataType.STRING),
    Attribute("price", DataType.FLOAT),
]), [
    ("Oak Street", "M1 1AA", 100000.0),
    ("Elm Road", "M5 3CC", 200000.0),
    ("Mill Lane", None, 150000.0),
])

ONTHEMARKET = Table(Schema("onthemarket", [
    Attribute("address_street", DataType.STRING),
    Attribute("post_code", DataType.STRING),
    Attribute("asking_price", DataType.FLOAT),
]), [
    ("Oak Street", "M1 1AA", 100000.0),
    ("Birch Close", "M4 4DD", 300000.0),
])

DEPRIVATION = Table(Schema("deprivation", [
    Attribute("postcode", DataType.STRING),
    Attribute("crime", DataType.INTEGER),
]), [
    ("M1 1AA", 10),
    ("M5 3CC", 25),
    ("M4 4DD", 5),
])


def full_matches() -> MatchSet:
    return MatchSet([
        Correspondence("rightmove", "street", "property", "street", 1.0),
        Correspondence("rightmove", "postcode", "property", "postcode", 1.0),
        Correspondence("rightmove", "price", "property", "price", 1.0),
        Correspondence("onthemarket", "address_street", "property", "street", 0.8),
        Correspondence("onthemarket", "post_code", "property", "postcode", 0.85),
        Correspondence("onthemarket", "asking_price", "property", "price", 0.9),
        Correspondence("deprivation", "postcode", "property", "postcode", 1.0),
        Correspondence("deprivation", "crime", "property", "crimerank", 0.9),
    ])


def make_catalog() -> Catalog:
    catalog = Catalog()
    for table in (RIGHTMOVE, ONTHEMARKET, DEPRIVATION):
        catalog.register(table)
    return catalog


def direct_rightmove() -> SchemaMapping:
    return SchemaMapping(
        mapping_id="m_direct_rightmove",
        target_relation="property",
        kind="direct",
        sources=("rightmove",),
        assignments=(
            AttributeAssignment("street", "rightmove", "street", 1.0),
            AttributeAssignment("postcode", "rightmove", "postcode", 1.0),
            AttributeAssignment("price", "rightmove", "price", 1.0),
        ),
    )


def join_rightmove_deprivation() -> SchemaMapping:
    return SchemaMapping(
        mapping_id="m_join",
        target_relation="property",
        kind="join",
        sources=("rightmove", "deprivation"),
        assignments=(
            AttributeAssignment("street", "rightmove", "street", 1.0),
            AttributeAssignment("postcode", "rightmove", "postcode", 1.0),
            AttributeAssignment("price", "rightmove", "price", 1.0),
            AttributeAssignment("crimerank", "deprivation", "crime", 0.9),
        ),
        join_conditions=(JoinCondition("rightmove", "postcode", "deprivation", "postcode"),),
    )


class TestMappingModel:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            SchemaMapping("m", "t", "weird")
        with pytest.raises(ValueError):
            SchemaMapping("m", "t", "union", children=(direct_rightmove(),))
        with pytest.raises(ValueError):
            SchemaMapping("m", "t", "join", sources=("a",),
                          assignments=(AttributeAssignment("x", "a", "x"),))
        with pytest.raises(ValueError):
            SchemaMapping("m", "t", "direct", sources=("a",))

    def test_coverage_and_sources(self):
        union = SchemaMapping("m_union", "property", "union",
                              children=(direct_rightmove(), join_rightmove_deprivation()))
        assert union.covered_attributes() == {"street", "postcode", "price", "crimerank"}
        assert union.all_sources() == {"rightmove", "deprivation"}
        assert len(union.leaf_mappings()) == 2
        assert len(union.assignments_for_attribute("street")) == 2

    def test_mean_match_score(self):
        assert join_rightmove_deprivation().mean_match_score() == pytest.approx(0.975)

    def test_to_vadalog_renders_rules(self):
        text = join_rightmove_deprivation().to_vadalog(TARGET.attribute_names)
        assert text.startswith("property(")
        assert "rightmove(" in text and "deprivation(" in text
        union = SchemaMapping("m_union", "property", "union",
                              children=(direct_rightmove(), join_rightmove_deprivation()))
        assert text in union.to_vadalog(TARGET.attribute_names)

    def test_describe(self):
        assert "direct(rightmove)" in direct_rightmove().describe()
        assert "union" in SchemaMapping("u", "property", "union",
                                        children=(direct_rightmove(),
                                                  join_rightmove_deprivation())).describe()


class TestMappingExecution:
    def test_direct_mapping(self):
        executor = MappingExecutor(make_catalog())
        table = executor.execute(direct_rightmove(), TARGET)
        assert len(table) == 3
        assert table[0]["street"] == "Oak Street"
        assert table[0]["crimerank"] is None
        assert table[0]["_source"] == "rightmove"
        assert table[0]["_row_id"] == "rightmove:0"

    def test_join_mapping_left_outer_semantics(self):
        executor = MappingExecutor(make_catalog())
        table = executor.execute(join_rightmove_deprivation(), TARGET)
        assert len(table) == 3
        by_street = {row["street"]: row for row in table}
        assert by_street["Oak Street"]["crimerank"] == 10
        assert by_street["Mill Lane"]["crimerank"] is None  # null join key

    def test_union_mapping_concatenates_children(self):
        other = SchemaMapping(
            mapping_id="m_direct_otm", target_relation="property", kind="direct",
            sources=("onthemarket",),
            assignments=(
                AttributeAssignment("street", "onthemarket", "address_street", 0.8),
                AttributeAssignment("postcode", "onthemarket", "post_code", 0.85),
                AttributeAssignment("price", "onthemarket", "asking_price", 0.9),
            ),
        )
        union = SchemaMapping("m_union", "property", "union",
                              children=(direct_rightmove(), other))
        table = MappingExecutor(make_catalog()).execute(union, TARGET)
        assert len(table) == 5
        assert {row["_source"] for row in table} == {"rightmove", "onthemarket"}

    def test_type_coercion_failures_become_null(self):
        bad = Table(Schema("bad", [Attribute("price", DataType.STRING)]),
                    [("not a number",)], coerce=False)
        catalog = Catalog()
        catalog.register(bad)
        mapping = SchemaMapping("m", "property", "direct", sources=("bad",),
                                assignments=(AttributeAssignment("price", "bad", "price"),))
        table = MappingExecutor(catalog).execute(mapping, TARGET)
        assert table[0]["price"] is None


class TestMappingGeneration:
    def test_generates_direct_join_and_union_candidates(self):
        generator = MappingGenerator()
        candidates = generator.generate(full_matches(), TARGET, make_catalog())
        ids = {mapping.mapping_id for mapping in candidates}
        assert "m_direct_rightmove" in ids
        assert "m_direct_onthemarket" in ids
        assert any(mapping.kind == "join" and "deprivation" in mapping.sources
                   for mapping in candidates)
        assert any(mapping.kind == "union" for mapping in candidates)

    def test_join_key_discovered_from_value_overlap(self):
        candidates = MappingGenerator().generate(full_matches(), TARGET, make_catalog())
        joins = [m for m in candidates if m.kind == "join"
                 and set(m.sources) == {"rightmove", "deprivation"}]
        assert joins
        condition = joins[0].join_conditions[0]
        assert {condition.left_attribute, condition.right_attribute} == {"postcode"}

    def test_match_threshold_prunes_assignments(self):
        weak = MatchSet([Correspondence("rightmove", "street", "property", "street", 0.3)])
        candidates = MappingGenerator(MappingGeneratorConfig(match_threshold=0.5)).generate(
            weak, TARGET, make_catalog())
        assert candidates == []

    def test_candidate_cap(self):
        config = MappingGeneratorConfig(max_candidates=2)
        candidates = MappingGenerator(config).generate(full_matches(), TARGET, make_catalog())
        assert len(candidates) <= 2


class TestMappingSelection:
    def test_scorer_produces_criteria(self):
        scorer = MappingScorer(make_catalog(), TARGET)
        score = scorer.score(join_rightmove_deprivation())
        assert set(score.criteria) == {"completeness", "accuracy", "consistency", "relevance"}
        assert score.row_count == 3
        assert 0 < score.criteria["completeness"] <= 1

    def test_scorer_uses_reference_for_accuracy(self):
        reference = Table(TARGET.rename("truth"), [
            ("Oak Street", "M1 1AA", 100000.0, 10),
            ("Elm Road", "M5 3CC", 999999.0, 25),
        ])
        scorer = MappingScorer(make_catalog(), TARGET, reference=reference,
                               reference_key=["postcode"])
        score = scorer.score(direct_rightmove())
        assert score.criteria["accuracy"] < 1.0

    def test_feedback_penalty_weighted_by_coverage(self):
        penalties = {("rightmove", "street"): {"error_rate": 1.0, "annotations": 3.0}}
        scorer = MappingScorer(make_catalog(), TARGET, feedback_penalties=penalties)
        unpenalised = MappingScorer(make_catalog(), TARGET).score(direct_rightmove())
        penalised = scorer.score(direct_rightmove())
        assert penalised.criteria["accuracy"] < unpenalised.criteria["accuracy"]

    def test_selector_ranks_by_weighted_score(self):
        scores = {
            "complete": MappingScore("complete", {"completeness": 0.9, "accuracy": 0.5}),
            "accurate": MappingScore("accurate", {"completeness": 0.5, "accuracy": 0.9}),
        }
        uniform = MappingSelector().select(scores)
        assert uniform.best_score == pytest.approx(0.7)
        accuracy_first = MappingSelector().select(scores, {"accuracy": 1.0})
        assert accuracy_first.best_mapping_id == "accurate"
        completeness_first = MappingSelector().select(scores, {"completeness": 1.0})
        assert completeness_first.best_mapping_id == "complete"

    def test_selector_tie_break_by_confidence(self):
        scores = {
            "a": MappingScore("a", {"completeness": 0.8}, match_confidence=0.5),
            "b": MappingScore("b", {"completeness": 0.8}, match_confidence=0.9),
        }
        assert MappingSelector().select(scores).best_mapping_id == "b"

    def test_selector_rejects_empty(self):
        with pytest.raises(ValueError):
            MappingSelector().select({})


class TestMappingTransducers:
    def setup_kb(self) -> KnowledgeBase:
        kb = KnowledgeBase()
        for table in (RIGHTMOVE, ONTHEMARKET, DEPRIVATION):
            kb.register_table(table, Predicates.ROLE_SOURCE)
        kb.describe_schema(TARGET, Predicates.ROLE_TARGET)
        full_matches().assert_into(kb)
        return kb

    def test_pipeline_generation_to_materialisation(self):
        kb = self.setup_kb()
        generation = MappingGenerationTransducer()
        quality = MappingQualityTransducer()
        selection = MappingSelectionTransducer()
        materialisation = ResultMaterialisationTransducer()

        assert generation.can_run(kb)
        generation.execute(kb)
        assert kb.count(Predicates.MAPPING) > 0
        assert kb.has_artifact(MAPPINGS_ARTIFACT_KEY)

        assert quality.can_run(kb)
        quality.execute(kb)
        assert kb.count(Predicates.MAPPING_SCORE) > 0

        assert selection.can_run(kb)
        selection.execute(kb)
        selected = [row for row in kb.facts(Predicates.MAPPING_SELECTED) if row[1] == 1]
        assert len(selected) == 1

        assert materialisation.can_run(kb)
        outcome = materialisation.execute(kb)
        result_name = result_relation_name("property")
        assert result_name in outcome.tables_written
        assert kb.has_table(result_name)
        assert kb.has("result", result_name, selected[0][0], len(kb.get_table(result_name)))

    def test_source_selection_ranks_sources(self):
        kb = self.setup_kb()
        kb.assert_fact(Predicates.METRIC, "source", "rightmove", "completeness", 0.9)
        kb.assert_fact(Predicates.METRIC, "source", "onthemarket", "completeness", 0.5)
        transducer = SourceSelectionTransducer()
        assert transducer.can_run(kb)
        transducer.execute(kb)
        ranking = dict(kb.facts(Predicates.SOURCE_SELECTED))
        assert ranking["rightmove"] == 1
        assert ranking["onthemarket"] == 2

    def test_user_context_weights_change_selection(self):
        kb = self.setup_kb()
        MappingGenerationTransducer().execute(kb)
        MappingQualityTransducer().execute(kb)
        MappingSelectionTransducer().execute(kb)
        baseline = [row[0] for row in kb.facts(Predicates.MAPPING_SELECTED) if row[1] == 1][0]
        # A user who only cares about completeness of crimerank prefers a
        # mapping that actually populates crimerank.
        kb.assert_fact(Predicates.CRITERION_WEIGHT, "completeness.crimerank", 1.0)
        selection = MappingSelectionTransducer()
        selection.execute(kb)
        weighted = [row[0] for row in kb.facts(Predicates.MAPPING_SELECTED) if row[1] == 1][0]
        selected_mapping = kb.get_artifact(MAPPINGS_ARTIFACT_KEY)[weighted]
        assert "crimerank" in selected_mapping.covered_attributes()
        del baseline

    def test_selection_without_scores_is_a_noop(self):
        kb = KnowledgeBase()
        result = MappingSelectionTransducer().run(kb)
        assert result.facts_added == 0
