"""Unit tests for blocking, duplicate detection, fusion and their transducers."""

from __future__ import annotations

import pytest

from repro.core import KnowledgeBase, Predicates
from repro.fusion import (
    DataFuser,
    DataFusionTransducer,
    DuplicateDetectionTransducer,
    DuplicateDetector,
    DuplicateDetectorConfig,
    DuplicatePair,
    DUPLICATES_ARTIFACT_KEY,
    FusionPolicy,
    block_by_attributes,
    block_by_key_function,
    candidate_pairs,
    cluster_pairs,
)
from repro.relational import Attribute, DataType, Schema, Table

LISTING_SCHEMA = Schema("property_result", [
    Attribute("street", DataType.STRING),
    Attribute("postcode", DataType.STRING),
    Attribute("price", DataType.FLOAT),
    Attribute("bedrooms", DataType.INTEGER),
    Attribute("description", DataType.STRING),
])


def listing_table() -> Table:
    return Table(LISTING_SCHEMA, [
        # rows 0 and 1 are the same property listed on two portals
        ("Oak Street", "M1 1AA", 250000.0, 3, "A 3 bedroom detached property"),
        ("Oak Street", "m1 1aa", 250000.0, 3, "A 3 bedroom detached property"),
        # row 2 is a different property in the same postcode
        ("Oak Street", "M1 1AA", 410000.0, 4, "A 4 bedroom detached property with garden"),
        # row 3 is unrelated
        ("Elm Road", "M5 3CC", 180000.0, 2, "A 2 bedroom terraced property"),
    ])


class TestBlocking:
    def test_block_by_attributes_normalises_keys(self):
        blocks = block_by_attributes(listing_table(), ["postcode"])
        assert len(blocks[("m11aa",)]) == 3

    def test_null_keys_become_singletons(self):
        table = listing_table().extend([(None, None, 1.0, 1, "x")])
        blocks = block_by_attributes(table, ["postcode"])
        singleton_blocks = [b for key, b in blocks.items() if key[0] == "__null__"]
        assert singleton_blocks and all(len(b) == 1 for b in singleton_blocks)

    def test_block_by_key_function(self):
        blocks = block_by_key_function(listing_table(), lambda row: row["bedrooms"])
        assert set(blocks) == {3, 4, 2}

    def test_candidate_pairs_skips_large_blocks(self):
        blocks = {"big": list(range(500)), "small": [1, 2]}
        pairs = candidate_pairs(blocks, max_block_size=100)
        assert pairs == [(1, 2)]


class TestDuplicateDetector:
    def test_finds_true_duplicate_only(self):
        pairs = DuplicateDetector().detect(listing_table())
        assert [pair.as_tuple() for pair in pairs] == [(0, 1)]

    def test_threshold_controls_aggressiveness(self):
        lax = DuplicateDetector(DuplicateDetectorConfig(threshold=0.5))
        assert len(lax.detect(listing_table())) >= 1

    def test_pair_similarity_null_neutral(self):
        table = Table(LISTING_SCHEMA, [
            ("Oak Street", "M1 1AA", None, 3, "x"),
            ("Oak Street", "M1 1AA", 250000.0, 3, "x"),
        ])
        rows = table.rows()
        score = DuplicateDetector().pair_similarity(rows[0], rows[1])
        assert 0.5 < score < 1.0

    def test_cluster_pairs_union_find(self):
        pairs = [DuplicatePair(0, 1, 0.95), DuplicatePair(1, 2, 0.95), DuplicatePair(4, 5, 0.99)]
        clusters = cluster_pairs(pairs, size=6)
        assert sorted(map(tuple, clusters)) == [(0, 1, 2), (4, 5)]


class TestDataFuser:
    def test_prefer_non_null_keeps_first_value(self):
        table = listing_table()
        pairs = [DuplicatePair(0, 1, 0.95)]
        outcome = DataFuser().fuse(table, pairs)
        assert len(outcome.table) == 3
        assert outcome.rows_removed == 1
        assert outcome.clusters_fused == 1
        assert outcome.table[0]["postcode"] == "M1 1AA"

    def test_majority_and_numeric_policies(self):
        schema = Schema("t", [Attribute("price", DataType.FLOAT),
                              Attribute("type", DataType.STRING)])
        table = Table(schema, [(100.0, "flat"), (120.0, "flat"), (110.0, "FLAT")])
        pairs = [DuplicatePair(0, 1, 0.9), DuplicatePair(1, 2, 0.9)]
        fuser = DataFuser(attribute_policies={"price": FusionPolicy.MIN,
                                              "type": FusionPolicy.MAJORITY})
        outcome = fuser.fuse(table, pairs)
        assert len(outcome.table) == 1
        assert outcome.table[0]["price"] == 100.0
        assert outcome.table[0]["type"].lower() == "flat"
        assert outcome.conflicts_resolved >= 1

    def test_longest_policy(self):
        schema = Schema("t", [Attribute("description", DataType.STRING)])
        table = Table(schema, [("short",), ("a much longer description",)])
        fuser = DataFuser(default_policy=FusionPolicy.LONGEST)
        outcome = fuser.fuse(table, [DuplicatePair(0, 1, 0.9)])
        assert outcome.table[0]["description"] == "a much longer description"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            DataFuser(default_policy="coin_flip")
        with pytest.raises(ValueError):
            DataFuser(attribute_policies={"x": "coin_flip"})

    def test_no_duplicates_is_identity(self):
        table = listing_table()
        outcome = DataFuser().fuse(table, [])
        assert outcome.table is table
        assert outcome.rows_removed == 0


class TestFusionTransducers:
    def setup_kb(self) -> KnowledgeBase:
        kb = KnowledgeBase()
        kb.catalog.register(listing_table())
        kb.assert_fact(Predicates.RESULT, "property_result", "m1", 4)
        return kb

    def test_detection_then_fusion(self):
        kb = self.setup_kb()
        detection = DuplicateDetectionTransducer()
        assert detection.can_run(kb)
        detection.execute(kb)
        assert kb.count(Predicates.DUPLICATE) == 1
        assert kb.get_artifact(DUPLICATES_ARTIFACT_KEY)["property_result"]

        fusion = DataFusionTransducer()
        assert fusion.can_run(kb)
        outcome = fusion.execute(kb)
        assert "property_result" in outcome.tables_written
        assert len(kb.get_table("property_result")) == 3
        # the result fact is refreshed with the new row count
        assert kb.has(Predicates.RESULT, "property_result", "m1", 3)

    def test_fusion_not_runnable_without_duplicates(self):
        kb = self.setup_kb()
        assert not DataFusionTransducer().can_run(kb)
