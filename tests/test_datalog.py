"""Unit tests for the Vadalog-lite reasoner (terms, parser, stratification, engine)."""

from __future__ import annotations

import pytest

from repro.datalog import (
    Atom,
    Constant,
    Database,
    Engine,
    Literal,
    ParseError,
    Program,
    Rule,
    SafetyError,
    StratificationError,
    UnknownPredicateError,
    Variable,
    evaluate,
    fact,
    parse_atom,
    parse_program,
    parse_rule,
    query,
    stratify,
    stratum_order,
)


class TestTerms:
    def test_fact_constructor(self):
        rule = fact("edge", "a", "b")
        assert rule.is_fact
        assert rule.head.as_tuple() == ("a", "b")

    def test_non_ground_fact_rejected(self):
        with pytest.raises(SafetyError):
            Rule(Atom("p", (Variable("X"),)))

    def test_unbound_head_variable_rejected(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X, Y) :- q(X).")

    def test_unbound_negated_variable_rejected(self):
        with pytest.raises(SafetyError):
            parse_rule("p(X) :- q(X), not r(Y).")

    def test_assignment_binds_head_variable(self):
        rule = parse_rule('p(X, Y) :- q(X), Y = 1.')
        assert rule.head.variables() == {"X", "Y"}

    def test_literal_must_be_atom_or_comparison(self):
        with pytest.raises(SafetyError):
            Literal()

    def test_atom_str_and_substitute(self):
        atom = Atom("p", (Variable("X"), Constant(3)))
        assert str(atom) == "p(X, 3)"
        ground = atom.substitute({"X": "a"})
        assert ground.is_ground
        assert ground.as_tuple() == ("a", 3)


class TestParser:
    def test_parse_program_counts(self):
        program = parse_program("""
            % facts
            parent(alice, bob).
            parent(bob, carol).
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
        """)
        assert len(program) == 4

    def test_string_and_number_terms(self):
        rule = parse_rule('listing("Oak Street", 325000.5, 3).')
        assert rule.head.as_tuple() == ("Oak Street", 325000.5, 3)

    def test_negative_numbers_and_booleans(self):
        rule = parse_rule("p(-3, true, false).")
        assert rule.head.as_tuple() == (-3, True, False)

    def test_comparison_literal(self):
        rule = parse_rule("expensive(P) :- property(P, Price), Price > 500000.")
        assert len(rule.comparisons()) == 1

    def test_negation_keyword(self):
        rule = parse_rule("leaf(X) :- node(X), not haschild(X).")
        assert len(rule.negated_body_atoms()) == 1

    def test_zero_arity_atom(self):
        rule = parse_rule("ready :- schema(S, target).")
        assert rule.head.arity == 0

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("Parent(a, b).")

    def test_missing_dot_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(a)")

    def test_unexpected_character_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(a) ;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(a). q(b).")

    def test_parse_atom(self):
        atom = parse_atom("match(S, A, property, B, Score)")
        assert atom.predicate == "match"
        assert atom.arity == 5

    def test_comments_are_ignored(self):
        program = parse_program("% nothing here\np(a). % trailing\n")
        assert len(program) == 1


class TestStratification:
    def test_positive_program_single_stratum(self):
        program = Program.parse("""
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
        """)
        strata = stratify(program)
        assert strata["ancestor"] == 0

    def test_negation_raises_stratum(self):
        program = Program.parse("""
            isparent(X) :- parent(X, Y).
            childless(X) :- person(X), not isparent(X).
        """)
        strata = stratify(program)
        assert strata["childless"] > strata["isparent"]
        order = stratum_order(program)
        assert order.index(["isparent"]) < order.index(["childless"])

    def test_negative_cycle_rejected(self):
        program = Program.parse("""
            p(X) :- q(X), not r(X).
            r(X) :- q(X), not p(X).
        """)
        with pytest.raises(StratificationError):
            stratify(program)


class TestEngine:
    ANCESTRY = """
        parent(alice, bob).
        parent(bob, carol).
        parent(carol, dan).
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
    """

    def test_transitive_closure(self):
        results = query(self.ANCESTRY, "ancestor(alice, X)")
        descendants = {row[1] for row in results}
        assert descendants == {"bob", "carol", "dan"}

    def test_constants_filter_queries(self):
        assert query(self.ANCESTRY, "ancestor(bob, dan)") == [("bob", "dan")]
        assert query(self.ANCESTRY, "ancestor(dan, alice)") == []

    def test_edb_relations_from_mapping(self):
        program = "adult(X) :- person(X, A), A >= 18."
        results = query(program, "adult(X)", {"person": [("kid", 7), ("grown", 30)]})
        assert results == [("grown",)]

    def test_negation(self):
        program = """
            isparent(X) :- parent(X, Y).
            leaf(X) :- person(X), not isparent(X).
        """
        edb = {"person": [("a",), ("b",), ("c",)], "parent": [("a", "b"), ("b", "c")]}
        assert query(program, "leaf(X)", edb) == [("c",)]

    def test_comparisons_and_assignment(self):
        program = """
            expensive(P, Band) :- listing(P, Price), Price >= 300000, Band = high.
            expensive(P, Band) :- listing(P, Price), Price < 300000, Band = low.
        """
        edb = {"listing": [("p1", 450000), ("p2", 120000)]}
        results = dict(query(program, "expensive(P, B)", edb))
        assert results == {"p1": "high", "p2": "low"}

    def test_anonymous_variables_do_not_join(self):
        program = "haslisting(S) :- listing(S, _, _)."
        edb = {"listing": [("rightmove", 1, 2), ("zoopla", 3, 4)]}
        assert len(query(program, "haslisting(X)", edb)) == 2

    def test_unknown_predicate_raises(self):
        with pytest.raises(UnknownPredicateError):
            query("p(a).", "nonexistent(X)")

    def test_evaluate_returns_database(self):
        model = evaluate(self.ANCESTRY)
        assert model.count("ancestor") == 6
        assert model.count() == 9

    def test_numeric_equality_across_types(self):
        program = "match(X) :- value(X, V), V = 3."
        assert query(program, "match(X)", {"value": [("a", 3.0), ("b", 4)]}) == [("a",)]

    def test_engine_reuse_with_different_edb(self):
        engine = Engine(Program.parse("big(X) :- n(X), X > 10."))
        assert engine.query("big(X)", {"n": [(5,), (20,)]}) == [(20,)]
        assert engine.query("big(X)", {"n": [(1,), (2,)]}) == []

    def test_stratified_negation_over_derived(self):
        program = """
            reachable(X, Y) :- edge(X, Y).
            reachable(X, Z) :- edge(X, Y), reachable(Y, Z).
            node(X) :- edge(X, Y).
            node(Y) :- edge(X, Y).
            unreachable(X, Y) :- node(X), node(Y), not reachable(X, Y).
        """
        edb = {"edge": [("a", "b"), ("b", "c")]}
        unreachable = set(query(program, "unreachable(a, X)", edb))
        assert ("a", "a") in unreachable
        assert ("a", "b") not in unreachable


class TestDatabase:
    def test_add_remove_and_copy(self):
        database = Database({"p": [(1,), (2,)]})
        assert database.count("p") == 2
        assert not database.add("p", (1,))
        assert database.add("p", (3,))
        assert database.remove("p", (1,))
        assert not database.remove("p", (99,))
        clone = database.copy()
        clone.add("p", (4,))
        assert database.count("p") == 2
        assert clone.count("p") == 3

    def test_merge(self):
        left = Database({"p": [(1,)]})
        right = Database({"p": [(2,)], "q": [(3,)]})
        left.merge(right)
        assert left.count() == 3
        assert "q" in left
