"""Unit tests for repro.relational.types."""

from __future__ import annotations


import pytest

from repro.relational.errors import TypeCoercionError
from repro.relational.types import (
    NULL,
    DataType,
    coerce_value,
    infer_common_type,
    infer_type,
    is_null,
    parse_literal,
)


class TestIsNull:
    def test_none_is_null(self):
        assert is_null(None)

    def test_nan_is_null(self):
        assert is_null(float("nan"))

    def test_zero_is_not_null(self):
        assert not is_null(0)

    def test_empty_string_is_not_null(self):
        assert not is_null("")

    def test_false_is_not_null(self):
        assert not is_null(False)


class TestDataType:
    def test_from_name_aliases(self):
        assert DataType.from_name("str") is DataType.STRING
        assert DataType.from_name("int") is DataType.INTEGER
        assert DataType.from_name("double") is DataType.FLOAT
        assert DataType.from_name("bool") is DataType.BOOLEAN
        assert DataType.from_name("ANY") is DataType.ANY

    def test_from_name_unknown_raises(self):
        with pytest.raises(TypeCoercionError):
            DataType.from_name("blob")

    def test_is_numeric(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.BOOLEAN.is_numeric


class TestCoerceValue:
    def test_null_passes_through(self):
        assert coerce_value(None, DataType.INTEGER) is NULL

    def test_string_to_integer(self):
        assert coerce_value("42", DataType.INTEGER) == 42

    def test_string_with_thousands_separator(self):
        assert coerce_value("1,250", DataType.INTEGER) == 1250

    def test_float_string_to_integer_when_integral(self):
        assert coerce_value("3.0", DataType.INTEGER) == 3

    def test_non_integral_float_to_integer_raises(self):
        with pytest.raises(TypeCoercionError):
            coerce_value(3.5, DataType.INTEGER)

    def test_currency_string_to_float(self):
        assert coerce_value("£325,000", DataType.FLOAT) == pytest.approx(325000.0)

    def test_bool_strings(self):
        assert coerce_value("yes", DataType.BOOLEAN) is True
        assert coerce_value("No", DataType.BOOLEAN) is False

    def test_bad_boolean_raises(self):
        with pytest.raises(TypeCoercionError):
            coerce_value("maybe", DataType.BOOLEAN)

    def test_to_string(self):
        assert coerce_value(12, DataType.STRING) == "12"
        assert coerce_value(True, DataType.STRING) == "true"

    def test_any_passes_through(self):
        assert coerce_value("anything", DataType.ANY) == "anything"

    def test_bad_integer_raises(self):
        with pytest.raises(TypeCoercionError):
            coerce_value("abc", DataType.INTEGER)


class TestInferType:
    def test_none_is_any(self):
        assert infer_type(None) is DataType.ANY

    def test_bool_before_int(self):
        assert infer_type(True) is DataType.BOOLEAN

    def test_int_and_float(self):
        assert infer_type(3) is DataType.INTEGER
        assert infer_type(3.5) is DataType.FLOAT

    def test_numeric_strings(self):
        assert infer_type("42") is DataType.INTEGER
        assert infer_type("4.2") is DataType.FLOAT

    def test_plain_string(self):
        assert infer_type("hello") is DataType.STRING

    def test_boolean_string(self):
        assert infer_type("true") is DataType.BOOLEAN


class TestInferCommonType:
    def test_all_same(self):
        assert infer_common_type([DataType.INTEGER, DataType.INTEGER]) is DataType.INTEGER

    def test_numeric_widens_to_float(self):
        assert infer_common_type([DataType.INTEGER, DataType.FLOAT]) is DataType.FLOAT

    def test_mixed_widens_to_string(self):
        assert infer_common_type([DataType.INTEGER, DataType.STRING]) is DataType.STRING

    def test_any_is_ignored(self):
        assert infer_common_type([DataType.ANY, DataType.INTEGER]) is DataType.INTEGER

    def test_all_any(self):
        assert infer_common_type([DataType.ANY, DataType.ANY]) is DataType.ANY


class TestParseLiteral:
    def test_empty_and_null_spellings(self):
        for text in ("", "  ", "null", "None", "NA", "n/a", "NaN"):
            assert parse_literal(text) is NULL

    def test_numbers(self):
        assert parse_literal("7") == 7
        assert parse_literal("7.5") == pytest.approx(7.5)

    def test_strings_are_stripped(self):
        assert parse_literal("  hello world ") == "hello world"

    def test_booleans(self):
        assert parse_literal("true") is True
        assert parse_literal("false") is False
