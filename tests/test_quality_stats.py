"""Tests for the quality sufficient-statistic layer (`repro.quality.stats`).

The contract under test: a maintained :class:`QualityStats` — fed any mix of
``add_row`` / ``remove_row`` / ``replace_row`` deltas — finalises to exactly
the report a full recomputation over the resulting row multiset produces,
and ``merge`` combines shard accumulators associatively.
"""

from __future__ import annotations

import pickle

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.quality import (
    CFD,
    CFDLearner,
    CFDLearnerConfig,
    build_stats,
    build_witness,
    consistency,
    evaluate_quality,
    find_violations,
)
from repro.quality.stats import QualityStats
from repro.quality.transducers import quality_stats_stash
from repro.relational import Attribute, DataType, Schema, Table

SCHEMA = Schema("listing", [
    Attribute("street", DataType.STRING),
    Attribute("postcode", DataType.STRING),
    Attribute("price", DataType.FLOAT),
    Attribute("bedrooms", DataType.INTEGER),
    Attribute("_row_id", DataType.STRING),
])

REFERENCE = Table(Schema("reference", [
    Attribute("street", DataType.STRING),
    Attribute("postcode", DataType.STRING),
    Attribute("price", DataType.FLOAT),
]), [
    ("Oak Street", "M1 1AA", 100.0),
    ("Elm Road", "M5 3CC", 200.0),
    ("Mill Lane", "SK1 2EF", 150.0),
])

MASTER = Table(Schema("master", [Attribute("postcode", DataType.STRING)]),
               [("M1 1AA",), ("M5 3CC",), ("ZZ9 9ZZ",)])

CFDS = (
    CFD("v1", "listing", ("postcode",), "street"),
    CFD("c1", "listing", ("postcode",), "street",
        lhs_pattern=(("postcode", "M1 1AA"),), rhs_pattern="Oak Street"),
)
WITNESSES = {"v1": {("m11aa",): "Oak Street", ("m53cc",): "Elm Road"}}

POSTCODES = ["M1 1AA", "m1 1aa", "M5 3CC", "SK1 2EF", "ZZ9 9ZZ", None]
STREETS = ["Oak Street", "Elm Road", "Mill Lane", "Wrong Road", None]


def row_strategy():
    return st.tuples(
        st.sampled_from(STREETS),
        st.sampled_from(POSTCODES),
        st.sampled_from([100.0, 150.0, 200.0, 999.0, None]),
        st.sampled_from([1, 2, 3, None]),
        st.sampled_from(["s:0", "s:1", "s:2", "s:3", None]),
    )


def context_kwargs():
    return dict(
        reference=REFERENCE,
        reference_key=("postcode",),
        cfds=CFDS,
        witnesses=WITNESSES,
        master=MASTER,
        master_key=("postcode",),
    )


def assert_reports_equal(left, right):
    assert left.as_dict() == right.as_dict()
    assert left.attribute_completeness == right.attribute_completeness
    assert left.row_count == right.row_count


class TestDeltaMaintenance:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        initial=st.lists(row_strategy(), max_size=12),
        deltas=st.lists(
            st.tuples(st.sampled_from(["add", "remove", "replace"]), row_strategy(),
                      row_strategy(), st.integers(min_value=0, max_value=30)),
            max_size=12,
        ),
    )
    def test_maintained_stats_equal_full_recompute(self, initial, deltas):
        """Random deltas → finalise == evaluate_quality over the final rows."""
        stats = QualityStats.for_schema(SCHEMA, relation="listing", **context_kwargs())
        rows = list(initial)
        for values in rows:
            stats.add_row(values)
        for op, row, replacement, position in deltas:
            if op == "add":
                stats.add_row(row)
                rows.append(row)
            elif op == "remove" and rows:
                victim = rows.pop(position % len(rows))
                stats.remove_row(victim)
            elif op == "replace" and rows:
                index = position % len(rows)
                stats.replace_row(rows[index], replacement)
                rows[index] = replacement
        table = Table(SCHEMA, rows, coerce=False, validate=False)
        assert_reports_equal(stats.finalise(), evaluate_quality(table, **context_kwargs()))

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(base=st.lists(row_strategy(), max_size=10),
           extra=st.lists(row_strategy(), min_size=1, max_size=8))
    def test_add_remove_round_trip_restores_exact_counters(self, base, extra):
        """Adding then removing the same rows restores every counter exactly."""
        stats = QualityStats.for_schema(SCHEMA, relation="listing", **context_kwargs())
        for values in base:
            stats.add_row(values)
        snapshot = pickle.dumps(stats)
        for values in extra:
            stats.add_row(values)
        for values in reversed(extra):
            stats.remove_row(values)
        restored = pickle.loads(snapshot)
        assert stats.completeness.row_count == restored.completeness.row_count
        assert stats.completeness.null_counts == restored.completeness.null_counts
        assert stats.accuracy.checked == restored.accuracy.checked
        assert stats.accuracy.correct == restored.accuracy.correct
        assert stats.consistency.checkable == restored.consistency.checkable
        assert stats.consistency.violations == restored.consistency.violations
        assert stats.relevance.covered == restored.relevance.covered
        assert_reports_equal(stats.finalise(), restored.finalise())


class TestMerge:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shards=st.lists(st.lists(row_strategy(), max_size=8), min_size=3, max_size=3))
    def test_merge_is_associative_across_shards(self, shards):
        """(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), and both equal the whole-table build."""

        def shard_stats(rows):
            stats = QualityStats.for_schema(SCHEMA, relation="listing", **context_kwargs())
            for values in rows:
                stats.add_row(values)
            return stats

        def clone(stats):
            return pickle.loads(pickle.dumps(stats))

        a, b, c = (shard_stats(rows) for rows in shards)
        left = clone(a)
        left.merge(clone(b))
        left.merge(clone(c))
        middle = clone(b)
        middle.merge(clone(c))
        right = clone(a)
        right.merge(middle)
        assert_reports_equal(left.finalise(), right.finalise())
        whole = Table(SCHEMA, [row for rows in shards for row in rows],
                      coerce=False, validate=False)
        assert_reports_equal(left.finalise(), evaluate_quality(whole, **context_kwargs()))

    def test_merge_rejects_incompatible_configurations(self):
        import pytest

        with_context = QualityStats.for_schema(SCHEMA, relation="l", **context_kwargs())
        bare = QualityStats.for_schema(SCHEMA, relation="l")
        with pytest.raises(ValueError):
            with_context.merge(bare)


class TestSinglePassConsistency:
    def test_consistency_matches_two_pass_computation(self):
        """The folded single pass equals the old applies_to + find_violations."""
        rows = [
            ("Oak Street", "M1 1AA", 100.0, 2, "s:0"),
            ("Wrong Road", "M1 1AA", 120.0, 3, "s:1"),
            ("Elm Road", "M5 3CC", 200.0, None, "s:2"),
            (None, "SK1 2EF", 150.0, 1, "s:3"),
            ("Mill Lane", None, 1.0, 1, "s:4"),
        ]
        table = Table(SCHEMA, rows, coerce=False, validate=False)
        checkable = sum(
            1 for cfd in CFDS for row in table.rows() if cfd.applies_to(row)
        )
        violations = find_violations(table, CFDS, witnesses=WITNESSES)
        expected = max(0.0, 1.0 - len(violations) / checkable)
        assert consistency(table, CFDS, witnesses=WITNESSES) == expected

    def test_consistency_trivial_cases(self):
        table = Table(SCHEMA, [("Oak Street", "M1 1AA", 100.0, 2, "s:0")],
                      coerce=False, validate=False)
        assert consistency(table, []) == 1.0
        assert consistency(Table(SCHEMA, []), CFDS, witnesses=WITNESSES) == 1.0


class TestCfdIdNamespacing:
    def test_ids_are_namespaced_by_context_table(self):
        """Two context tables bound to one target must not share CFD ids."""
        config = CFDLearnerConfig(min_constant_support=5)
        addresses = Table(Schema("addresses", ["street", "postcode"]), [
            ("Oak Street", "M1 1AA"), ("Elm Road", "M5 3CC"),
        ] * 10)
        registry = Table(Schema("registry", ["street", "postcode"]), [
            ("Oak Street", "M1 1AA"), ("Mill Lane", "SK1 2EF"),
        ] * 10)
        learner = CFDLearner(config)
        first = learner.learn(addresses, target_relation="property",
                              attribute_map={"street": "street", "postcode": "postcode"})
        second = learner.learn(registry, target_relation="property",
                               attribute_map={"street": "street", "postcode": "postcode"})
        first_ids = {cfd.cfd_id for cfd in first.cfds}
        second_ids = {cfd.cfd_id for cfd in second.cfds}
        assert first_ids, "expected CFDs from the first context table"
        assert second_ids, "expected CFDs from the second context table"
        assert not first_ids & second_ids, "ids must be namespaced per context table"
        assert all("addresses" in cfd_id for cfd_id in first_ids)
        # Both witness indexes survive side by side (the old collision
        # overwrote one with the other).
        combined = {**first.witnesses, **second.witnesses}
        assert len(combined) == len(first.witnesses) + len(second.witnesses)

    def test_witness_still_resolves_after_namespacing(self):
        addresses = Table(Schema("addr", ["street", "postcode"]),
                          [("Oak Street", "M1 1AA")] * 3)
        learned = CFDLearner(CFDLearnerConfig(min_constant_support=100)).learn(addresses)
        for cfd in learned.variable_cfds():
            assert cfd.cfd_id in learned.witnesses
            assert learned.witnesses[cfd.cfd_id] == build_witness(
                addresses, cfd.lhs, cfd.rhs
            )


class TestBuildStats:
    def test_build_stats_matches_evaluate_quality(self):
        rows = [
            ("Oak Street", "M1 1AA", 100.0, 2, "s:0"),
            ("Wrong Road", "m1 1aa", 999.0, None, "s:1"),
            (None, "M5 3CC", 200.0, 3, "s:2"),
        ]
        table = Table(SCHEMA, rows, coerce=False, validate=False)
        stats = build_stats(table, **context_kwargs())
        assert_reports_equal(stats.finalise(), evaluate_quality(table, **context_kwargs()))
        assert stats.row_count == 3

    def test_stats_are_picklable_with_learned_cfds(self):
        reference = Table(Schema("ref", ["street", "postcode"]), [
            ("Oak Street", "M1 1AA"), ("Elm Road", "M5 3CC"),
        ] * 15)
        learned = CFDLearner(CFDLearnerConfig(min_constant_support=5)).learn(reference)
        table = Table(SCHEMA, [("Oak Street", "M1 1AA", 100.0, 2, "s:0")],
                      coerce=False, validate=False)
        stats = build_stats(table, cfds=learned.cfds, witnesses=learned.witnesses)
        clone = pickle.loads(pickle.dumps(stats))
        assert_reports_equal(clone.finalise(), stats.finalise())

    def test_empty_table_completeness_keeps_old_edge_semantics(self):
        """Empty tables short-circuit to 0.0 before attribute validation."""
        import pytest

        from repro.quality import attribute_completeness, table_completeness
        from repro.relational.errors import UnknownAttributeError

        empty = Table(SCHEMA, [])
        assert attribute_completeness(empty, "nope") == 0.0
        assert table_completeness(empty, attributes=["nope"]) == 0.0
        populated = Table(SCHEMA, [("Oak Street", "M1 1AA", 100.0, 2, "s:0")],
                          coerce=False, validate=False)
        with pytest.raises(UnknownAttributeError):
            attribute_completeness(populated, "nope")
        with pytest.raises(UnknownAttributeError):
            table_completeness(populated, attributes=["nope"])

    def test_no_comparable_attributes_skips_reference_index(self):
        """names == () → 0.0 without paying for the reference index."""
        from repro.quality.stats import AccuracyStats

        disjoint = Table(Schema("other", [Attribute("postcode", DataType.STRING),
                                          Attribute("extra", DataType.STRING)]),
                         [("M1 1AA", "x")])
        stats = AccuracyStats.from_reference(("postcode", "extra"), disjoint,
                                             ("postcode", "extra"))
        assert stats.names == ()
        assert stats.reference_index == {}
        assert stats.value() == 0.0

    def test_stash_accessor_creates_once(self):
        from repro.core import KnowledgeBase

        kb = KnowledgeBase()
        assert quality_stats_stash(kb, create=False) is None
        stash = quality_stats_stash(kb)
        assert quality_stats_stash(kb) is stash
