"""Unit tests for feedback annotations, assimilation and feedback transducers."""

from __future__ import annotations

import pytest

from repro.core import Feedback, KnowledgeBase, Predicates
from repro.feedback import (
    FeedbackAssimilator,
    FeedbackCollector,
    FeedbackRepairTransducer,
    MappingEvaluationTransducer,
    simulate_feedback,
)
from repro.matching import Correspondence, MatchSet
from repro.relational import Attribute, DataType, Schema, Table

RESULT_SCHEMA = Schema("property_result", [
    Attribute("street", DataType.STRING),
    Attribute("postcode", DataType.STRING),
    Attribute("price", DataType.FLOAT),
    Attribute("bedrooms", DataType.INTEGER),
    Attribute("_source", DataType.STRING),
    Attribute("_row_id", DataType.STRING),
])

TRUTH_SCHEMA = Schema("truth", [
    Attribute("street", DataType.STRING),
    Attribute("postcode", DataType.STRING),
    Attribute("price", DataType.FLOAT),
    Attribute("bedrooms", DataType.INTEGER),
])


def result_table() -> Table:
    return Table(RESULT_SCHEMA, [
        ("Oak Street", "M1 1AA", 100000.0, 3, "rightmove", "rightmove:0"),
        ("Elm Road", "M5 3CC", 200000.0, 250, "rightmove", "rightmove:1"),   # area error
        ("Birch Close", "M4 4DD", 300000.0, 4, "onthemarket", "onthemarket:0"),
    ])


def truth_table() -> Table:
    return Table(TRUTH_SCHEMA, [
        ("Oak Street", "M1 1AA", 100000.0, 3),
        ("Elm Road", "M5 3CC", 200000.0, 2),
        ("Birch Close", "M4 4DD", 300000.0, 4),
    ])


class TestFeedbackCollector:
    def test_attribute_and_tuple_annotations(self):
        kb = KnowledgeBase()
        collector = FeedbackCollector(kb)
        collector.annotate_attribute("property_result", "rightmove:1", "bedrooms", correct=False)
        collector.annotate_tuple("property_result", "rightmove:0", correct=True)
        facts = kb.facts(Predicates.FEEDBACK)
        assert len(facts) == 2
        verdicts = {row[4] for row in facts}
        assert verdicts == {"correct", "incorrect"}
        attributes = {row[3] for row in facts}
        assert Predicates.ANY_ATTRIBUTE in attributes

    def test_annotate_many(self):
        kb = KnowledgeBase()
        collector = FeedbackCollector(kb)
        annotations = [Feedback("f1", "r", "k", "a", True), Feedback("f2", "r", "k", "b", False)]
        assert collector.annotate_many(annotations) == 2


class TestSimulateFeedback:
    def test_random_strategy_marks_against_truth(self):
        annotations = simulate_feedback(result_table(), truth_table(), ["postcode", "price"],
                                        budget=100, seed=3)
        assert annotations
        wrong = [a for a in annotations if not a.correct]
        assert all(a.attribute == "bedrooms" and a.row_key == "rightmove:1" for a in wrong)
        assert all(a.relation == "property_result" for a in annotations)

    def test_targeted_strategy_prioritises_errors(self):
        annotations = simulate_feedback(result_table(), truth_table(), ["postcode", "price"],
                                        budget=1, seed=3, strategy="targeted")
        assert len(annotations) == 1
        assert not annotations[0].correct

    def test_budget_limits_annotations(self):
        annotations = simulate_feedback(result_table(), truth_table(), ["postcode", "price"],
                                        budget=2, seed=0)
        assert len(annotations) == 2

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            simulate_feedback(result_table(), truth_table(), ["postcode"], strategy="psychic")


class TestFeedbackAssimilation:
    def setup_kb(self) -> KnowledgeBase:
        kb = KnowledgeBase()
        kb.catalog.register(result_table())
        kb.assert_fact(Predicates.RESULT, "property_result", "m1", 3)
        MatchSet([
            Correspondence("rightmove", "bedrooms", "property_result", "bedrooms", 0.9),
            Correspondence("rightmove", "street", "property_result", "street", 0.9),
        ]).assert_into(kb)
        kb.assert_fact(Predicates.FEEDBACK, "f1", "property_result", "rightmove:1",
                       "bedrooms", "incorrect")
        kb.assert_fact(Predicates.FEEDBACK, "f2", "property_result", "rightmove:0",
                       "bedrooms", "correct")
        kb.assert_fact(Predicates.FEEDBACK, "f3", "property_result", "rightmove:0",
                       "street", "correct")
        return kb

    def test_collect_evidence_by_provenance(self):
        kb = self.setup_kb()
        evidence = FeedbackAssimilator().collect_evidence(kb, None)
        bedrooms = evidence[("rightmove", "bedrooms")]
        assert bedrooms.correct == 1 and bedrooms.incorrect == 1
        assert bedrooms.error_rate == pytest.approx(0.5)
        assert evidence[("rightmove", "street")].error_rate == 0.0

    def test_tuple_level_feedback_spreads_over_attributes(self):
        kb = self.setup_kb()
        kb.assert_fact(Predicates.FEEDBACK, "f4", "property_result", "onthemarket:0",
                       "*", "incorrect")
        evidence = FeedbackAssimilator().collect_evidence(kb, None)
        assert ("onthemarket", "price") in evidence
        assert evidence[("onthemarket", "price")].incorrect == 1

    def test_revise_matches_penalises_and_rewards(self):
        kb = self.setup_kb()
        assimilator = FeedbackAssimilator(penalty_scale=0.5)
        evidence = assimilator.collect_evidence(kb, None)
        changed = assimilator.revise_matches(kb, evidence, {"rightmove": 2})
        assert changed == 2
        matches = MatchSet.from_kb(kb)
        bedrooms = matches.get(("rightmove", "bedrooms", "property_result", "bedrooms"))
        street = matches.get(("rightmove", "street", "property_result", "street"))
        assert bedrooms.score < 0.9          # penalised
        assert street.score >= 0.9           # confirmed, slightly rewarded

    def test_error_rates_artifact_includes_counts(self):
        kb = self.setup_kb()
        assimilator = FeedbackAssimilator()
        rates = assimilator.error_rates(assimilator.collect_evidence(kb, None))
        entry = rates[("rightmove", "bedrooms")]
        assert entry["error_rate"] == pytest.approx(0.5)
        assert entry["annotations"] == 2.0

    def test_source_row_counts(self):
        kb = self.setup_kb()
        counts = FeedbackAssimilator().source_row_counts(kb)
        assert counts == {"rightmove": 2, "onthemarket": 1}

    def test_no_evidence_is_a_noop(self):
        kb = KnowledgeBase()
        assimilator = FeedbackAssimilator()
        assert assimilator.collect_evidence(kb, None) == {}
        assert assimilator.revise_matches(kb, {}) == 0


class TestFeedbackTransducers:
    def setup_kb(self) -> KnowledgeBase:
        kb = KnowledgeBase()
        kb.catalog.register(result_table())
        kb.assert_fact(Predicates.RESULT, "property_result", "m1", 3)
        MatchSet([Correspondence("rightmove", "bedrooms", "property_result", "bedrooms", 0.9)
                  ]).assert_into(kb)
        return kb

    def test_mapping_evaluation_runs_on_feedback(self):
        kb = self.setup_kb()
        transducer = MappingEvaluationTransducer()
        assert not transducer.can_run(kb)
        kb.assert_fact(Predicates.FEEDBACK, "f1", "property_result", "rightmove:1",
                       "bedrooms", "incorrect")
        assert transducer.can_run(kb)
        transducer.execute(kb)
        revised = MatchSet.from_kb(kb).get(
            ("rightmove", "bedrooms", "property_result", "bedrooms"))
        assert revised.score < 0.9
        assert kb.has_artifact("feedback_penalties")
        # re-materialising the result does not make it runnable again
        assert not transducer.can_run(kb)

    def test_feedback_repair_clears_cells_and_drops_rows(self):
        kb = self.setup_kb()
        kb.assert_fact(Predicates.FEEDBACK, "f1", "property_result", "rightmove:1",
                       "bedrooms", "incorrect")
        kb.assert_fact(Predicates.FEEDBACK, "f2", "property_result", "onthemarket:0",
                       "*", "incorrect")
        transducer = FeedbackRepairTransducer()
        assert transducer.can_run(kb)
        outcome = transducer.execute(kb)
        repaired = kb.get_table("property_result")
        assert len(repaired) == 2                       # tuple-level incorrect row dropped
        assert repaired[1]["bedrooms"] is None          # flagged cell cleared
        assert outcome.details["cells_cleared"] == 1
        assert outcome.details["rows_dropped"] == 1

    def test_feedback_repair_reruns_after_rematerialisation(self):
        kb = self.setup_kb()
        kb.assert_fact(Predicates.FEEDBACK, "f1", "property_result", "rightmove:1",
                       "bedrooms", "incorrect")
        transducer = FeedbackRepairTransducer()
        transducer.execute(kb)
        assert not transducer.can_run(kb)
        # a re-materialisation refreshes the result fact → runnable again
        kb.retract_fact(Predicates.RESULT, "property_result", "m1", 3)
        kb.assert_fact(Predicates.RESULT, "property_result", "m1", 3)
        assert transducer.can_run(kb)

    def test_positive_feedback_only_is_a_noop_for_repair(self):
        kb = self.setup_kb()
        kb.assert_fact(Predicates.FEEDBACK, "f1", "property_result", "rightmove:0",
                       "street", "correct")
        outcome = FeedbackRepairTransducer().execute(kb)
        assert outcome.tables_written == []
