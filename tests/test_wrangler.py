"""Integration tests for the Wrangler facade and the full transducer complement."""

from __future__ import annotations

import pytest

from repro import (
    COMPLETENESS,
    ACCURACY,
    CONSISTENCY,
    Predicates,
    UserContext,
    Wrangler,
    WranglerConfig,
    build_default_registry,
)
from repro.core.orchestrator import PreferInstanceMatchingPolicy
from repro.mapping.model import PROVENANCE_ROW_ID, PROVENANCE_SOURCE


class TestDefaultRegistry:
    def test_contains_the_papers_transducers(self):
        registry = build_default_registry()
        names = set(registry.names())
        assert {"data_extraction", "schema_matching", "instance_matching",
                "mapping_generation", "mapping_selection", "cfd_learning",
                "quality_metrics", "mapping_evaluation"} <= names

    def test_optional_components_can_be_disabled(self):
        config = WranglerConfig(enable_fusion=False, enable_repair=False,
                                enable_source_selection=False)
        names = set(build_default_registry(config).names())
        assert "data_fusion" not in names
        assert "data_repair" not in names
        assert "source_selection" not in names

    def test_table1_style_description(self):
        registry = build_default_registry()
        rows = registry.describe()
        by_name = {row["name"]: row for row in rows}
        assert by_name["schema_matching"]["input_dependencies"] == [
            "schema(S, source)", "schema(T, target)"]
        assert by_name["instance_matching"]["input_dependencies"] == [
            "dataset(S, source, N)", "data_context(C, K, T)"]
        assert by_name["mapping_selection"]["input_dependencies"] == ["mapping_score(M, C, V)"]
        assert by_name["cfd_learning"]["input_dependencies"] == ["data_context(C, K, T)"]


class TestWranglerBootstrap:
    def test_bootstrap_produces_a_result(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        outcome = wrangler.run("bootstrap", ground_truth=tiny_scenario.ground_truth)
        assert outcome.table is not None
        assert outcome.row_count > 0
        assert outcome.selected_mapping is not None
        assert outcome.quality is not None
        assert outcome.steps_executed > 0
        # result columns follow the target schema plus provenance columns
        names = outcome.table.schema.attribute_names
        assert set(tiny_scenario.target.attribute_names) <= set(names)
        assert PROVENANCE_SOURCE in names and PROVENANCE_ROW_ID in names

    def test_no_result_before_running(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_source(tiny_scenario.rightmove)
        wrangler.set_target_schema(tiny_scenario.target)
        assert wrangler.result() is None
        assert wrangler.selected_mapping() is None
        assert wrangler.evaluate() is None

    def test_target_schema_required_for_result_name(self):
        with pytest.raises(ValueError):
            Wrangler().result_name()

    def test_trace_is_browsable(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        wrangler.run("bootstrap")
        text = wrangler.trace.to_text()
        assert "schema_matching" in text
        assert wrangler.trace.summary()["by_phase"]["bootstrap"] > 0

    def test_runs_are_idempotent_without_new_information(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        first = wrangler.run("bootstrap")
        second = wrangler.run("again")
        assert first.steps_executed > 0
        assert second.steps_executed == 0

    def test_manual_actions_counts_interactions(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        base = wrangler.manual_actions()
        assert base == 4  # three sources + one target schema
        wrangler.run("bootstrap")
        wrangler.add_reference_data(tiny_scenario.address_reference)
        assert wrangler.manual_actions() >= base + 1


class TestWranglerPayAsYouGo:
    def test_data_context_triggers_dormant_transducers(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        wrangler.run("bootstrap")
        ran_before = set(wrangler.trace.execution_counts())
        assert "instance_matching" not in ran_before
        assert "cfd_learning" not in ran_before

        wrangler.add_reference_data(tiny_scenario.address_reference)
        outcome = wrangler.run("data_context")
        ran_after = set(wrangler.trace.execution_counts())
        assert "instance_matching" in ran_after
        assert "cfd_learning" in ran_after
        assert outcome.steps_executed > 0
        assert wrangler.kb.count(Predicates.CFD) > 0

    def test_feedback_triggers_mapping_evaluation(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        wrangler.run("bootstrap")
        added = wrangler.simulate_feedback(tiny_scenario.ground_truth, budget=20, seed=2)
        assert added > 0
        wrangler.run("feedback")
        counts = wrangler.trace.execution_counts()
        assert counts.get("mapping_evaluation", 0) >= 1
        assert counts.get("feedback_repair", 0) >= 1

    def test_user_context_changes_weights_and_reselects(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        wrangler.run("bootstrap")
        selections_before = wrangler.trace.execution_counts().get("mapping_selection", 0)
        context = UserContext()
        context.prefer(COMPLETENESS("crimerank"), ACCURACY("type"), "very strongly")
        context.prefer(CONSISTENCY(), COMPLETENESS("bedrooms"), "strongly")
        wrangler.set_user_context(context)
        wrangler.run("user_context")
        assert wrangler.kb.count(Predicates.CRITERION_WEIGHT) > 0
        selections_after = wrangler.trace.execution_counts().get("mapping_selection", 0)
        assert selections_after > selections_before

    def test_manual_feedback_api(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        wrangler.run("bootstrap")
        result = wrangler.result()
        row_key = result[0][PROVENANCE_ROW_ID]
        wrangler.feedback_on_attribute(str(row_key), "bedrooms", correct=False)
        wrangler.feedback_on_tuple(str(row_key), correct=True)
        assert wrangler.kb.count(Predicates.FEEDBACK) == 2

    def test_custom_policy_is_used(self, tiny_scenario):
        wrangler = Wrangler(policy=PreferInstanceMatchingPolicy())
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        wrangler.add_reference_data(tiny_scenario.address_reference)
        wrangler.run("all_at_once")
        counts = wrangler.trace.execution_counts()
        assert counts.get("instance_matching", 0) >= 1

    def test_web_source_path(self, tiny_scenario):
        wrangler = Wrangler()
        pages = tiny_scenario.web_pages()
        wrangler.add_web_source("rightmove", pages["rightmove"])
        wrangler.add_web_source("onthemarket", pages["onthemarket"])
        wrangler.add_source(tiny_scenario.deprivation)
        wrangler.set_target_schema(tiny_scenario.target)
        outcome = wrangler.run("bootstrap")
        assert wrangler.trace.execution_counts().get("data_extraction", 0) == 1
        assert wrangler.kb.has_table("rightmove")
        assert outcome.row_count > 0

    def test_candidate_mappings_exposed(self, tiny_scenario):
        wrangler = Wrangler()
        wrangler.add_sources(tiny_scenario.sources())
        wrangler.set_target_schema(tiny_scenario.target)
        wrangler.run("bootstrap")
        candidates = wrangler.candidate_mappings()
        assert len(candidates) >= 3
        assert any(mapping.kind == "union" for mapping in candidates)
