"""Over-the-wire tests for the wrangling service (ISSUE 6 tentpole).

Boots a real :class:`~repro.service.server.WranglingServer` on an ephemeral
port inside a background thread, then drives it three ways — the typed
:class:`~repro.service.client.ServiceClient`, raw HTTP edge cases (bad
routes, bad payloads, wrong methods), and the ``python -m repro.service``
CLI invoked in-process — so every front end exercises the same wire format
the docs promise.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.service.api import (
    EvaluateRequest,
    ExplainRequest,
    JobStatus,
    RunRequest,
    SimulateRequest,
)
from repro.service.cli import main as cli_main
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import RateLimiter
from repro.service.server import WranglingServer
from repro.service.session import SessionStore

#: Small enough for fast rounds, big enough for real matches/repairs.
TINY = {"entities": 40, "sources": 2, "noise": 0.1, "missing": 0.05, "seed": 5}


class ServerHarness:
    """A WranglingServer on port 0, running in its own event-loop thread."""

    def __init__(self, store: SessionStore, *,
                 rate_limiter: RateLimiter | None = None):
        self.server = WranglingServer(store, port=0, rate_limiter=rate_limiter)
        self.address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True)

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        await self.server.start()
        self.address = self.server.address
        self._ready.set()
        await self._shutdown.wait()
        await self.server.stop()

    def start(self) -> str:
        self._thread.start()
        assert self._ready.wait(timeout=15), "server failed to start"
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self) -> None:
        assert self._loop is not None and self._shutdown is not None
        self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join(timeout=15)


@pytest.fixture(scope="module")
def service_url(tmp_path_factory):
    store = SessionStore(str(tmp_path_factory.mktemp("checkpoints")))
    harness = ServerHarness(store)
    yield harness.start()
    harness.stop()


@pytest.fixture(scope="module")
def client(service_url):
    return ServiceClient(service_url)


@pytest.fixture(scope="module")
def live_session(client):
    """One bootstrapped session shared by the read-mostly tests."""
    info = client.create_session(dict(TINY), name="http-shared")
    metrics = client.perform(info["session_id"], RunRequest(phase="bootstrap"))
    assert metrics["phase"] == "bootstrap"
    return info["session_id"]


class TestClientRoundTrips:
    def test_health(self, client):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["sessions"] >= 0

    def test_create_run_and_info(self, client, live_session):
        info = client.session(live_session)
        assert info["session_id"] == live_session
        assert info["name"] == "http-shared"
        assert info["last_phase"] == "bootstrap"
        assert info["rows"] > 0
        assert any(s["session_id"] == live_session for s in client.sessions())

    def test_result_rows_respects_limit(self, client, live_session):
        payload = client.result(live_session, limit=3)
        assert len(payload["rows"]) == 3
        assert payload["total"] >= 3
        row = payload["rows"][0]
        assert set(row) == {"row_key", "values"}

    def test_feedback_round_over_the_wire(self, client, live_session):
        before = client.session(live_session)["requests_served"]
        metrics = client.perform(
            live_session, SimulateRequest(budget=5, strategy="random"))
        assert metrics["phase"].startswith("feedback")
        assert metrics["session_id"] == live_session
        assert client.session(live_session)["requests_served"] == before + 1

    def test_evaluate_and_explain(self, client, live_session):
        quality = client.perform(live_session, EvaluateRequest())
        assert 0.0 <= quality["overall"] <= 1.0
        row_key = client.result(live_session, limit=1)["rows"][0]["row_key"]
        explained = client.perform(live_session, ExplainRequest(row=row_key))
        assert explained["tree"]["kind"]
        assert explained["text"]

    def test_job_records_are_pollable(self, client, live_session):
        record = client.submit(live_session, EvaluateRequest())
        finished = client.wait(record.job_id, timeout=120)
        assert finished.status == JobStatus.DONE
        assert finished.session_id == live_session
        assert any(job.job_id == record.job_id
                   for job in client.jobs(live_session))

    def test_checkpoint_then_restore_is_identical(self, client):
        info = client.create_session(dict(TINY, seed=11), name="http-restore")
        sid = info["session_id"]
        client.perform(sid, RunRequest(phase="bootstrap"))
        client.perform(sid, SimulateRequest(budget=4))
        saved = client.checkpoint(sid)
        assert saved["bytes"] > 0 and saved["sha256"]
        frozen = client.result(sid)

        # Mutate past the checkpoint, then rewind.
        client.perform(sid, SimulateRequest(budget=4))
        restored = client.restore(sid)
        assert restored["session_id"] == sid
        assert client.result(sid) == frozen
        client.drop(sid)

    def test_drop_removes_session(self, client):
        sid = client.create_session(dict(TINY, entities=20))["session_id"]
        client.drop(sid)
        with pytest.raises(ServiceError) as excinfo:
            client.session(sid)
        assert excinfo.value.status == 404


class TestWireEdgeCases:
    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.session("no-such-session")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("PUT", "/health")
        assert excinfo.value.status == 405

    def test_unknown_config_field_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.create_session(dict(TINY), config={"bogus_knob": 1})
        assert excinfo.value.status == 400
        assert "bogus_knob" in str(excinfo.value)

    def test_unknown_request_kind_is_400(self, client, live_session):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", f"/sessions/{live_session}/jobs",
                            {"kind": "frobnicate", "request": {}})
        assert excinfo.value.status == 400

    def test_invalid_json_body_is_400(self, service_url):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            service_url + "/sessions", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_rate_limited_tenant_gets_429(self, tmp_path):
        store = SessionStore(str(tmp_path))
        # One token, effectively never refilled: the second submission trips.
        harness = ServerHarness(
            store, rate_limiter=RateLimiter(rate=0.000_1, burst=1))
        url = harness.start()
        try:
            limited = ServiceClient(url, tenant="limited")
            sid = limited.create_session(dict(TINY, entities=20))["session_id"]
            limited.submit(sid, EvaluateRequest())
            with pytest.raises(ServiceError) as excinfo:
                limited.submit(sid, EvaluateRequest())
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after > 0
            # Buckets are per tenant: another tenant is not starved.
            other = ServiceClient(url, tenant="other")
            assert other.submit(sid, EvaluateRequest()).job_id
        finally:
            harness.stop()


class TestCliAgainstLiveServer:
    """``python -m repro.service`` commands, invoked in-process."""

    def _run(self, capsys, *argv: str):
        assert cli_main(list(argv)) == 0
        return capsys.readouterr().out

    def test_status_create_run_feedback_flow(self, service_url, capsys):
        out = self._run(capsys, "status", "--url", service_url)
        assert json.loads(out)["health"]["status"] == "ok"

        out = self._run(capsys, "create", "--url", service_url,
                        "--entities", "40", "--seed", "7", "--name", "cli-run")
        sid = json.loads(out)["session_id"]

        out = self._run(capsys, "run", "--url", service_url, sid)
        assert json.loads(out)["phase"] == "bootstrap"

        out = self._run(capsys, "feedback", "--url", service_url, sid,
                        "--simulate", "4", "--strategy", "random")
        assert json.loads(out)["phase"].startswith("feedback")

        out = self._run(capsys, "result", "--url", service_url, sid,
                        "--limit", "2")
        payload = json.loads(out)
        assert len(payload["rows"]) == 2

        out = self._run(capsys, "explain", "--url", service_url, sid,
                        payload["rows"][0]["row_key"])
        assert out.strip()  # rendered lineage text

        out = self._run(capsys, "checkpoint", "--url", service_url, sid)
        assert json.loads(out)["bytes"] > 0

        out = self._run(capsys, "restore", "--url", service_url, sid)
        assert json.loads(out)["session_id"] == sid

        out = self._run(capsys, "jobs", "--url", service_url,
                        "--session", sid)
        jobs = json.loads(out)
        assert jobs and all(job["session_id"] == sid for job in jobs)

    def test_feedback_without_input_is_an_error(self, service_url, capsys):
        code = cli_main(["feedback", "--url", service_url, "some-session"])
        assert code == 2
        assert "feedback needs" in capsys.readouterr().err
