"""Exceptions raised by the Vadalog-lite reasoner."""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for all reasoner errors."""


class ParseError(DatalogError):
    """The textual program could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")


class SafetyError(DatalogError):
    """A rule violates Datalog safety (unbound head/negated/builtin variable)."""


class StratificationError(DatalogError):
    """The program has no stratification (negative cycle through negation)."""


class EvaluationError(DatalogError):
    """Evaluation failed (e.g. a builtin applied to incompatible values)."""


class UnknownPredicateError(DatalogError):
    """A query references a predicate that is neither EDB nor IDB."""

    def __init__(self, predicate: str):
        self.predicate = predicate
        super().__init__(f"unknown predicate {predicate!r}")
