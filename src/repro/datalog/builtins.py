"""Evaluation of built-in comparison literals.

Vadalog-lite supports the usual comparison operators plus ``=`` which doubles
as equality test and as assignment when one side is an unbound variable
(handled by the engine before reaching :func:`evaluate_comparison`).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.datalog.errors import EvaluationError
from repro.datalog.terms import Comparison, Constant, Substitution, Term, Variable

__all__ = ["evaluate_comparison", "try_bind_assignment", "resolve_term"]


def resolve_term(term: Term, binding: Mapping[str, Any]) -> tuple[bool, Any]:
    """Resolve a term under a binding.

    Returns ``(True, value)`` when the term is ground (constant or bound
    variable) and ``(False, None)`` when it is an unbound variable.
    """
    if isinstance(term, Constant):
        return True, term.value
    if isinstance(term, Variable):
        if term.name in binding:
            return True, binding[term.name]
        return False, None
    raise EvaluationError(f"unsupported term type {type(term).__name__}")  # pragma: no cover


def try_bind_assignment(comparison: Comparison, binding: Substitution) -> Substitution | None:
    """Treat ``X = value`` (or ``value = X``) as an assignment.

    Returns an extended binding when exactly one side is an unbound variable
    and the other side is ground; returns None when the comparison is not an
    assignment under the current binding.
    """
    if comparison.op not in ("=", "=="):
        return None
    left_ground, left_value = resolve_term(comparison.left, binding)
    right_ground, right_value = resolve_term(comparison.right, binding)
    if left_ground and not right_ground and isinstance(comparison.right, Variable):
        extended = dict(binding)
        extended[comparison.right.name] = left_value
        return extended
    if right_ground and not left_ground and isinstance(comparison.left, Variable):
        extended = dict(binding)
        extended[comparison.left.name] = right_value
        return extended
    return None


def evaluate_comparison(comparison: Comparison, binding: Mapping[str, Any]) -> bool:
    """Evaluate a fully bound comparison literal."""
    left_ground, left = resolve_term(comparison.left, binding)
    right_ground, right = resolve_term(comparison.right, binding)
    if not (left_ground and right_ground):
        raise EvaluationError(
            f"comparison {comparison} has unbound variables under {dict(binding)!r}")
    op = comparison.op
    if op in ("=", "=="):
        return _values_equal(left, right)
    if op == "!=":
        return not _values_equal(left, right)
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        # Incomparable types never satisfy an ordering comparison.
        return False
    raise EvaluationError(f"unknown comparison operator {op!r}")  # pragma: no cover


def _values_equal(left: Any, right: Any) -> bool:
    """Equality with numeric cross-type tolerance (1 == 1.0) but not bool/int mixing."""
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right
