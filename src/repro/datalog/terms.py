"""Abstract syntax of Vadalog-lite programs.

The reasoner implements stratified Datalog with negation and comparison /
arithmetic built-ins, which is the fragment the VADA architecture exercises
for transducer dependencies, orchestration conditions and schema mappings.

Terms are either :class:`Variable` or :class:`Constant`. An :class:`Atom`
is a predicate applied to terms. A body :class:`Literal` is an atom, a
negated atom, or a built-in comparison. A :class:`Rule` is a head atom with
a list of body literals; a rule with an empty body and a ground head is a
fact.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.datalog.errors import SafetyError

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Atom",
    "Literal",
    "Comparison",
    "Rule",
    "fact",
    "Substitution",
    "hash_key",
    "row_key",
]

#: A substitution maps variable names to constant values.
Substitution = dict[str, Any]


def hash_key(value: Any) -> tuple[str, Any]:
    """A hashable index key matching the engine's constant-equality semantics.

    Plain Python hashing conflates ``True``/``1``/``1.0`` as dict keys, while
    the reasoner treats booleans as distinct from numbers and numbers as
    equal across int/float. Tagging the value keeps hash-index probes exactly
    aligned with ``_constants_match``: booleans get their own key space and
    numbers are canonicalised through ``float``.
    """
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, numbers.Number):
        # All numeric types share one key space so cross-type matches
        # (1 / 1.0 / Decimal("1") / Fraction(1)) land in one bucket. Values
        # float() cannot canonicalise keep their exact identity — Python's
        # numeric hashing still makes ==-equal keys collide correctly.
        try:
            return ("n", float(value))  # type: ignore[arg-type]
        except (OverflowError, TypeError):
            return ("n", value)
    return ("v", value)


def row_key(row: tuple, positions: tuple[int, ...]) -> tuple[tuple[str, Any], ...]:
    """The composite index key of ``row`` on a column subset."""
    return tuple(hash_key(row[position]) for position in positions)


class Term:
    """Base class for terms appearing in atoms."""

    __slots__ = ()

    def substitute(self, binding: Mapping[str, Any]) -> "Term":
        """Apply a substitution, returning a possibly-ground term."""
        raise NotImplementedError

    @property
    def is_ground(self) -> bool:
        """Whether the term contains no variables."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A logic variable (written with a leading uppercase letter or ``_``)."""

    name: str

    def substitute(self, binding: Mapping[str, Any]) -> Term:
        if self.name in binding:
            return Constant(binding[self.name])
        return self

    @property
    def is_ground(self) -> bool:
        return False

    @property
    def is_anonymous(self) -> bool:
        """Anonymous variables (``_``) never join with anything."""
        return self.name == "_"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant(Term):
    """A ground value: string, number or boolean."""

    value: Any

    def substitute(self, binding: Mapping[str, Any]) -> Term:
        return self

    @property
    def is_ground(self) -> bool:
        return True

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate applied to a tuple of terms."""

    predicate: str
    terms: tuple[Term, ...]

    def __init__(self, predicate: str, terms: Sequence[Term | Any] = ()):
        object.__setattr__(self, "predicate", predicate)
        normalised = tuple(t if isinstance(t, Term) else Constant(t) for t in terms)
        object.__setattr__(self, "terms", normalised)

    @property
    def arity(self) -> int:
        """Number of terms."""
        return len(self.terms)

    @property
    def is_ground(self) -> bool:
        """Whether every term is a constant."""
        return all(t.is_ground for t in self.terms)

    def variables(self) -> set[str]:
        """Names of all variables appearing in the atom."""
        return {t.name for t in self.terms if isinstance(t, Variable) and not t.is_anonymous}

    def substitute(self, binding: Mapping[str, Any]) -> "Atom":
        """Apply a substitution to every term."""
        return Atom(self.predicate, tuple(t.substitute(binding) for t in self.terms))

    def as_tuple(self) -> tuple[Any, ...]:
        """The constant values of a ground atom."""
        if not self.is_ground:
            raise SafetyError(f"atom {self} is not ground")
        return tuple(t.value for t in self.terms)  # type: ignore[union-attr]

    def __str__(self) -> str:
        if not self.terms:
            return self.predicate
        return f"{self.predicate}({', '.join(str(t) for t in self.terms)})"


#: Comparison operators supported in rule bodies.
COMPARISON_OPERATORS = ("==", "!=", "<=", ">=", "<", ">", "=")


@dataclass(frozen=True, slots=True)
class Comparison:
    """A built-in comparison literal, e.g. ``X > 3`` or ``Y = Z``."""

    left: Term
    op: str
    right: Term

    def variables(self) -> set[str]:
        """Variables referenced by either side."""
        names = set()
        for term in (self.left, self.right):
            if isinstance(term, Variable) and not term.is_anonymous:
                names.add(term.name)
        return names

    def substitute(self, binding: Mapping[str, Any]) -> "Comparison":
        """Apply a substitution to both sides."""
        return Comparison(self.left.substitute(binding), self.op, self.right.substitute(binding))

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class Literal:
    """A body literal: an atom, possibly negated, or a comparison."""

    atom: Atom | None = None
    comparison: Comparison | None = None
    negated: bool = False

    def __post_init__(self) -> None:
        if (self.atom is None) == (self.comparison is None):
            raise SafetyError("a literal must be exactly one of atom or comparison")
        if self.comparison is not None and self.negated:
            raise SafetyError("comparisons cannot be negated; use the inverse operator")

    @property
    def is_positive_atom(self) -> bool:
        """True for non-negated relational atoms."""
        return self.atom is not None and not self.negated

    @property
    def is_negated_atom(self) -> bool:
        """True for negated relational atoms."""
        return self.atom is not None and self.negated

    @property
    def is_comparison(self) -> bool:
        """True for built-in comparison literals."""
        return self.comparison is not None

    def variables(self) -> set[str]:
        """All variable names in the literal."""
        if self.atom is not None:
            return self.atom.variables()
        assert self.comparison is not None
        return self.comparison.variables()

    def __str__(self) -> str:
        if self.comparison is not None:
            return str(self.comparison)
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.atom}"


@dataclass(frozen=True, slots=True)
class Rule:
    """A Datalog rule ``head :- body``; an empty body makes it a fact."""

    head: Atom
    body: tuple[Literal, ...] = ()

    def __init__(self, head: Atom, body: Iterable[Literal] = ()):
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        self._check_safety()

    def _check_safety(self) -> None:
        """Range restriction: head, negated and comparison variables must be
        bound by a positive body atom (comparison of form ``X = constant`` or
        ``X = Y op Z`` with bound right side also binds)."""
        if not self.body:
            if not self.head.is_ground:
                raise SafetyError(f"fact {self.head} must be ground")
            return
        positive_vars: set[str] = set()
        for literal in self.body:
            if literal.is_positive_atom:
                positive_vars |= literal.variables()
        # Assignment comparisons (X = expr) can bind a new variable when the
        # right-hand side is ground or bound; we approximate by allowing '='
        # with a left variable to bind it when the right side is bound.
        changed = True
        while changed:
            changed = False
            for literal in self.body:
                if literal.is_comparison and literal.comparison.op in ("=", "=="):
                    comparison = literal.comparison
                    left, right = comparison.left, comparison.right
                    if isinstance(left, Variable) and left.name not in positive_vars:
                        if right.is_ground or (
                                isinstance(right, Variable) and right.name in positive_vars):
                            positive_vars.add(left.name)
                            changed = True
                    if isinstance(right, Variable) and right.name not in positive_vars:
                        if left.is_ground or (
                                isinstance(left, Variable) and left.name in positive_vars):
                            positive_vars.add(right.name)
                            changed = True
        unsafe = self.head.variables() - positive_vars
        if unsafe:
            raise SafetyError(
                f"rule {self}: head variables {sorted(unsafe)} are not bound by the body")
        for literal in self.body:
            if literal.is_negated_atom or literal.is_comparison:
                unbound = literal.variables() - positive_vars
                if unbound:
                    raise SafetyError(
                        f"rule {self}: variables {sorted(unbound)} in {literal} are unbound")

    @property
    def is_fact(self) -> bool:
        """True when the rule has an empty body (and therefore a ground head)."""
        return not self.body

    def positive_body_atoms(self) -> list[Atom]:
        """The positive relational atoms of the body."""
        return [lit.atom for lit in self.body if lit.is_positive_atom]  # type: ignore[misc]

    def negated_body_atoms(self) -> list[Atom]:
        """The negated relational atoms of the body."""
        return [lit.atom for lit in self.body if lit.is_negated_atom]  # type: ignore[misc]

    def comparisons(self) -> list[Comparison]:
        """The built-in comparison literals of the body."""
        return [lit.comparison for lit in self.body if lit.is_comparison]  # type: ignore[misc]

    def body_predicates(self) -> set[str]:
        """All predicate names referenced in the body."""
        return {lit.atom.predicate for lit in self.body if lit.atom is not None}

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(lit) for lit in self.body)}."


def fact(predicate: str, *values: Any) -> Rule:
    """Convenience constructor for a ground fact rule."""
    return Rule(Atom(predicate, tuple(Constant(v) for v in values)))
