"""Stratification of Datalog programs with negation.

A program is stratifiable when no predicate depends on itself through a
negation. The stratifier assigns each IDB predicate a stratum number such
that positive dependencies stay within or below the stratum and negative
dependencies point strictly below. Evaluation then proceeds stratum by
stratum (see :mod:`repro.datalog.engine`).
"""

from __future__ import annotations

from collections import defaultdict

from repro.datalog.errors import StratificationError
from repro.datalog.program import Program

__all__ = ["stratify", "stratum_order"]


def stratify(program: Program) -> dict[str, int]:
    """Assign a stratum number to every predicate of ``program``.

    EDB predicates are always stratum 0. Raises
    :class:`StratificationError` when the program has a cycle through
    negation.
    """
    graph = program.dependency_graph()
    idb = program.idb_predicates()
    predicates = program.predicates()
    strata = {predicate: 0 for predicate in predicates}

    # Iteratively raise strata: h >= b for positive edges, h >= b+1 for
    # negative edges. The maximum legal stratum is the number of IDB
    # predicates; exceeding it implies a negative cycle.
    limit = max(1, len(idb))
    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > limit * max(1, len(predicates)) + 1:
            raise StratificationError(
                "program is not stratifiable (cycle through negation)")
        for head, edges in graph.items():
            for body_predicate, negated in edges:
                required = strata[body_predicate] + (1 if negated else 0)
                if strata[head] < required:
                    if required > limit:
                        raise StratificationError(
                            f"program is not stratifiable: predicate {head!r} depends "
                            f"negatively on a cycle")
                    strata[head] = required
                    changed = True
    return strata


def stratum_order(program: Program) -> list[list[str]]:
    """Group IDB predicates into evaluation layers, lowest stratum first."""
    strata = stratify(program)
    idb = program.idb_predicates()
    layers: dict[int, list[str]] = defaultdict(list)
    for predicate in sorted(idb):
        layers[strata[predicate]].append(predicate)
    return [layers[level] for level in sorted(layers)]
