"""Vadalog-lite: a stratified Datalog reasoner with negation and built-ins.

This package reproduces the role of the *Vadalog Reasoner* in the VADA
architecture: evaluating transducer input dependencies over the knowledge
base, expressing orchestration conditions, and representing schema mappings.
The full Datalog± language of the paper is substituted by stratified Datalog
(see DESIGN.md §2 for the substitution rationale).
"""

from repro.datalog.engine import Database, Engine, evaluate, query
from repro.datalog.errors import (
    DatalogError,
    EvaluationError,
    ParseError,
    SafetyError,
    StratificationError,
    UnknownPredicateError,
)
from repro.datalog.parser import parse_atom, parse_program, parse_rule
from repro.datalog.program import Program
from repro.datalog.stratify import stratify, stratum_order
from repro.datalog.terms import (
    Atom,
    Comparison,
    Constant,
    Literal,
    Rule,
    Variable,
    fact,
)

__all__ = [
    "Atom",
    "Comparison",
    "Constant",
    "Literal",
    "Rule",
    "Variable",
    "fact",
    "Program",
    "Database",
    "Engine",
    "evaluate",
    "query",
    "parse_program",
    "parse_rule",
    "parse_atom",
    "stratify",
    "stratum_order",
    "DatalogError",
    "ParseError",
    "SafetyError",
    "StratificationError",
    "EvaluationError",
    "UnknownPredicateError",
]
