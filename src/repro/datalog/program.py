"""Datalog programs: rule collections with dependency analysis.

A :class:`Program` separates extensional facts (ground, body-less rules) from
intensional rules, and exposes the predicate dependency graph used by the
stratifier and the engine.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.datalog.parser import parse_program
from repro.datalog.terms import Atom, Rule

__all__ = ["Program"]


class Program:
    """A set of rules and facts forming one reasoning task."""

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: list[Rule] = []
        self._facts: list[Rule] = []
        self._rules_by_head: dict[str, list[Rule]] = defaultdict(list)
        for rule in rules:
            self.add(rule)

    @classmethod
    def parse(cls, text: str) -> "Program":
        """Build a program from Vadalog-lite source text."""
        return cls(parse_program(text))

    # -- construction --------------------------------------------------------

    def add(self, rule: Rule) -> None:
        """Add one rule or fact."""
        if rule.is_fact:
            self._facts.append(rule)
        else:
            self._rules.append(rule)
            self._rules_by_head[rule.head.predicate].append(rule)

    def add_text(self, text: str) -> None:
        """Parse and add every rule in ``text``."""
        for rule in parse_program(text):
            self.add(rule)

    def extend(self, rules: Iterable[Rule]) -> None:
        """Add many rules."""
        for rule in rules:
            self.add(rule)

    def merge(self, other: "Program") -> "Program":
        """Return a new program containing the rules of both."""
        return Program([*self.all_rules(), *other.all_rules()])

    # -- accessors -------------------------------------------------------------

    @property
    def rules(self) -> tuple[Rule, ...]:
        """Rules with non-empty bodies."""
        return tuple(self._rules)

    @property
    def facts(self) -> tuple[Rule, ...]:
        """Ground facts."""
        return tuple(self._facts)

    def all_rules(self) -> list[Rule]:
        """Facts followed by rules."""
        return [*self._facts, *self._rules]

    def __len__(self) -> int:
        return len(self._facts) + len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.all_rules())

    # -- predicate analysis ------------------------------------------------------

    def idb_predicates(self) -> set[str]:
        """Predicates defined by at least one rule with a body."""
        return {rule.head.predicate for rule in self._rules}

    def edb_predicates(self) -> set[str]:
        """Predicates that only appear as facts or in rule bodies."""
        idb = self.idb_predicates()
        edb = {fact.head.predicate for fact in self._facts if fact.head.predicate not in idb}
        for rule in self._rules:
            for predicate in rule.body_predicates():
                if predicate not in idb:
                    edb.add(predicate)
        return edb

    def predicates(self) -> set[str]:
        """All predicates mentioned anywhere in the program."""
        names = {rule.head.predicate for rule in self.all_rules()}
        for rule in self._rules:
            names |= rule.body_predicates()
        return names

    def rules_for(self, predicate: str) -> list[Rule]:
        """Rules whose head predicate is ``predicate``."""
        return list(self._rules_by_head.get(predicate, ()))

    def facts_for(self, predicate: str) -> list[Atom]:
        """Ground head atoms of facts for ``predicate``."""
        return [fact.head for fact in self._facts if fact.head.predicate == predicate]

    def dependency_graph(self) -> dict[str, set[tuple[str, bool]]]:
        """Map head predicate → set of (body predicate, negated?) edges."""
        graph: dict[str, set[tuple[str, bool]]] = defaultdict(set)
        for rule in self._rules:
            head = rule.head.predicate
            graph[head]  # ensure node exists
            for literal in rule.body:
                if literal.atom is not None:
                    graph[head].add((literal.atom.predicate, literal.negated))
        return dict(graph)

    def __repr__(self) -> str:
        return f"Program(rules={len(self._rules)}, facts={len(self._facts)})"

    def to_text(self) -> str:
        """Render the program back to Vadalog-lite source."""
        return "\n".join(str(rule) for rule in self.all_rules())

    def cache_key(self) -> str:
        """A stable textual key identifying this program's rule set.

        Used by callers (e.g. the knowledge base) that memoise evaluated
        models per program. Two programs with the same rendered rules share
        a key, so structurally identical dependency programs reuse one
        engine and one model.
        """
        return self.to_text()
