"""Parser for the textual Vadalog-lite syntax.

Grammar (informal)::

    program     := (rule | fact | comment)*
    rule        := atom ":-" body "."
    fact        := atom "."
    body        := literal ("," literal)*
    literal     := ["not"] atom | term comp_op term
    atom        := predicate "(" term ("," term)* ")" | predicate
    term        := variable | number | string | symbol | boolean
    variable    := [A-Z_][A-Za-z0-9_]*
    symbol      := [a-z][A-Za-z0-9_]*          (treated as a string constant)
    comment     := "%" ... end of line

Example::

    % transducer dependency: mapping generation needs both schemas
    runnable(mapping_generation) :- schema(S, source), schema(T, target).
    expensive(P) :- property(P, Price), Price > 500000.
"""

from __future__ import annotations

import re

from repro.datalog.errors import ParseError
from repro.datalog.terms import (
    COMPARISON_OPERATORS,
    Atom,
    Comparison,
    Constant,
    Literal,
    Rule,
    Term,
    Variable,
)

__all__ = ["parse_program", "parse_rule", "parse_atom", "tokenize"]


_TOKEN_SPEC = [
    ("COMMENT", r"%[^\n]*"),
    ("WS", r"\s+"),
    ("IMPLIES", r":-"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("COMPARE", r"==|!=|<=|>=|<|>|="),
    ("NUMBER", r"-?\d+\.\d+|-?\d+"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_]*"),
]
_TOKEN_REGEX = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def tokenize(text: str) -> list[_Token]:
    """Split source text into tokens, dropping whitespace and comments."""
    tokens: list[_Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(text):
        match = _TOKEN_REGEX.match(text, position)
        if match is None:
            column = position - line_start + 1
            raise ParseError(f"unexpected character {text[position]!r}", line, column)
        kind = match.lastgroup or ""
        value = match.group()
        column = position - line_start + 1
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, value, line, column))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            line_start = position + value.rfind("\n") + 1
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._position = 0

    def at_end(self) -> bool:
        return self._position >= len(self._tokens)

    def _peek(self) -> _Token | None:
        if self.at_end():
            return None
        return self._tokens[self._position]

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._position += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"expected {kind} but reached end of input")
        if token.kind != kind:
            raise ParseError(f"expected {kind} but found {token.text!r}", token.line, token.column)
        return self._advance()

    # -- grammar ----------------------------------------------------------

    def parse_program(self) -> list[Rule]:
        rules = []
        while not self.at_end():
            rules.append(self.parse_rule())
        return rules

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        token = self._peek()
        if token is not None and token.kind == "IMPLIES":
            self._advance()
            body = self._parse_body()
            self._expect("DOT")
            return Rule(head, body)
        self._expect("DOT")
        return Rule(head)

    def _parse_body(self) -> list[Literal]:
        literals = [self._parse_literal()]
        while True:
            token = self._peek()
            if token is not None and token.kind == "COMMA":
                self._advance()
                literals.append(self._parse_literal())
            else:
                return literals

    def _parse_literal(self) -> Literal:
        token = self._peek()
        if token is None:
            raise ParseError("expected a literal but reached end of input")
        if token.kind == "NAME" and token.text == "not":
            self._advance()
            atom = self.parse_atom()
            return Literal(atom=atom, negated=True)
        # Could be an atom (predicate followed by '(') or a comparison.
        return self._parse_atom_or_comparison()

    def _parse_atom_or_comparison(self) -> Literal:
        start = self._position
        term = self._parse_term()
        token = self._peek()
        if token is not None and token.kind == "COMPARE":
            operator = self._advance().text
            right = self._parse_term()
            if operator not in COMPARISON_OPERATORS:
                raise ParseError(f"unknown comparison operator {operator!r}",
                                 token.line, token.column)
            return Literal(comparison=Comparison(term, operator, right))
        # Not a comparison: rewind and parse as an atom.
        self._position = start
        atom = self.parse_atom()
        return Literal(atom=atom)

    def parse_atom(self) -> Atom:
        token = self._expect("NAME")
        if token.text == "not":
            raise ParseError("'not' is not a valid predicate name", token.line, token.column)
        if not token.text[0].islower():
            raise ParseError(
                f"predicate names must start lowercase, got {token.text!r}",
                token.line, token.column)
        predicate = token.text
        next_token = self._peek()
        if next_token is None or next_token.kind != "LPAREN":
            return Atom(predicate, ())
        self._advance()
        terms = [self._parse_term()]
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("unterminated atom: expected ',' or ')'")
            if token.kind == "COMMA":
                self._advance()
                terms.append(self._parse_term())
            elif token.kind == "RPAREN":
                self._advance()
                return Atom(predicate, tuple(terms))
            else:
                raise ParseError(f"expected ',' or ')' but found {token.text!r}",
                                 token.line, token.column)

    def _parse_term(self) -> Term:
        token = self._advance()
        if token.kind == "NUMBER":
            if "." in token.text:
                return Constant(float(token.text))
            return Constant(int(token.text))
        if token.kind == "STRING":
            raw = token.text[1:-1]
            return Constant(raw.replace('\\"', '"').replace("\\\\", "\\"))
        if token.kind == "NAME":
            text = token.text
            if text in ("true", "false"):
                return Constant(text == "true")
            if text[0].isupper() or text[0] == "_":
                return Variable(text)
            # Lower-case bare names are symbols, i.e. string constants.
            return Constant(text)
        raise ParseError(f"expected a term but found {token.text!r}", token.line, token.column)


def parse_program(text: str) -> list[Rule]:
    """Parse a whole program (a sequence of rules and facts)."""
    return _Parser(tokenize(text)).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule or fact."""
    parser = _Parser(tokenize(text))
    rule = parser.parse_rule()
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise ParseError(f"unexpected trailing input {token.text!r}", token.line, token.column)
    return rule


def parse_atom(text: str) -> Atom:
    """Parse a single atom (used for queries)."""
    parser = _Parser(tokenize(text))
    atom = parser.parse_atom()
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise ParseError(f"unexpected trailing input {token.text!r}", token.line, token.column)
    return atom
