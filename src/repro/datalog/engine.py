"""Bottom-up, semi-naive evaluation of stratified Vadalog-lite programs.

The engine is the reproduction of the paper's *Vadalog Reasoner*: the
architecture uses it to evaluate transducer input dependencies against the
knowledge base, to express orchestration conditions and to represent schema
mappings. The fragment implemented here (stratified Datalog with negation
and comparisons) covers all of those uses.

Join evaluation is hash-indexed: :class:`Database` maintains lazy
per-predicate hash indexes keyed on column subsets (built on the first probe,
maintained incrementally on inserts, dropped on deletions), and the engine
probes the index on the bound positions of each positive atom instead of
scanning the whole relation. Delta relations of the semi-naive loop are
plain :class:`Database` instances and are indexed the same way, so recursive
rounds touch only matching tuples. Pass ``indexed=False`` to
:class:`Engine` to fall back to the naive nested-loop join (kept as an A/B
escape hatch for testing and benchmarking).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Mapping

from repro.datalog.builtins import evaluate_comparison, try_bind_assignment
from repro.datalog.errors import EvaluationError, UnknownPredicateError
from repro.datalog.parser import parse_atom
from repro.datalog.program import Program
from repro.datalog.stratify import stratum_order
from repro.datalog.terms import (
    Atom,
    Constant,
    Literal,
    Rule,
    Substitution,
    Variable,
    hash_key,
    row_key,
)

__all__ = ["Database", "Engine", "evaluate", "query"]

#: A hash index on a column subset: composite key → rows sharing that key.
Index = dict[tuple, list[tuple]]


class Database:
    """Extensional store: predicate name → set of constant tuples.

    Alongside the tuple sets, the database keeps lazy hash indexes per
    (predicate, column subset). An index is built the first time the engine
    probes those columns, kept up to date incrementally as tuples are
    inserted, and invalidated wholesale when tuples are removed. Copies
    start index-free (indexes rebuild on first use), so mutating a copy
    never corrupts the original's indexes.
    """

    def __init__(self, relations: Mapping[str, Iterable[tuple]] | None = None):
        self._relations: dict[str, set[tuple]] = defaultdict(set)
        self._indexes: dict[str, dict[tuple[int, ...], Index]] = {}
        if relations:
            for predicate, rows in relations.items():
                for row in rows:
                    self.add(predicate, tuple(row))

    def add(self, predicate: str, row: tuple) -> bool:
        """Insert a tuple; returns True when it was new."""
        row = tuple(row)
        relation = self._relations[predicate]
        before = len(relation)
        relation.add(row)
        if len(relation) == before:
            return False
        self._index_insert(predicate, row)
        return True

    def _index_insert(self, predicate: str, row: tuple) -> None:
        """Maintain every existing index of ``predicate`` for a new row.

        Rows too short to have all indexed columns are skipped: they can
        never unify with an atom that binds those positions.
        """
        indexes = self._indexes.get(predicate)
        if not indexes:
            return
        for positions, index in indexes.items():
            if len(row) > positions[-1]:
                index.setdefault(row_key(row, positions), []).append(row)

    def add_atom(self, atom: Atom) -> bool:
        """Insert a ground atom."""
        return self.add(atom.predicate, atom.as_tuple())

    def remove(self, predicate: str, row: tuple) -> bool:
        """Remove a tuple; returns True when it was present."""
        relation = self._relations.get(predicate)
        if relation and tuple(row) in relation:
            relation.discard(tuple(row))
            self._indexes.pop(predicate, None)
            return True
        return False

    def relation(self, predicate: str) -> set[tuple]:
        """All tuples of ``predicate`` (empty set when unknown)."""
        return self._relations.get(predicate, set())

    def index_for(self, predicate: str, positions: tuple[int, ...]) -> Index:
        """The hash index of ``predicate`` on ``positions`` (built lazily).

        ``positions`` must be sorted ascending; short rows are skipped (see
        :meth:`_index_insert`).
        """
        indexes = self._indexes.setdefault(predicate, {})
        index = indexes.get(positions)
        if index is None:
            index = {}
            last = positions[-1]
            for row in self._relations.get(predicate, ()):
                if len(row) > last:
                    index.setdefault(row_key(row, positions), []).append(row)
            indexes[positions] = index
        return index

    def indexed_positions(self, predicate: str) -> list[tuple[int, ...]]:
        """Column subsets currently indexed for ``predicate`` (for tests)."""
        return sorted(self._indexes.get(predicate, ()))

    def predicates(self) -> list[str]:
        """Sorted names of all non-empty relations."""
        return sorted(name for name, rows in self._relations.items() if rows)

    def __contains__(self, predicate: object) -> bool:
        return predicate in self._relations and bool(self._relations[predicate])

    def count(self, predicate: str | None = None) -> int:
        """Number of tuples in one relation, or in the whole database."""
        if predicate is not None:
            return len(self.relation(predicate))
        return sum(len(rows) for rows in self._relations.values())

    def copy(self) -> "Database":
        """An independent copy of the database (indexes rebuild lazily)."""
        clone = Database()
        for predicate, rows in self._relations.items():
            clone._relations[predicate] = set(rows)
        return clone

    def merge(self, other: "Database") -> None:
        """Add every tuple of ``other`` into this database."""
        for predicate, rows in other._relations.items():
            if not rows:
                continue
            mine = self._relations[predicate]
            fresh = rows - mine
            if not fresh:
                continue
            mine |= fresh
            for row in fresh:
                self._index_insert(predicate, row)

    def __repr__(self) -> str:
        return f"Database(predicates={len(self._relations)}, tuples={self.count()})"


class Engine:
    """Evaluates a :class:`Program` over a :class:`Database` of EDB facts.

    ``indexed=True`` (the default) enables hash-indexed joins, the
    most-bound-first join planner and indexed negation probes.
    ``indexed=False`` reproduces the original nested-loop evaluation and is
    kept as an escape hatch for A/B testing; both modes compute identical
    models.
    """

    def __init__(self, program: Program, *, indexed: bool = True):
        self._program = program
        self._strata = stratum_order(program)
        self._indexed = indexed

    @property
    def program(self) -> Program:
        """The program being evaluated."""
        return self._program

    @property
    def indexed(self) -> bool:
        """Whether hash-indexed evaluation is enabled."""
        return self._indexed

    def run(self, edb: Database | Mapping[str, Iterable[tuple]] | None = None) -> Database:
        """Compute the full model: EDB facts plus all derivable IDB facts."""
        database = self._initial_database(edb)
        for layer in self._strata:
            rules = [rule for predicate in layer for rule in self._program.rules_for(predicate)]
            self._evaluate_stratum(rules, database)
        return database

    def _initial_database(self, edb) -> Database:
        if isinstance(edb, Database):
            database = edb.copy()
        else:
            database = Database(edb or {})
        for fact_rule in self._program.facts:
            database.add_atom(fact_rule.head)
        return database

    # -- stratum evaluation (semi-naive) ------------------------------------

    def _evaluate_stratum(self, rules: list[Rule], database: Database) -> None:
        if not rules:
            return
        derived_predicates = {rule.head.predicate for rule in rules}
        # First round: full naive evaluation seeds the deltas. Deltas are
        # Database instances so recursive rounds can hash-index them too.
        delta = Database()
        for rule in rules:
            for row in self._evaluate_rule(rule, database, delta=None):
                if database.add(rule.head.predicate, row):
                    delta.add(rule.head.predicate, row)
        # Subsequent rounds only join against the delta of recursive predicates.
        while delta.count():
            new_delta = Database()
            for rule in rules:
                recursive = rule.body_predicates() & derived_predicates
                if not recursive:
                    continue
                for row in self._evaluate_rule(rule, database, delta=delta):
                    if database.add(rule.head.predicate, row):
                        new_delta.add(rule.head.predicate, row)
            delta = new_delta

    def _evaluate_rule(self, rule: Rule, database: Database,
                       delta: Database | None) -> set[tuple]:
        """All head tuples derivable by one rule.

        With ``delta`` given, at least one positive literal must be matched
        against the delta relation (semi-naive restriction); we implement this
        by iterating over which positive literal is the "delta literal",
        identified by its position in the rule body.
        """
        if delta is None:
            bindings = self._match_body(rule, database, delta=None, delta_position=None)
            return self._project_head(rule, bindings)
        results: set[tuple] = set()
        for position, literal in enumerate(rule.body):
            if not literal.is_positive_atom:
                continue
            assert literal.atom is not None
            if literal.atom.predicate not in delta:
                continue
            bindings = self._match_body(rule, database, delta=delta, delta_position=position)
            results |= self._project_head(rule, bindings)
        return results

    def _project_head(self, rule: Rule, bindings: Iterable[Substitution]) -> set[tuple]:
        rows: set[tuple] = set()
        for binding in bindings:
            head = rule.head.substitute(binding)
            if not head.is_ground:
                raise EvaluationError(f"head {rule.head} not ground under {binding!r}")
            rows.add(head.as_tuple())
        return rows

    def _match_body(self, rule: Rule, database: Database, *,
                    delta: Database | None, delta_position: int | None
                    ) -> list[Substitution]:
        """Enumerate substitutions satisfying the rule body.

        Literals are consumed greedily: positive atoms extend bindings;
        comparisons and negated atoms are applied as soon as their variables
        are bound (deferring them otherwise). ``delta_position`` is the body
        index of the literal that must be matched against the delta.
        """
        bindings: list[Substitution] = [{}]
        pending: list[tuple[int, Literal]] = list(enumerate(rule.body))

        while pending:
            popped = self._pop_next(pending, bindings, delta_position)
            if popped is None:
                raise EvaluationError(
                    f"rule {rule}: cannot order body literals (unbound built-in or negation)")
            position, literal = popped
            source = delta if (delta is not None and position == delta_position) else database
            bindings = self._apply_literal(literal, bindings, source)
            if not bindings:
                return []
        return bindings

    def _pop_next(self, pending: list[tuple[int, Literal]], bindings: list[Substitution],
                  delta_position: int | None) -> tuple[int, Literal] | None:
        """Choose the next evaluable literal.

        Fully bound comparisons and negations run first (they only filter).
        Among positive atoms the planner prefers the delta literal (the
        smallest relation of a recursive round), then the atom with the most
        bound columns — the most selective index probe. With ``indexed=False``
        positive atoms are taken in body order, as the naive engine did.
        """
        # All bindings share the same variable set by construction.
        bound = set(bindings[0]) if bindings else set()
        # 1. comparisons / negations whose variables are fully bound.
        for index, (_, literal) in enumerate(pending):
            if literal.is_comparison:
                comparison = literal.comparison
                assert comparison is not None
                if comparison.variables() <= bound or (
                        comparison.op in ("=", "==")
                        and len(comparison.variables() - bound) == 1):
                    return pending.pop(index)
            elif literal.is_negated_atom and literal.variables() <= bound:
                return pending.pop(index)
        # 2. otherwise a positive atom, chosen by the join planner.
        best_index: int | None = None
        best_score = -1
        for index, (position, literal) in enumerate(pending):
            if not literal.is_positive_atom:
                continue
            if not self._indexed:
                return pending.pop(index)
            if position == delta_position:
                return pending.pop(index)
            assert literal.atom is not None
            score = sum(1 for term in literal.atom.terms
                        if isinstance(term, Constant)
                        or (isinstance(term, Variable) and not term.is_anonymous
                            and term.name in bound))
            if score > best_score:
                best_index, best_score = index, score
        if best_index is None:
            return None
        return pending.pop(best_index)

    def _apply_literal(self, literal: Literal, bindings: list[Substitution],
                       source: Database) -> list[Substitution]:
        """Apply one literal to the binding set, reading rows from ``source``
        (the main database, or the delta database for the delta literal)."""
        if literal.is_comparison:
            comparison = literal.comparison
            assert comparison is not None
            surviving = []
            for binding in bindings:
                assigned = try_bind_assignment(comparison.substitute(binding), {})
                if assigned is not None:
                    merged = dict(binding)
                    merged.update(assigned)
                    surviving.append(merged)
                elif evaluate_comparison(comparison, binding):
                    surviving.append(binding)
            return surviving
        atom = literal.atom
        assert atom is not None
        if literal.negated:
            return self._apply_negation(atom, bindings, source)
        return self._apply_join(atom, bindings, source)

    def _apply_negation(self, atom: Atom, bindings: list[Substitution],
                        source: Database) -> list[Substitution]:
        """Filter bindings whose ground instance of ``atom`` is present.

        Membership uses the same constant semantics as positive unification
        (`_constants_match`): booleans never match ints, ints match equal
        floats. The indexed path probes the full-width index; the naive path
        scans and unifies, so both agree exactly.
        """
        arity = atom.arity
        all_positions = tuple(range(arity))
        index = (source.index_for(atom.predicate, all_positions)
                 if self._indexed and arity else None)
        rows = source.relation(atom.predicate)
        surviving = []
        for binding in bindings:
            ground = atom.substitute(binding)
            if not ground.is_ground:
                raise EvaluationError(f"negated atom {atom} not ground under {binding!r}")
            values = ground.as_tuple()
            if index is not None:
                candidates = index.get(row_key(values, all_positions), ())
            else:
                candidates = rows
            present = any(_unify(ground, row, {}) is not None for row in candidates)
            if not present:
                surviving.append(binding)
        return surviving

    def _apply_join(self, atom: Atom, bindings: list[Substitution],
                    source: Database) -> list[Substitution]:
        """Extend bindings by joining ``atom`` against its relation.

        When indexing is enabled and at least one column is bound (a constant
        or an already-bound variable), the relation's hash index on those
        columns is probed; bindings sharing a probe key are batched so each
        key does a single lookup. Otherwise the full relation is scanned.
        """
        bound_positions: list[int] = []
        if self._indexed and bindings:
            bound = bindings[0]
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    bound_positions.append(position)
                elif (isinstance(term, Variable) and not term.is_anonymous
                      and term.name in bound):
                    bound_positions.append(position)
        extended: list[Substitution] = []
        if not bound_positions:
            rows = source.relation(atom.predicate)
            for binding in bindings:
                for row in rows:
                    unified = _unify(atom, row, binding)
                    if unified is not None:
                        extended.append(unified)
            return extended
        positions = tuple(bound_positions)
        index = source.index_for(atom.predicate, positions)
        terms = [atom.terms[position] for position in positions]
        # Batch: group bindings by probe key so each key is looked up once.
        groups: dict[tuple, list[Substitution]] = {}
        for binding in bindings:
            key = tuple(
                hash_key(term.value if isinstance(term, Constant) else binding[term.name])
                for term in terms)
            groups.setdefault(key, []).append(binding)
        for key, group in groups.items():
            rows = index.get(key)
            if not rows:
                continue
            for binding in group:
                for row in rows:
                    unified = _unify(atom, row, binding)
                    if unified is not None:
                        extended.append(unified)
        return extended

    # -- querying ------------------------------------------------------------

    def query(self, goal: Atom | str, edb: Database | Mapping[str, Iterable[tuple]] | None = None,
              *, database: Database | None = None) -> list[tuple]:
        """Evaluate the program and return tuples matching ``goal``.

        ``goal`` may contain variables and constants; constants act as
        filters. The returned tuples are full rows of the goal predicate.
        Pass ``database=`` to query an already-computed model instead of
        re-evaluating the program.
        """
        if isinstance(goal, str):
            goal = parse_atom(goal)
        model = database if database is not None else self.run(edb)
        known = set(self._program.predicates()) | set(model.predicates())
        if goal.predicate not in known:
            raise UnknownPredicateError(goal.predicate)
        results = []
        for row in model.relation(goal.predicate):
            if _unify(goal, row, {}) is not None:
                results.append(row)
        return sorted(results, key=_sort_key)


def _unify(atom: Atom, row: tuple, binding: Substitution) -> Substitution | None:
    """Unify an atom's terms against a constant tuple under ``binding``."""
    if len(atom.terms) != len(row):
        return None
    result = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if not _constants_match(term.value, value):
                return None
        elif isinstance(term, Variable):
            if term.is_anonymous:
                continue
            if term.name in result:
                if not _constants_match(result[term.name], value):
                    return None
            else:
                result[term.name] = value
    return result


def _constants_match(left: Any, right: Any) -> bool:
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        try:
            return float(left) == float(right)
        except OverflowError:  # ints beyond float range compare exactly
            return left == right
    return left == right


def _sort_key(row: tuple) -> tuple:
    return tuple((str(type(v).__name__), str(v)) for v in row)


def evaluate(program: Program | str,
             edb: Database | Mapping[str, Iterable[tuple]] | None = None,
             *, indexed: bool = True) -> Database:
    """One-shot helper: parse/evaluate ``program`` and return the full model."""
    if isinstance(program, str):
        program = Program.parse(program)
    return Engine(program, indexed=indexed).run(edb)


def query(program: Program | str, goal: Atom | str,
          edb: Database | Mapping[str, Iterable[tuple]] | None = None,
          *, indexed: bool = True) -> list[tuple]:
    """One-shot helper: evaluate ``program`` and return tuples matching ``goal``."""
    if isinstance(program, str):
        program = Program.parse(program)
    return Engine(program, indexed=indexed).query(goal, edb)
