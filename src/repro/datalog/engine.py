"""Bottom-up, semi-naive evaluation of stratified Vadalog-lite programs.

The engine is the reproduction of the paper's *Vadalog Reasoner*: the
architecture uses it to evaluate transducer input dependencies against the
knowledge base, to express orchestration conditions and to represent schema
mappings. The fragment implemented here (stratified Datalog with negation
and comparisons) covers all of those uses.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Mapping

from repro.datalog.builtins import evaluate_comparison, try_bind_assignment
from repro.datalog.errors import EvaluationError, UnknownPredicateError
from repro.datalog.parser import parse_atom
from repro.datalog.program import Program
from repro.datalog.stratify import stratum_order
from repro.datalog.terms import Atom, Constant, Literal, Rule, Substitution, Variable

__all__ = ["Database", "Engine", "evaluate", "query"]


class Database:
    """Extensional store: predicate name → set of constant tuples."""

    def __init__(self, relations: Mapping[str, Iterable[tuple]] | None = None):
        self._relations: dict[str, set[tuple]] = defaultdict(set)
        if relations:
            for predicate, rows in relations.items():
                for row in rows:
                    self.add(predicate, tuple(row))

    def add(self, predicate: str, row: tuple) -> bool:
        """Insert a tuple; returns True when it was new."""
        relation = self._relations[predicate]
        before = len(relation)
        relation.add(tuple(row))
        return len(relation) != before

    def add_atom(self, atom: Atom) -> bool:
        """Insert a ground atom."""
        return self.add(atom.predicate, atom.as_tuple())

    def remove(self, predicate: str, row: tuple) -> bool:
        """Remove a tuple; returns True when it was present."""
        relation = self._relations.get(predicate)
        if relation and tuple(row) in relation:
            relation.discard(tuple(row))
            return True
        return False

    def relation(self, predicate: str) -> set[tuple]:
        """All tuples of ``predicate`` (empty set when unknown)."""
        return self._relations.get(predicate, set())

    def predicates(self) -> list[str]:
        """Sorted names of all non-empty relations."""
        return sorted(name for name, rows in self._relations.items() if rows)

    def __contains__(self, predicate: object) -> bool:
        return predicate in self._relations and bool(self._relations[predicate])

    def count(self, predicate: str | None = None) -> int:
        """Number of tuples in one relation, or in the whole database."""
        if predicate is not None:
            return len(self.relation(predicate))
        return sum(len(rows) for rows in self._relations.values())

    def copy(self) -> "Database":
        """An independent copy of the database."""
        clone = Database()
        for predicate, rows in self._relations.items():
            clone._relations[predicate] = set(rows)
        return clone

    def merge(self, other: "Database") -> None:
        """Add every tuple of ``other`` into this database."""
        for predicate, rows in other._relations.items():
            self._relations[predicate] |= rows

    def __repr__(self) -> str:
        return f"Database(predicates={len(self._relations)}, tuples={self.count()})"


class Engine:
    """Evaluates a :class:`Program` over a :class:`Database` of EDB facts."""

    def __init__(self, program: Program):
        self._program = program
        self._strata = stratum_order(program)

    @property
    def program(self) -> Program:
        """The program being evaluated."""
        return self._program

    def run(self, edb: Database | Mapping[str, Iterable[tuple]] | None = None) -> Database:
        """Compute the full model: EDB facts plus all derivable IDB facts."""
        database = self._initial_database(edb)
        for layer in self._strata:
            rules = [rule for predicate in layer for rule in self._program.rules_for(predicate)]
            self._evaluate_stratum(rules, database)
        return database

    def _initial_database(self, edb) -> Database:
        if isinstance(edb, Database):
            database = edb.copy()
        else:
            database = Database(edb or {})
        for fact_rule in self._program.facts:
            database.add_atom(fact_rule.head)
        return database

    # -- stratum evaluation (semi-naive) ------------------------------------

    def _evaluate_stratum(self, rules: list[Rule], database: Database) -> None:
        if not rules:
            return
        derived_predicates = {rule.head.predicate for rule in rules}
        # First round: full naive evaluation seeds the deltas.
        delta: dict[str, set[tuple]] = {p: set() for p in derived_predicates}
        for rule in rules:
            for row in self._evaluate_rule(rule, database, delta=None):
                if database.add(rule.head.predicate, row):
                    delta[rule.head.predicate].add(row)
        # Subsequent rounds only join against the delta of recursive predicates.
        while any(delta.values()):
            new_delta: dict[str, set[tuple]] = {p: set() for p in derived_predicates}
            for rule in rules:
                recursive = rule.body_predicates() & derived_predicates
                if not recursive:
                    continue
                for row in self._evaluate_rule(rule, database, delta=delta):
                    if database.add(rule.head.predicate, row):
                        new_delta[rule.head.predicate].add(row)
            delta = new_delta

    def _evaluate_rule(self, rule: Rule, database: Database,
                       delta: dict[str, set[tuple]] | None) -> set[tuple]:
        """All head tuples derivable by one rule.

        With ``delta`` given, at least one positive literal must be matched
        against the delta relation (semi-naive restriction); we implement this
        by iterating over which positive literal is the "delta literal".
        """
        positive = [l for l in rule.body if l.is_positive_atom]
        if delta is None:
            bindings = self._match_body(rule, database, delta_index=None, delta=None)
            return self._project_head(rule, bindings)
        results: set[tuple] = set()
        for index, literal in enumerate(positive):
            assert literal.atom is not None
            if literal.atom.predicate not in delta or not delta[literal.atom.predicate]:
                continue
            bindings = self._match_body(rule, database, delta_index=index, delta=delta)
            results |= self._project_head(rule, bindings)
        return results

    def _project_head(self, rule: Rule, bindings: Iterable[Substitution]) -> set[tuple]:
        rows: set[tuple] = set()
        for binding in bindings:
            head = rule.head.substitute(binding)
            if not head.is_ground:
                raise EvaluationError(f"head {rule.head} not ground under {binding!r}")
            rows.add(head.as_tuple())
        return rows

    def _match_body(self, rule: Rule, database: Database, *,
                    delta_index: int | None, delta: dict[str, set[tuple]] | None
                    ) -> list[Substitution]:
        """Enumerate substitutions satisfying the rule body.

        Literals are consumed greedily: positive atoms extend bindings;
        comparisons and negated atoms are applied as soon as their variables
        are bound (deferring them otherwise).
        """
        bindings: list[Substitution] = [{}]
        pending: list[Literal] = list(rule.body)
        positive_seen = -1

        while pending:
            literal, positive_seen = self._pop_next(pending, bindings, positive_seen)
            if literal is None:
                raise EvaluationError(
                    f"rule {rule}: cannot order body literals (unbound built-in or negation)")
            bindings = self._apply_literal(
                literal, bindings, database,
                use_delta=(delta is not None and literal.is_positive_atom
                           and positive_seen == delta_index),
                delta=delta)
            if not bindings:
                return []
        return bindings

    def _pop_next(self, pending: list[Literal], bindings: list[Substitution],
                  positive_seen: int) -> tuple[Literal | None, int]:
        """Choose the next evaluable literal, preferring filters over joins."""
        bound = set(bindings[0]) if bindings else set()
        if bindings:
            # All bindings share the same variable set by construction.
            bound = set(bindings[0].keys())
        # 1. comparisons / negations whose variables are fully bound.
        for index, literal in enumerate(pending):
            if literal.is_comparison:
                comparison = literal.comparison
                assert comparison is not None
                if comparison.variables() <= bound or (
                        comparison.op in ("=", "==")
                        and len(comparison.variables() - bound) == 1):
                    return pending.pop(index), positive_seen
            elif literal.is_negated_atom and literal.variables() <= bound:
                return pending.pop(index), positive_seen
        # 2. otherwise the first positive atom.
        for index, literal in enumerate(pending):
            if literal.is_positive_atom:
                return pending.pop(index), positive_seen + 1
        return None, positive_seen

    def _apply_literal(self, literal: Literal, bindings: list[Substitution],
                       database: Database, *, use_delta: bool,
                       delta: dict[str, set[tuple]] | None) -> list[Substitution]:
        if literal.is_comparison:
            comparison = literal.comparison
            assert comparison is not None
            surviving = []
            for binding in bindings:
                assigned = try_bind_assignment(comparison.substitute(binding), {})
                if assigned is not None:
                    merged = dict(binding)
                    merged.update(assigned)
                    surviving.append(merged)
                elif evaluate_comparison(comparison, binding):
                    surviving.append(binding)
            return surviving
        atom = literal.atom
        assert atom is not None
        if literal.negated:
            rows = database.relation(atom.predicate)
            surviving = []
            for binding in bindings:
                ground = atom.substitute(binding)
                if not ground.is_ground:
                    raise EvaluationError(f"negated atom {atom} not ground under {binding!r}")
                if ground.as_tuple() not in rows:
                    surviving.append(binding)
            return surviving
        # Positive atom: join.
        if use_delta and delta is not None:
            rows = delta.get(atom.predicate, set())
        else:
            rows = database.relation(atom.predicate)
        extended: list[Substitution] = []
        for binding in bindings:
            for row in rows:
                unified = _unify(atom, row, binding)
                if unified is not None:
                    extended.append(unified)
        return extended

    # -- querying ------------------------------------------------------------

    def query(self, goal: Atom | str, edb: Database | Mapping[str, Iterable[tuple]] | None = None,
              *, database: Database | None = None) -> list[tuple]:
        """Evaluate the program and return tuples matching ``goal``.

        ``goal`` may contain variables and constants; constants act as
        filters. The returned tuples are full rows of the goal predicate.
        """
        if isinstance(goal, str):
            goal = parse_atom(goal)
        model = database if database is not None else self.run(edb)
        known = set(self._program.predicates()) | set(model.predicates())
        if goal.predicate not in known:
            raise UnknownPredicateError(goal.predicate)
        results = []
        for row in model.relation(goal.predicate):
            if _unify(goal, row, {}) is not None:
                results.append(row)
        return sorted(results, key=_sort_key)


def _unify(atom: Atom, row: tuple, binding: Substitution) -> Substitution | None:
    """Unify an atom's terms against a constant tuple under ``binding``."""
    if len(atom.terms) != len(row):
        return None
    result = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if not _constants_match(term.value, value):
                return None
        elif isinstance(term, Variable):
            if term.is_anonymous:
                continue
            if term.name in result:
                if not _constants_match(result[term.name], value):
                    return None
            else:
                result[term.name] = value
    return result


def _constants_match(left: Any, right: Any) -> bool:
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right


def _sort_key(row: tuple) -> tuple:
    return tuple((str(type(v).__name__), str(v)) for v in row)


def evaluate(program: Program | str,
             edb: Database | Mapping[str, Iterable[tuple]] | None = None) -> Database:
    """One-shot helper: parse/evaluate ``program`` and return the full model."""
    if isinstance(program, str):
        program = Program.parse(program)
    return Engine(program).run(edb)


def query(program: Program | str, goal: Atom | str,
          edb: Database | Mapping[str, Iterable[tuple]] | None = None) -> list[tuple]:
    """One-shot helper: evaluate ``program`` and return tuples matching ``goal``."""
    if isinstance(program, str):
        program = Program.parse(program)
    return Engine(program).query(goal, edb)
