"""String and value-set similarity measures used by the matchers.

All measures return a score in [0, 1] where 1 means identical. They are the
primitives behind schema matching (attribute-name similarity), instance
matching (value-overlap similarity) and duplicate detection (record
similarity).
"""

from __future__ import annotations

import math
import re
from collections import Counter
from typing import Iterable, Sequence

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "ngrams",
    "ngram_similarity",
    "jaccard_similarity",
    "dice_similarity",
    "cosine_similarity",
    "token_set_similarity",
    "normalise_name",
    "name_similarity",
    "numeric_overlap",
]


def levenshtein_distance(left: str, right: str) -> int:
    """Classic edit distance (insertions, deletions, substitutions)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    # Keep the shorter string in the inner loop for memory locality.
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (0 if left_char == right_char else 1)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """Edit distance normalised to [0, 1]."""
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    return 1.0 - levenshtein_distance(left, right) / longest


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity (transposition-aware)."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)
    left_matches = [False] * len(left)
    right_matches = [False] * len(right)
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len(right))
        for j in range(start, end):
            if right_matches[j] or right[j] != char:
                continue
            left_matches[i] = True
            right_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matches):
        if not matched:
            continue
        while not right_matches[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (matches / len(left) + matches / len(right)
            + (matches - transpositions) / matches) / 3.0


def jaro_winkler_similarity(left: str, right: str, *, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler: Jaro boosted by the length of the common prefix."""
    jaro = jaro_similarity(left, right)
    prefix = 0
    for left_char, right_char in zip(left[:4], right[:4]):
        if left_char != right_char:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def ngrams(text: str, size: int = 3) -> list[str]:
    """Character n-grams of ``text`` with boundary padding."""
    if size <= 0:
        raise ValueError("n-gram size must be positive")
    padded = f"{'#' * (size - 1)}{text}{'#' * (size - 1)}"
    if len(padded) < size:
        return [padded]
    return [padded[i:i + size] for i in range(len(padded) - size + 1)]


def ngram_similarity(left: str, right: str, *, size: int = 3) -> float:
    """Dice coefficient over character n-grams."""
    if not left and not right:
        return 1.0
    if not left or not right:
        return 0.0
    left_grams = Counter(ngrams(left, size))
    right_grams = Counter(ngrams(right, size))
    overlap = sum((left_grams & right_grams).values())
    total = sum(left_grams.values()) + sum(right_grams.values())
    return 2.0 * overlap / total if total else 0.0


def jaccard_similarity(left: Iterable, right: Iterable) -> float:
    """|A ∩ B| / |A ∪ B| over arbitrary hashable items."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    union = left_set | right_set
    if not union:
        return 1.0
    return len(left_set & right_set) / len(union)


def dice_similarity(left: Iterable, right: Iterable) -> float:
    """2|A ∩ B| / (|A| + |B|) over arbitrary hashable items."""
    left_set, right_set = set(left), set(right)
    total = len(left_set) + len(right_set)
    if total == 0:
        return 1.0
    return 2.0 * len(left_set & right_set) / total


def cosine_similarity(left: Iterable, right: Iterable) -> float:
    """Cosine similarity over item multisets (bag-of-tokens)."""
    left_counts, right_counts = Counter(left), Counter(right)
    if not left_counts and not right_counts:
        return 1.0
    if not left_counts or not right_counts:
        return 0.0
    dot = sum(left_counts[token] * right_counts.get(token, 0) for token in left_counts)
    left_norm = math.sqrt(sum(v * v for v in left_counts.values()))
    right_norm = math.sqrt(sum(v * v for v in right_counts.values()))
    if left_norm == 0 or right_norm == 0:
        return 0.0
    return dot / (left_norm * right_norm)


_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def _tokens(text: str) -> list[str]:
    return _TOKEN_PATTERN.findall(text.lower())


def token_set_similarity(left: str, right: str) -> float:
    """Jaccard similarity over word tokens."""
    return jaccard_similarity(_tokens(left), _tokens(right))


_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_NON_ALNUM = re.compile(r"[^a-z0-9]+")

#: Common attribute-name abbreviations expanded during normalisation.
_ABBREVIATIONS = {
    "desc": "description",
    "descr": "description",
    "num": "number",
    "no": "number",
    "addr": "address",
    "str": "street",
    "pc": "postcode",
    "zip": "postcode",
    "zipcode": "postcode",
    "beds": "bedrooms",
    "bed": "bedrooms",
    "br": "bedrooms",
    "qty": "quantity",
    "amt": "amount",
    "avg": "average",
}


def normalise_name(name: str) -> str:
    """Normalise an attribute/relation name for comparison.

    Splits camelCase, lowers case, strips punctuation and expands common
    abbreviations, so that ``propertyType``, ``property_type`` and
    ``PROPERTY TYPE`` all normalise identically.
    """
    spaced = _CAMEL_BOUNDARY.sub(" ", name)
    lowered = spaced.lower()
    cleaned = _NON_ALNUM.sub(" ", lowered).strip()
    tokens = [
        _ABBREVIATIONS.get(token, token)
        for token in cleaned.split()
    ]
    return " ".join(tokens)


def name_similarity(left: str, right: str) -> float:
    """Composite attribute-name similarity used by the schema matcher.

    The maximum of normalised-equality, token overlap, trigram and
    Jaro–Winkler similarity over the normalised names. Taking the maximum
    makes the measure robust to both abbreviation (token overlap catches
    ``bedrooms`` vs ``beds``) and typos (edit-based measures catch those).
    """
    left_norm = normalise_name(left)
    right_norm = normalise_name(right)
    if not left_norm or not right_norm:
        return 0.0
    if left_norm == right_norm:
        return 1.0
    best = max(
        token_set_similarity(left_norm, right_norm),
        ngram_similarity(left_norm, right_norm),
    )
    # Edit-based similarity is only trusted when it is strong: moderate
    # Jaro–Winkler scores between unrelated short names (e.g. "price" vs
    # "crimerank") are noise, but high scores reliably indicate typos or
    # shared prefixes ("crime" vs "crimerank").
    edit_based = jaro_winkler_similarity(left_norm, right_norm)
    if edit_based >= 0.8:
        best = max(best, edit_based)
    return best


def numeric_overlap(left: Sequence[float], right: Sequence[float]) -> float:
    """Range-overlap similarity of two numeric value samples.

    The ratio of the overlapping range to the combined range, which is a
    cheap distributional signal for instance matching of numeric columns
    (prices overlap with prices, bedrooms with bedrooms).
    """
    left_values = [v for v in left if v is not None]
    right_values = [v for v in right if v is not None]
    if not left_values or not right_values:
        return 0.0
    left_low, left_high = min(left_values), max(left_values)
    right_low, right_high = min(right_values), max(right_values)
    overlap = min(left_high, right_high) - max(left_low, right_low)
    if overlap <= 0:
        return 0.0
    combined = max(left_high, right_high) - min(left_low, right_low)
    if combined <= 0:
        return 1.0
    return overlap / combined
