"""Attribute correspondences: the output of matching components.

A :class:`Correspondence` links one source attribute to one target attribute
with a confidence score. A :class:`MatchSet` collects correspondences, keeps
only the best score per attribute pair, and converts to/from the knowledge
base's ``match`` facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.facts import Predicates, match_fact
from repro.core.knowledge_base import KnowledgeBase

__all__ = ["Correspondence", "MatchSet"]


@dataclass(frozen=True, order=True)
class Correspondence:
    """One candidate attribute-level match with a confidence score."""

    source_relation: str
    source_attribute: str
    target_relation: str
    target_attribute: str
    score: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"correspondence score must be in [0, 1], got {self.score}")

    @property
    def pair(self) -> tuple[str, str, str, str]:
        """The attribute pair without the score (identity of the match)."""
        return (self.source_relation, self.source_attribute,
                self.target_relation, self.target_attribute)

    def with_score(self, score: float) -> "Correspondence":
        """A copy with a revised score (clamped to [0, 1])."""
        clamped = min(1.0, max(0.0, score))
        return Correspondence(
            self.source_relation,
            self.source_attribute,
            self.target_relation,
            self.target_attribute,
            clamped,
        )

    def to_fact(self) -> tuple[str, tuple]:
        """Render as a ``match`` KB fact."""
        return match_fact(
            self.source_relation,
            self.source_attribute,
            self.target_relation,
            self.target_attribute,
            self.score,
        )

    def __str__(self) -> str:
        return (f"{self.source_relation}.{self.source_attribute} ~ "
                f"{self.target_relation}.{self.target_attribute} ({self.score:.2f})")


class MatchSet:
    """A deduplicated collection of correspondences (best score wins)."""

    def __init__(self, correspondences: Iterable[Correspondence] = ()):
        self._by_pair: dict[tuple[str, str, str, str], Correspondence] = {}
        for correspondence in correspondences:
            self.add(correspondence)

    def add(self, correspondence: Correspondence, *, combine: str = "max") -> None:
        """Add a correspondence; on conflict keep max/mean of the scores."""
        existing = self._by_pair.get(correspondence.pair)
        if existing is None:
            self._by_pair[correspondence.pair] = correspondence
            return
        if combine == "max":
            score = max(existing.score, correspondence.score)
        elif combine == "mean":
            score = (existing.score + correspondence.score) / 2.0
        elif combine == "replace":
            score = correspondence.score
        else:
            raise ValueError(f"unknown combine mode {combine!r}")
        self._by_pair[correspondence.pair] = existing.with_score(score)

    def merge(self, other: "MatchSet", *, combine: str = "max") -> "MatchSet":
        """Combine two match sets into a new one."""
        merged = MatchSet(self)
        for correspondence in other:
            merged.add(correspondence, combine=combine)
        return merged

    def __iter__(self) -> Iterator[Correspondence]:
        return iter(sorted(self._by_pair.values()))

    def __len__(self) -> int:
        return len(self._by_pair)

    def __contains__(self, pair: object) -> bool:
        return pair in self._by_pair

    def get(self, pair: tuple[str, str, str, str]) -> Correspondence | None:
        """Look up a correspondence by its attribute pair."""
        return self._by_pair.get(pair)

    # -- filtering / views ---------------------------------------------------

    def above(self, threshold: float) -> "MatchSet":
        """Correspondences with score >= threshold."""
        return MatchSet(c for c in self if c.score >= threshold)

    def for_source(self, source_relation: str) -> "MatchSet":
        """Correspondences originating from one source relation."""
        return MatchSet(c for c in self if c.source_relation == source_relation)

    def for_target(self, target_relation: str) -> "MatchSet":
        """Correspondences into one target relation."""
        return MatchSet(c for c in self if c.target_relation == target_relation)

    def best_per_target_attribute(
        self, source_relation: str, target_relation: str
    ) -> dict[str, Correspondence]:
        """For one source/target pair, the best correspondence per target attribute."""
        best: dict[str, Correspondence] = {}
        for correspondence in self:
            if (correspondence.source_relation != source_relation
                    or correspondence.target_relation != target_relation):
                continue
            current = best.get(correspondence.target_attribute)
            if current is None or correspondence.score > current.score:
                best[correspondence.target_attribute] = correspondence
        return best

    def source_relations(self) -> list[str]:
        """All source relations with at least one correspondence."""
        return sorted({c.source_relation for c in self})

    # -- knowledge base interaction ----------------------------------------------

    def assert_into(self, kb: KnowledgeBase, *, replace: bool = False) -> int:
        """Assert all correspondences as ``match`` facts.

        With ``replace`` the existing match facts for the affected
        source/target relation pairs are removed first (used when matching
        re-runs with better information).
        """
        if replace:
            pairs = {(c.source_relation, c.target_relation) for c in self}
            for source_relation, target_relation in pairs:
                for row in list(kb.facts(Predicates.MATCH)):
                    if row[0] == source_relation and row[2] == target_relation:
                        kb.retract_fact(Predicates.MATCH, *row)
        return sum(int(kb.assert_tuple(c.to_fact())) for c in self)

    @classmethod
    def from_kb(cls, kb: KnowledgeBase, *, target_relation: str | None = None) -> "MatchSet":
        """Load the current ``match`` facts from the knowledge base."""
        matches = cls()
        for row in kb.facts(Predicates.MATCH):
            source_relation, source_attribute, tgt_relation, target_attribute, score = row
            if target_relation is not None and tgt_relation != target_relation:
                continue
            matches.add(
                Correspondence(
                    source_relation, source_attribute, tgt_relation, target_attribute, float(score)
                )
            )
        return matches

    def __repr__(self) -> str:
        return f"MatchSet(correspondences={len(self._by_pair)})"
