"""Schema-level matching: attribute-name and type based correspondences.

This is the matcher that runs during automatic bootstrapping (demo step 1):
it only needs the source and target *schemas* (Table 1: "Schema Matching —
Src/Target Schemas"), so it can run before any instances or context data are
available. Scores combine name similarity with a type-compatibility factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.correspondence import Correspondence, MatchSet
from repro.matching.similarity import name_similarity
from repro.relational.schema import Schema
from repro.relational.types import DataType

__all__ = ["SchemaMatcherConfig", "SchemaMatcher"]


@dataclass(frozen=True)
class SchemaMatcherConfig:
    """Tuning knobs of the schema matcher."""

    #: Correspondences scoring below this are discarded.
    threshold: float = 0.5
    #: Weight of the name-similarity component (the rest is type compatibility).
    name_weight: float = 0.85
    #: Score multiplier applied when declared types are incompatible.
    type_mismatch_penalty: float = 0.6


class SchemaMatcher:
    """Produces attribute correspondences from schema metadata alone."""

    def __init__(self, config: SchemaMatcherConfig | None = None):
        self._config = config or SchemaMatcherConfig()

    @property
    def config(self) -> SchemaMatcherConfig:
        """The matcher configuration."""
        return self._config

    def match(self, source: Schema, target: Schema) -> MatchSet:
        """All correspondences between ``source`` and ``target`` above threshold."""
        matches = MatchSet()
        for source_attribute in source.attributes:
            for target_attribute in target.attributes:
                score = self.score(
                    source_attribute.name,
                    source_attribute.dtype,
                    target_attribute.name,
                    target_attribute.dtype,
                )
                if score >= self._config.threshold:
                    matches.add(
                        Correspondence(
                            source.name,
                            source_attribute.name,
                            target.name,
                            target_attribute.name,
                            round(score, 6),
                        )
                    )
        return matches

    def match_many(self, sources: list[Schema], target: Schema) -> MatchSet:
        """Match several source schemas against one target schema."""
        matches = MatchSet()
        for source in sources:
            matches = matches.merge(self.match(source, target))
        return matches

    def score(
        self, source_name: str, source_type: DataType, target_name: str, target_type: DataType
    ) -> float:
        """Score one attribute pair from names and declared types."""
        name_score = name_similarity(source_name, target_name)
        type_score = self._type_compatibility(source_type, target_type)
        weight = self._config.name_weight
        combined = weight * name_score + (1.0 - weight) * type_score
        if type_score == 0.0:
            combined *= self._config.type_mismatch_penalty
        return min(1.0, combined)

    @staticmethod
    def _type_compatibility(source_type: DataType, target_type: DataType) -> float:
        if source_type is DataType.ANY or target_type is DataType.ANY:
            return 0.5
        if source_type is target_type:
            return 1.0
        numeric = {DataType.INTEGER, DataType.FLOAT}
        if source_type in numeric and target_type in numeric:
            return 0.9
        return 0.0
