"""Instance-level matching: value-overlap based correspondences.

Table 1 of the paper: "Instance Matching — Src/Target Instances". Target
instances are rarely available before wrangling has produced anything, but
the *data context* provides instances associated with the target schema
(reference/master/example data). When a data context arrives, this matcher
becomes runnable and refines the purely name-based matches from
bootstrapping — which is precisely the improvement the paper attributes to
step 2 of the demonstration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.matching.correspondence import Correspondence, MatchSet
from repro.matching.similarity import jaccard_similarity, numeric_overlap
from repro.relational.table import Table
from repro.relational.types import is_null

__all__ = ["InstanceMatcherConfig", "InstanceMatcher"]


@dataclass(frozen=True)
class InstanceMatcherConfig:
    """Tuning knobs of the instance matcher."""

    #: Correspondences scoring below this are discarded.
    threshold: float = 0.3
    #: Maximum number of distinct values sampled per column.
    sample_size: int = 500
    #: Weight given to exact value overlap vs distributional overlap for
    #: numeric columns.
    overlap_weight: float = 0.7


class InstanceMatcher:
    """Produces correspondences by comparing column *contents*."""

    def __init__(self, config: InstanceMatcherConfig | None = None):
        self._config = config or InstanceMatcherConfig()

    @property
    def config(self) -> InstanceMatcherConfig:
        """The matcher configuration."""
        return self._config

    def match(
        self, source: Table, target_instances: Table, *, target_relation: str | None = None
    ) -> MatchSet:
        """Match ``source`` columns against columns of ``target_instances``.

        ``target_instances`` is typically a data-context table whose
        attributes are (a subset of) the target schema; ``target_relation``
        overrides the relation name recorded in the correspondences so that
        they refer to the *target schema* rather than the context table.
        """
        relation = target_relation or target_instances.name
        matches = MatchSet()
        for source_attribute in source.schema.attributes:
            source_values = self._sample(source.column(source_attribute.name))
            if not source_values:
                continue
            for target_attribute in target_instances.schema.attributes:
                target_values = self._sample(target_instances.column(target_attribute.name))
                if not target_values:
                    continue
                score = self.column_similarity(source_values, target_values)
                if score >= self._config.threshold:
                    matches.add(Correspondence(
                        source.name, source_attribute.name,
                        relation, target_attribute.name, round(score, 6)))
        return matches

    def column_similarity(
        self, source_values: Sequence[Any], target_values: Sequence[Any]
    ) -> float:
        """Similarity of two column samples.

        String columns use Jaccard overlap of normalised values; numeric
        columns blend exact overlap with range overlap (prices rarely repeat
        exactly but occupy the same range).
        """
        source_numeric = _is_numeric(source_values)
        target_numeric = _is_numeric(target_values)
        if source_numeric != target_numeric:
            return 0.0
        if source_numeric:
            exact = jaccard_similarity(source_values, target_values)
            distributional = numeric_overlap(
                [float(v) for v in source_values], [float(v) for v in target_values]
            )
            weight = self._config.overlap_weight
            return weight * exact + (1.0 - weight) * distributional
        return jaccard_similarity(
            {_normalise(v) for v in source_values},
            {_normalise(v) for v in target_values},
        )

    def _sample(self, values: Sequence[Any]) -> list[Any]:
        distinct = []
        seen = set()
        for value in values:
            if is_null(value):
                continue
            key = _normalise(value)
            if key in seen:
                continue
            seen.add(key)
            distinct.append(value)
            if len(distinct) >= self._config.sample_size:
                break
        return distinct


def _is_numeric(values: Sequence[Any]) -> bool:
    numeric = sum(1 for v in values if isinstance(v, (int, float)) and not isinstance(v, bool))
    return numeric > len(values) / 2 if values else False


def _normalise(value: Any) -> str:
    if isinstance(value, str):
        return value.strip().lower()
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
