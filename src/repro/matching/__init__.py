"""Schema and instance matching components."""

from repro.matching.correspondence import Correspondence, MatchSet
from repro.matching.instance_matching import InstanceMatcher, InstanceMatcherConfig
from repro.matching.schema_matching import SchemaMatcher, SchemaMatcherConfig
from repro.matching.similarity import (
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    name_similarity,
    ngram_similarity,
    ngrams,
    normalise_name,
    numeric_overlap,
    token_set_similarity,
)
from repro.matching.transducers import InstanceMatchingTransducer, SchemaMatchingTransducer

__all__ = [
    "Correspondence",
    "MatchSet",
    "SchemaMatcher",
    "SchemaMatcherConfig",
    "InstanceMatcher",
    "InstanceMatcherConfig",
    "SchemaMatchingTransducer",
    "InstanceMatchingTransducer",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "ngrams",
    "ngram_similarity",
    "jaccard_similarity",
    "dice_similarity",
    "cosine_similarity",
    "token_set_similarity",
    "normalise_name",
    "name_similarity",
    "numeric_overlap",
]
