"""Matching transducers (Table 1 rows "Schema Matching" / "Instance Matching").

- :class:`SchemaMatchingTransducer` needs source and target *schemas*.
- :class:`InstanceMatchingTransducer` needs source *instances* plus instances
  associated with the target schema — which arrive via the data context.

Both assert ``match`` facts; instance-level evidence is merged with (and can
override) the purely name-based scores, which is how providing a data
context improves the downstream mappings.
"""

from __future__ import annotations

from repro.core.facts import Predicates
from repro.core.knowledge_base import KnowledgeBase
from repro.core.transducer import Activity, Transducer, TransducerResult
from repro.matching.correspondence import MatchSet
from repro.matching.instance_matching import InstanceMatcher, InstanceMatcherConfig
from repro.matching.schema_matching import SchemaMatcher, SchemaMatcherConfig

__all__ = ["SchemaMatchingTransducer", "InstanceMatchingTransducer"]


class SchemaMatchingTransducer(Transducer):
    """Name/type-based matching; runnable as soon as both schemas are known."""

    name = "schema_matching"
    activity = Activity.MATCHING
    priority = 20
    input_dependencies = (
        "schema(S, source)",
        "schema(T, target)",
    )

    def __init__(self, config: SchemaMatcherConfig | None = None):
        super().__init__()
        self._matcher = SchemaMatcher(config)

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        sources = [
            kb.schema_of(name)
            for name in sorted(
                row[0] for row in kb.facts(Predicates.SCHEMA) if row[1] == Predicates.ROLE_SOURCE
            )
        ]
        targets = [kb.schema_of(name) for name in kb.target_relations()]
        matches = MatchSet()
        for target in targets:
            matches = matches.merge(self._matcher.match_many(sources, target))
        added = matches.assert_into(kb)
        return TransducerResult(
            facts_added=added,
            notes=f"{len(matches)} schema-level correspondences "
            f"({len(sources)} sources x {len(targets)} targets)",
            details={"correspondences": [str(c) for c in matches]},
        )


class InstanceMatchingTransducer(Transducer):
    """Value-overlap matching; runnable once target-side instances exist.

    Target-side instances come from the data context (reference, master or
    example data associated with the target schema), so this transducer's
    dependencies reference the ``data_context`` predicate — it stays dormant
    during bootstrapping and wakes up at demo step 2.
    """

    name = "instance_matching"
    activity = Activity.MATCHING
    priority = 10
    input_dependencies = (
        "dataset(S, source, N)",
        "data_context(C, K, T)",
    )

    def __init__(self, config: InstanceMatcherConfig | None = None):
        super().__init__()
        self._matcher = InstanceMatcher(config)

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        context_bindings = kb.facts(Predicates.DATA_CONTEXT)
        source_names = kb.source_relations()
        matches = MatchSet()
        compared = 0
        for context_name, _kind, target_relation in context_bindings:
            if not kb.has_table(context_name):
                continue
            context_table = kb.get_table(context_name)
            for source_name in source_names:
                source_table = kb.get_table(source_name)
                found = self._matcher.match(source_table, context_table,
                                            target_relation=target_relation)
                compared += 1
                # Only keep matches whose target attribute exists in the
                # target schema (context tables may carry extra attributes).
                target_schema = kb.schema_of(target_relation)
                for correspondence in found:
                    if correspondence.target_attribute in target_schema:
                        matches.add(correspondence)
        # Instance evidence refines the existing name-based scores: merge max.
        existing = MatchSet.from_kb(kb)
        merged = existing.merge(matches, combine="max")
        added = merged.assert_into(kb)
        return TransducerResult(
            facts_added=added,
            notes=f"{len(matches)} instance-level correspondences from "
            f"{compared} source/context comparisons",
            details={"correspondences": [str(c) for c in matches]},
        )
