"""Baselines the architecture is compared against."""

from repro.baselines.manual_etl import (
    ManualEtlConfig,
    ManualEtlPipeline,
    default_real_estate_etl,
)

__all__ = ["ManualEtlConfig", "ManualEtlPipeline", "default_real_estate_etl"]
