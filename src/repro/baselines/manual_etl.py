"""A static, manually configured ETL pipeline (the comparison baseline).

The paper positions VADA against "typical Extract-Transform-Load (ETL)
systems [12]" in which "skilled application developers are required to
configure individual components and to specify the dependencies between
them". This baseline is that alternative: every correspondence, join key
and transformation is spelled out by hand, nothing reacts to data context,
feedback or user priorities, and the pipeline runs as a fixed sequence.

The cost-effectiveness benchmark (DESIGN.md experiment E5) compares the
number of manual configuration actions and the resulting quality of this
baseline against the pay-as-you-go wrangler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.relational.operators import left_outer_join, rename_attributes, union_all
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import coerce_value, is_null

__all__ = ["ManualEtlConfig", "ManualEtlPipeline", "default_real_estate_etl"]


@dataclass(frozen=True)
class ManualEtlConfig:
    """The hand-written configuration of the static pipeline.

    Every entry of every mapping dictionary counts as one manual
    configuration action, as does every join specification — this is the
    work a developer must do up front, before seeing any output.
    """

    #: source relation → {source attribute → target attribute}.
    attribute_mappings: Mapping[str, Mapping[str, str]]
    #: Relations to union (after renaming) into the property feed.
    union_sources: tuple[str, ...]
    #: (enrichment relation, feed join attribute, enrichment join attribute).
    enrichment_joins: tuple[tuple[str, str, str], ...] = ()
    #: Target attributes, in output order.
    target_attributes: tuple[str, ...] = ()

    def manual_actions(self) -> int:
        """The number of configuration decisions the developer had to make."""
        actions = sum(len(mapping) for mapping in self.attribute_mappings.values())
        actions += len(self.union_sources)
        actions += 2 * len(self.enrichment_joins)  # the join key on each side
        actions += len(self.target_attributes)
        return actions


class ManualEtlPipeline:
    """Runs the fixed extract-transform-load sequence."""

    def __init__(self, config: ManualEtlConfig):
        self._config = config

    @property
    def config(self) -> ManualEtlConfig:
        """The pipeline configuration."""
        return self._config

    def manual_actions(self) -> int:
        """Manual configuration actions required by this pipeline."""
        return self._config.manual_actions()

    def run(
        self, sources: Mapping[str, Table], target_schema: Schema, *, result_name: str | None = None
    ) -> Table:
        """Execute the pipeline over ``sources`` and produce the target table."""
        config = self._config
        target_attributes = tuple(config.target_attributes) or target_schema.attribute_names

        # Transform: rename each union source onto the target vocabulary.
        renamed: list[Table] = []
        for source_name in config.union_sources:
            if source_name not in sources:
                continue
            source = sources[source_name]
            mapping = dict(config.attribute_mappings.get(source_name, {}))
            usable = {old: new for old, new in mapping.items() if old in source.schema}
            aligned = rename_attributes(source, usable)
            renamed.append(_project_onto(aligned, target_schema, target_attributes))
        if not renamed:
            return Table.empty(target_schema.rename(result_name or f"{target_schema.name}_etl"))

        # Load stage 1: union the property feeds.
        feed = renamed[0]
        for other in renamed[1:]:
            feed = union_all(feed, other)

        # Load stage 2: enrich by joining the open-government relations.
        for enrichment_name, feed_key, enrichment_key in config.enrichment_joins:
            if enrichment_name not in sources:
                continue
            enrichment = sources[enrichment_name]
            mapping = dict(config.attribute_mappings.get(enrichment_name, {}))
            usable = {old: new for old, new in mapping.items() if old in enrichment.schema}
            enrichment = rename_attributes(enrichment, usable)
            mapped_key = usable.get(enrichment_key, enrichment_key)
            if feed_key not in feed.schema or mapped_key not in enrichment.schema:
                continue
            joined = left_outer_join(feed, enrichment, [(feed_key, mapped_key)])
            feed = _merge_joined(joined, feed, target_schema, target_attributes)

        final = _project_onto(feed, target_schema, target_attributes)
        return final.rename(result_name or f"{target_schema.name}_etl")


def _project_onto(table: Table, target_schema: Schema, target_attributes: Sequence[str]) -> Table:
    """Project ``table`` onto the target attributes, padding missing ones with NULL."""
    rows = []
    for row in table.rows():
        values = []
        for attribute in target_attributes:
            value = row.get(attribute)
            if is_null(value):
                values.append(None)
            else:
                try:
                    values.append(coerce_value(value, target_schema.dtype(attribute)))
                except Exception:
                    values.append(None)
        rows.append(tuple(values))
    schema = target_schema.project(list(target_attributes), target_schema.name)
    return Table(schema, rows, coerce=False)


def _merge_joined(
    joined: Table, feed: Table, target_schema: Schema, target_attributes: Sequence[str]
) -> Table:
    """After a join, prefer newly joined values for attributes the feed lacked."""
    rows = []
    for row in joined.rows():
        values = []
        for attribute in target_attributes:
            value = row.get(attribute)
            if is_null(value):
                # The join may have carried the attribute under a prefixed
                # name when both sides had it; prefer any non-null variant.
                for name in row.schema.attribute_names:
                    if name.endswith(f".{attribute}") and not is_null(row[name]):
                        value = row[name]
                        break
            values.append(value)
        rows.append(tuple(values))
    schema = target_schema.project(list(target_attributes), target_schema.name)
    return Table(schema, rows)


def default_real_estate_etl() -> ManualEtlPipeline:
    """The hand-written ETL configuration for the real-estate scenario.

    This is what a developer would write after studying the three source
    schemas: explicit attribute-by-attribute mappings for Rightmove,
    Onthemarket and Deprivation, the union of the two property feeds, and
    the postcode join against Deprivation.
    """
    config = ManualEtlConfig(
        attribute_mappings={
            "rightmove": {
                "price": "price",
                "street": "street",
                "postcode": "postcode",
                "bedrooms": "bedrooms",
                "type": "type",
                "description": "description",
            },
            "onthemarket": {
                "asking_price": "price",
                "address_street": "street",
                "post_code": "postcode",
                "beds": "bedrooms",
                "property_type": "type",
                "summary": "description",
            },
            "deprivation": {
                "postcode": "postcode",
                "crime": "crimerank",
            },
        },
        union_sources=("rightmove", "onthemarket"),
        enrichment_joins=(("deprivation", "postcode", "postcode"),),
        target_attributes=(
            "type",
            "description",
            "street",
            "postcode",
            "bedrooms",
            "price",
            "crimerank",
        ),
    )
    return ManualEtlPipeline(config)
