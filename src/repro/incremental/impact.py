"""Impact analysis: from deltas to the exact dirty row keys per table.

The :class:`~repro.provenance.model.ProvenanceStore` records, for every
materialised tuple, which base tuples support it. :class:`ImpactIndex`
inverts that store — source ref → downstream row keys, repairing CFD →
rewritten cells — so a revision delta resolves to the precise set of rows it
can affect:

- a **source row** delta fans out through the inverted witness index
  (covering joined-in lookup rows and rows whose lineage was merged into a
  fusion survivor);
- a **rule (CFD)** removal fans out through the repair index to exactly the
  cells the retired CFD rewrote; additions are conservative;
- **fusion-cluster fan-out**: any dirty row drags the rest of its duplicate
  cluster along, because the cluster's fused survivor must be re-derived
  from all members.

The result is a :class:`DirtyMap` — per result relation, which row keys need
full re-materialisation, which only need re-derivation (repair / fusion /
feedback) from their cached base rows, and which driving rows are new.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.incremental.delta import (
    ChangeSet,
    FeedbackDelta,
    FusionPolicyDelta,
    MappingRevisionDelta,
    RuleDelta,
    SourceRowsDelta,
)
from repro.incremental.state import IncrementalState, RelationState
from repro.provenance.model import OPERATOR_REPAIR, ProvenanceStore
from repro.relational.keys import normalise_key

__all__ = ["DirtySet", "DirtyMap", "ImpactIndex", "cluster_map"]


@dataclass
class DirtySet:
    """What one result relation must re-derive for a change set."""

    relation: str
    #: Row keys whose driving source rows must be re-executed.
    rematerialise: set[str] = field(default_factory=set)
    #: Row keys to re-derive from their cached base rows (repair, fusion,
    #: feedback); always a superset of what re-materialisation touches once
    #: the engine merges the two.
    recompute: set[str] = field(default_factory=set)
    #: Driving source → new row indexes to execute and append.
    appended: dict[str, list[int]] = field(default_factory=dict)
    #: Driving sources whose whole segment must be rebuilt (row removals
    #: invalidate the positional ids of every later row).
    rebuild_sources: set[str] = field(default_factory=set)
    #: The relation needs a full rebuild (mapping revision, untracked rows).
    full_rebuild: bool = False
    reasons: list[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """Whether nothing in this relation is affected."""
        return not (
            self.rematerialise
            or self.recompute
            or self.appended
            or self.rebuild_sources
            or self.full_rebuild
        )

    def describe(self) -> dict[str, Any]:
        """A compact, JSON-friendly summary."""
        return {
            "relation": self.relation,
            "rematerialise": len(self.rematerialise),
            "recompute": len(self.recompute),
            "appended": {source: len(rows) for source, rows in self.appended.items()},
            "rebuild_sources": sorted(self.rebuild_sources),
            "full_rebuild": self.full_rebuild,
            "reasons": list(self.reasons),
        }


#: Result relation → its dirty set.
DirtyMap = dict[str, DirtySet]


def cluster_map(pairs: Iterable[tuple[str, str]]) -> dict[str, frozenset[str]]:
    """Union-find over key pairs: row key → its duplicate cluster (as a set).

    Only clustered keys appear; singletons are absent. This is the
    fusion-cluster fan-out structure: a dirty member dirties every key in
    ``clusters[key]``.
    """
    parent: dict[str, str] = {}

    def find(key: str) -> str:
        root = key
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    for left, right in pairs:
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            parent[right_root] = left_root
    members: dict[str, set[str]] = {}
    for key in parent:
        members.setdefault(find(key), set()).add(key)
    clusters: dict[str, frozenset[str]] = {}
    for group in members.values():
        if len(group) < 2:
            continue
        frozen = frozenset(group)
        for key in group:
            clusters[key] = frozen
    return clusters


class ImpactIndex:
    """Inverted provenance: source refs and CFDs → downstream row keys.

    The index is built lazily — feedback-only change sets never pay for the
    inversion — and covers the relations the incremental state tracks.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        state: IncrementalState,
        *,
        mappings: Mapping[str, Any] | None = None,
        catalog: Any = None,
    ):
        self._store = store
        self._state = state
        #: result relation → selected SchemaMapping (for source-delta routing).
        self._mappings = dict(mappings or {})
        self._catalog = catalog
        self._by_ref: dict[tuple[str, str], set[tuple[str, str]]] | None = None
        self._by_source: dict[str, set[tuple[str, str]]] | None = None
        self._by_cfd: dict[str, set[tuple[str, str]]] | None = None

    # -- inversion ------------------------------------------------------------

    def _build(self) -> None:
        if self._by_ref is not None:
            return
        by_ref: dict[tuple[str, str], set[tuple[str, str]]] = {}
        by_source: dict[str, set[tuple[str, str]]] = {}
        by_cfd: dict[str, set[tuple[str, str]]] = {}
        for relation in self._state.relations:
            for row_key, lineage in self._store.iter_tuples(relation):
                target = (relation, row_key)
                for witness in lineage.witnesses:
                    for ref in witness:
                        by_ref.setdefault((ref.relation, ref.row_id), set()).add(target)
                        by_source.setdefault(ref.relation, set()).add(target)
                for cell in lineage.cells.values():
                    if cell.operator != OPERATOR_REPAIR or not cell.detail:
                        continue
                    cfd_id = cell.detail.rsplit(":", 1)[0]
                    by_cfd.setdefault(cfd_id, set()).add(target)
        self._by_ref = by_ref
        self._by_source = by_source
        self._by_cfd = by_cfd

    def downstream_of_ref(self, relation: str, row_id: str) -> set[tuple[str, str]]:
        """(result relation, row key) pairs supported by one base tuple."""
        self._build()
        return set(self._by_ref.get((relation, row_id), ()))

    def downstream_of_source(self, relation: str) -> set[tuple[str, str]]:
        """(result relation, row key) pairs supported by any tuple of a source."""
        self._build()
        return set(self._by_source.get(relation, ()))

    def repaired_by(self, cfd_id: str) -> set[tuple[str, str]]:
        """(result relation, row key) pairs with a cell repaired by ``cfd_id``."""
        self._build()
        return set(self._by_cfd.get(cfd_id, ()))

    # -- resolution -----------------------------------------------------------

    def resolve(self, change_set: ChangeSet) -> DirtyMap:
        """Resolve a change set to dirty row keys per tracked relation."""
        dirty: DirtyMap = {}
        appended_indexes = self._appended_index_ranges(change_set)

        def dirty_set(relation: str) -> DirtySet:
            return dirty.setdefault(relation, DirtySet(relation=relation))

        for delta in change_set:
            if isinstance(delta, FeedbackDelta):
                self._resolve_feedback(delta, dirty_set)
            elif isinstance(delta, SourceRowsDelta):
                self._resolve_source(delta, dirty_set, appended_indexes)
            elif isinstance(delta, RuleDelta):
                self._resolve_rule(delta, dirty_set)
            elif isinstance(delta, FusionPolicyDelta):
                self._resolve_fusion(delta, dirty_set)
            elif isinstance(delta, MappingRevisionDelta):
                # A revised selection rebuilds its result relation wholesale.
                for relation in self._state.relations:
                    if relation.startswith(delta.target_relation):
                        entry = dirty_set(relation)
                        entry.full_rebuild = True
                        entry.reasons.append(f"mapping revised to {delta.mapping_id}")

        # Fusion-cluster fan-out: a dirty member dirties its whole cluster —
        # the surviving fused row must be re-derived from every member.
        for relation, entry in dirty.items():
            state = self._state.get(relation)
            if state is None:
                continue
            clusters = cluster_map(state.pairs)
            expanded: set[str] = set()
            for key in entry.recompute | entry.rematerialise:
                expanded |= clusters.get(key, frozenset())
            entry.recompute |= expanded
        return dirty

    # -- per-delta resolution --------------------------------------------------

    def _resolve_feedback(self, delta: FeedbackDelta, dirty_set) -> None:
        if not delta.changes_table:
            return  # positive feedback revises scores, not data
        if delta.feedback_id is not None and delta.feedback_id in self._state.seen_feedback:
            return  # table effects already materialised
        if self._state.get(delta.relation) is None:
            return  # untracked relation — the full pipeline ignores it too
        entry = dirty_set(delta.relation)
        entry.recompute.add(delta.row_key)
        entry.reasons.append(f"feedback on {delta.row_key}")

    def _appended_index_ranges(self, change_set: ChangeSet) -> dict[int, list[int]]:
        """Positional indexes of each append delta's rows (keyed by ``id``).

        Several appends to one source may ride one change set; their rows
        sit at the table's tail in delta order, so ranges are assigned back
        to front — the last delta owns the last rows, earlier deltas the
        rows before them.
        """
        ranges: dict[int, list[int]] = {}
        if self._catalog is None:
            return ranges
        claimed: dict[str, int] = {}
        for delta in reversed(change_set.source_deltas()):
            if not delta.appended or delta.relation not in self._catalog:
                continue
            end = len(self._catalog.get(delta.relation)) - claimed.get(delta.relation, 0)
            start = max(0, end - len(delta.appended))
            ranges[id(delta)] = list(range(start, end))
            claimed[delta.relation] = claimed.get(delta.relation, 0) + len(delta.appended)
        return ranges

    def _resolve_source(
        self,
        delta: SourceRowsDelta,
        dirty_set,
        appended_indexes: Mapping[int, list[int]],
    ) -> None:
        for relation, state in self._state.relations.items():
            mapping = self._mappings.get(relation)
            if mapping is None:
                entry = dirty_set(relation)
                entry.full_rebuild = True
                entry.reasons.append(f"source {delta.relation} changed, mapping unknown")
                continue
            for leaf in mapping.leaf_mappings():
                if leaf.sources[0] == delta.relation:
                    self._resolve_driving_source(delta, dirty_set(relation), appended_indexes)
                elif delta.relation in leaf.sources[1:]:
                    self._resolve_lookup_source(delta, leaf, state, dirty_set(relation))

    def _resolve_driving_source(
        self,
        delta: SourceRowsDelta,
        entry: DirtySet,
        appended_indexes: Mapping[int, list[int]],
    ) -> None:
        if delta.removed_indexes:
            # Positional ids after the removal point all shift: rebuild the
            # source's whole segment (other sources stay untouched).
            entry.rebuild_sources.add(delta.relation)
            entry.reasons.append(f"rows removed from driving source {delta.relation}")
        if delta.appended:
            rows = entry.appended.setdefault(delta.relation, [])
            rows.extend(appended_indexes.get(id(delta), ()))
            entry.reasons.append(f"{len(delta.appended)} rows appended to {delta.relation}")

    def _resolve_lookup_source(
        self, delta: SourceRowsDelta, leaf, state: RelationState, entry: DirtySet
    ) -> None:
        if delta.removed_indexes:
            # Conservative: every row of this leaf may have joined the
            # removed rows (and unjoined rows may now match a different one).
            prefix = f"{leaf.sources[0]}:"
            stale = {key for key in state.order if key.startswith(prefix)}
            entry.rematerialise |= stale
            entry.reasons.append(f"rows removed from lookup source {delta.relation}")
            return
        if not delta.appended or self._catalog is None:
            return
        # An appended lookup row only changes driving rows it newly matches:
        # existing matches keep winning (first-match semantics), so only
        # driving rows whose join key equals a new row's key are affected.
        join_keys = self._appended_join_keys(delta, leaf)
        if join_keys is None:
            entry.rematerialise |= {
                key for key in state.order if key.startswith(f"{leaf.sources[0]}:")
            }
            entry.reasons.append(f"lookup source {delta.relation} changed (no join key)")
            return
        driving_attr = join_keys[0]
        new_keys = join_keys[1]
        driving = self._catalog.get(leaf.sources[0])
        if driving_attr not in driving.schema:
            return
        position = driving.schema.position(driving_attr)
        for index, values in enumerate(driving.tuples()):
            if normalise_key(values[position]) in new_keys:
                entry.rematerialise.add(f"{leaf.sources[0]}:{index}")
        entry.reasons.append(
            f"{len(delta.appended)} rows appended to lookup source {delta.relation}"
        )

    def _appended_join_keys(self, delta: SourceRowsDelta, leaf):
        """(driving join attribute, normalised appended key values) or None."""
        driving_attr = other_attr = None
        for condition in leaf.join_conditions:
            if (
                condition.left_relation == leaf.sources[0]
                and condition.right_relation == delta.relation
            ):
                driving_attr, other_attr = condition.left_attribute, condition.right_attribute
            elif (
                condition.right_relation == leaf.sources[0]
                and condition.left_relation == delta.relation
            ):
                driving_attr, other_attr = condition.right_attribute, condition.left_attribute
        if driving_attr is None or other_attr is None:
            return None
        lookup = self._catalog.get(delta.relation)
        if other_attr not in lookup.schema:
            return None
        position = lookup.schema.position(other_attr)
        keys = {normalise_key(row[position]) for row in delta.appended if position < len(row)}
        keys.discard(None)
        return driving_attr, keys

    def _resolve_rule(self, delta: RuleDelta, dirty_set) -> None:
        if delta.change == "removed":
            for cfd_id in delta.cfd_ids:
                for relation, row_key in self.repaired_by(cfd_id):
                    entry = dirty_set(relation)
                    entry.recompute.add(row_key)
                    entry.reasons.append(f"cfd {cfd_id} removed")
            return
        # Added / revised rules may newly apply anywhere: conservative.
        for relation, state in self._state.relations.items():
            entry = dirty_set(relation)
            entry.recompute |= set(state.order)
            entry.reasons.append(f"cfds {delta.change}: {', '.join(delta.cfd_ids)}")

    def _resolve_fusion(self, delta: FusionPolicyDelta, dirty_set) -> None:
        for relation, state in self._state.relations.items():
            if delta.relation not in (None, relation):
                continue
            clustered = cluster_map(state.pairs)
            if not clustered:
                continue
            entry = dirty_set(relation)
            entry.recompute |= set(clustered)
            entry.reasons.append("fusion policy revised")
