"""Impact analysis: from deltas to the exact dirty row keys per table.

The :class:`~repro.provenance.model.ProvenanceStore` records, for every
materialised tuple, which base tuples support it. :class:`ImpactIndex`
inverts that store — source ref → downstream row keys, repairing CFD →
rewritten cells — so a revision delta resolves to the precise set of rows it
can affect:

- a **source row** delta fans out through the inverted witness index
  (covering joined-in lookup rows and rows whose lineage was merged into a
  fusion survivor);
- a **rule (CFD)** removal fans out through the repair index to exactly the
  cells the retired CFD rewrote; additions are conservative;
- **fusion-cluster fan-out**: any dirty row drags the rest of its duplicate
  cluster along, because the cluster's fused survivor must be re-derived
  from all members.

The result is a :class:`DirtyMap` — per result relation, which row keys need
full re-materialisation, which only need re-derivation (repair / fusion /
feedback) from their cached base rows, and which driving rows are new.

The index is *persistent*: it lives in the session's
:class:`~repro.incremental.state.IncrementalState` and is inverted at most
once per materialisation. After a patch, :meth:`apply_change_set` re-reads
only the touched rows' lineage and splices their entries into the inverted
witness/repair maps in place (the cached duplicate-cluster maps refresh
likewise), so repeated revisions never pay for re-inverting the whole
provenance store — ``builds`` counts the full inversions and stays at one
across any number of patches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.incremental.delta import (
    ChangeSet,
    FeedbackDelta,
    FusionPolicyDelta,
    MappingRevisionDelta,
    RuleDelta,
    SourceRowsDelta,
)
from repro.incremental.state import IncrementalState, RelationState
from repro.provenance.model import OPERATOR_REPAIR, ProvenanceStore, TupleLineage
from repro.relational.keys import normalise_key

__all__ = ["DirtySet", "DirtyMap", "ImpactIndex", "cluster_map"]


@dataclass
class DirtySet:
    """What one result relation must re-derive for a change set."""

    relation: str
    #: Row keys whose driving source rows must be re-executed.
    rematerialise: set[str] = field(default_factory=set)
    #: Row keys to re-derive from their cached base rows (repair, fusion,
    #: feedback); always a superset of what re-materialisation touches once
    #: the engine merges the two.
    recompute: set[str] = field(default_factory=set)
    #: Driving source → new row indexes to execute and append.
    appended: dict[str, list[int]] = field(default_factory=dict)
    #: Driving sources whose whole segment must be rebuilt (row removals
    #: invalidate the positional ids of every later row).
    rebuild_sources: set[str] = field(default_factory=set)
    #: The relation needs a full rebuild (mapping revision, untracked rows).
    full_rebuild: bool = False
    reasons: list[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """Whether nothing in this relation is affected."""
        return not (
            self.rematerialise
            or self.recompute
            or self.appended
            or self.rebuild_sources
            or self.full_rebuild
        )

    def describe(self) -> dict[str, Any]:
        """A compact, JSON-friendly summary."""
        return {
            "relation": self.relation,
            "rematerialise": len(self.rematerialise),
            "recompute": len(self.recompute),
            "appended": {source: len(rows) for source, rows in self.appended.items()},
            "rebuild_sources": sorted(self.rebuild_sources),
            "full_rebuild": self.full_rebuild,
            "reasons": list(self.reasons),
        }


#: Result relation → its dirty set.
DirtyMap = dict[str, DirtySet]


def cluster_map(pairs: Iterable[tuple[str, str]]) -> dict[str, frozenset[str]]:
    """Union-find over key pairs: row key → its duplicate cluster (as a set).

    Only clustered keys appear; singletons are absent. This is the
    fusion-cluster fan-out structure: a dirty member dirties every key in
    ``clusters[key]``.
    """
    parent: dict[str, str] = {}

    def find(key: str) -> str:
        root = key
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    for left, right in pairs:
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            parent[right_root] = left_root
    members: dict[str, set[str]] = {}
    for key in parent:
        members.setdefault(find(key), set()).add(key)
    clusters: dict[str, frozenset[str]] = {}
    for group in members.values():
        if len(group) < 2:
            continue
        frozen = frozenset(group)
        for key in group:
            clusters[key] = frozen
    return clusters


class ImpactIndex:
    """Inverted provenance: source refs and CFDs → downstream row keys.

    The index is built lazily — feedback-only change sets never pay for the
    inversion — and covers the relations the incremental state tracks. Once
    built it is maintained in place: :meth:`apply_change_set` (or the
    finer-grained :meth:`update_rows`) re-indexes exactly the rows a patch
    touched.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        state: IncrementalState,
        *,
        mappings: Mapping[str, Any] | None = None,
        catalog: Any = None,
    ):
        self._store = store
        self._state = state
        #: result relation → selected SchemaMapping (for source-delta routing).
        self._mappings = dict(mappings or {})
        self._catalog = catalog
        #: (source relation, row id) → downstream (relation, row key) targets.
        self._by_ref: dict[tuple[str, str], set[tuple[str, str]]] | None = None
        #: source relation → target → number of distinct supporting refs.
        self._by_source: dict[str, dict[tuple[str, str], int]] | None = None
        #: repairing cfd id → targets with a cell it rewrote.
        self._by_cfd: dict[str, set[tuple[str, str]]] | None = None
        #: target → (refs, cfd ids) currently indexed, for in-place removal.
        self._entries: dict[tuple[str, str], tuple[frozenset, frozenset]] = {}
        #: relation → cached duplicate-cluster map over the snapshot's pairs.
        self._clusters: dict[str, dict[str, frozenset[str]]] = {}
        #: Full inversions performed (stays at 1 across any number of patches).
        self.builds = 0

    @property
    def store(self) -> ProvenanceStore:
        """The provenance store this index inverts."""
        return self._store

    def refresh(
        self, *, mappings: Mapping[str, Any] | None = None, catalog: Any = None
    ) -> "ImpactIndex":
        """Update the routing context (selected mappings, catalog) in place.

        The inverted maps do not depend on either, so refreshing never
        invalidates them — this is what lets one index serve every phase of
        a patch (pre- and post-revision mappings) without rebuilding.
        """
        if mappings is not None:
            self._mappings = dict(mappings)
        if catalog is not None:
            self._catalog = catalog
        return self

    # -- inversion ------------------------------------------------------------

    def _build(self) -> None:
        if self._by_ref is not None:
            return
        self.builds += 1
        self._by_ref = {}
        self._by_source = {}
        self._by_cfd = {}
        self._entries = {}
        for relation in self._state.relations:
            for row_key, lineage in self._store.iter_tuples(relation):
                self._index_lineage(relation, row_key, lineage)

    @staticmethod
    def _lineage_entries(lineage: TupleLineage) -> tuple[frozenset, frozenset]:
        """(supporting refs, repairing cfd ids) of one tuple's lineage."""
        refs = frozenset(ref for witness in lineage.witnesses for ref in witness)
        cfd_ids = set()
        for cell in lineage.cells.values():
            if cell.operator != OPERATOR_REPAIR or not cell.detail:
                continue
            cfd_ids.add(cell.detail.rsplit(":", 1)[0])
        return refs, frozenset(cfd_ids)

    def _index_lineage(self, relation: str, row_key: str, lineage: TupleLineage) -> None:
        target = (relation, row_key)
        refs, cfd_ids = self._lineage_entries(lineage)
        self._entries[target] = (refs, cfd_ids)
        for ref in refs:
            self._by_ref.setdefault((ref.relation, ref.row_id), set()).add(target)
            by_source = self._by_source.setdefault(ref.relation, {})
            by_source[target] = by_source.get(target, 0) + 1
        for cfd_id in cfd_ids:
            self._by_cfd.setdefault(cfd_id, set()).add(target)

    def _deindex(self, target: tuple[str, str]) -> None:
        refs, cfd_ids = self._entries.pop(target, (frozenset(), frozenset()))
        for ref in refs:
            bucket = self._by_ref.get((ref.relation, ref.row_id))
            if bucket is not None:
                bucket.discard(target)
                if not bucket:
                    del self._by_ref[(ref.relation, ref.row_id)]
            by_source = self._by_source.get(ref.relation)
            if by_source is not None:
                remaining = by_source.get(target, 0) - 1
                if remaining > 0:
                    by_source[target] = remaining
                else:
                    by_source.pop(target, None)
                    if not by_source:
                        del self._by_source[ref.relation]
        for cfd_id in cfd_ids:
            bucket = self._by_cfd.get(cfd_id)
            if bucket is not None:
                bucket.discard(target)
                if not bucket:
                    del self._by_cfd[cfd_id]

    # -- in-place maintenance --------------------------------------------------

    def update_rows(self, relation: str, row_keys: Iterable[str]) -> int:
        """Re-index the given rows from their current lineage, in place.

        Rows whose lineage disappeared (dropped tuples) leave the index.
        A no-op while the index has never been built — there is nothing to
        maintain, and the eventual first build reads the patched store.
        Returns how many rows were re-indexed.
        """
        if self._by_ref is None:
            return 0
        updated = 0
        for row_key in row_keys:
            target = (relation, str(row_key))
            self._deindex(target)
            lineage = self._store.tuple_lineage(relation, str(row_key))
            if lineage is not None:
                self._index_lineage(relation, str(row_key), lineage)
            updated += 1
        return updated

    def note_pairs_changed(self, relation: str) -> None:
        """Invalidate the cached cluster map after a pair re-score."""
        self._clusters.pop(relation, None)

    def apply_change_set(
        self, change_set: ChangeSet, touched: Mapping[str, Iterable[str]] | None = None
    ) -> int:
        """Bring the index up to date after a patch, without re-inverting.

        ``touched`` names, per result relation, every row key whose lineage
        the patch may have rewritten (re-derived, fused, repaired, dropped
        or appended rows — the engine collects them as it patches); the
        witness/repair maps are updated row-by-row and the cluster caches
        of those relations are refreshed. Without it, every tracked
        relation the change set can affect has all of its rows re-indexed
        from current lineage — conservative, but still no full inversion.
        """
        if touched is None:
            touched = {
                relation: list(state.order)
                for relation, state in self._state.relations.items()
                if change_set.restrict_to_table(relation)
            }
        updated = 0
        for relation, row_keys in touched.items():
            updated += self.update_rows(relation, row_keys)
            self.note_pairs_changed(relation)
        return updated

    # -- lookups --------------------------------------------------------------

    def downstream_of_ref(self, relation: str, row_id: str) -> set[tuple[str, str]]:
        """(result relation, row key) pairs supported by one base tuple."""
        self._build()
        return set(self._by_ref.get((relation, row_id), ()))

    def downstream_of_source(self, relation: str) -> set[tuple[str, str]]:
        """(result relation, row key) pairs supported by any tuple of a source."""
        self._build()
        return set(self._by_source.get(relation, ()))

    def repaired_by(self, cfd_id: str) -> set[tuple[str, str]]:
        """(result relation, row key) pairs with a cell repaired by ``cfd_id``."""
        self._build()
        return set(self._by_cfd.get(cfd_id, ()))

    def clusters(self, relation: str) -> dict[str, frozenset[str]]:
        """The duplicate-cluster map of one relation, cached across revisions."""
        cached = self._clusters.get(relation)
        if cached is None:
            state = self._state.get(relation)
            cached = cluster_map(state.pairs) if state is not None else {}
            self._clusters[relation] = cached
        return cached

    # -- resolution -----------------------------------------------------------

    def resolve(self, change_set: ChangeSet) -> DirtyMap:
        """Resolve a change set to dirty row keys per tracked relation."""
        dirty: DirtyMap = {}
        appended_indexes = self._appended_index_ranges(change_set)

        def dirty_set(relation: str) -> DirtySet:
            return dirty.setdefault(relation, DirtySet(relation=relation))

        for delta in change_set:
            if isinstance(delta, FeedbackDelta):
                self._resolve_feedback(delta, dirty_set)
            elif isinstance(delta, SourceRowsDelta):
                self._resolve_source(delta, dirty_set, appended_indexes)
            elif isinstance(delta, RuleDelta):
                self._resolve_rule(delta, dirty_set)
            elif isinstance(delta, FusionPolicyDelta):
                self._resolve_fusion(delta, dirty_set)
            elif isinstance(delta, MappingRevisionDelta):
                # A revised selection rebuilds its result relation wholesale.
                for relation in self._state.relations:
                    if relation.startswith(delta.target_relation):
                        entry = dirty_set(relation)
                        entry.full_rebuild = True
                        entry.reasons.append(f"mapping revised to {delta.mapping_id}")

        # Fusion-cluster fan-out: a dirty member dirties its whole cluster —
        # the surviving fused row must be re-derived from every member.
        for relation, entry in dirty.items():
            if self._state.get(relation) is None:
                continue
            clusters = self.clusters(relation)
            expanded: set[str] = set()
            for key in entry.recompute | entry.rematerialise:
                expanded |= clusters.get(key, frozenset())
            entry.recompute |= expanded
        return dirty

    # -- per-delta resolution --------------------------------------------------

    def _resolve_feedback(self, delta: FeedbackDelta, dirty_set) -> None:
        if not delta.changes_table:
            return  # positive feedback revises scores, not data
        if delta.feedback_id is not None and delta.feedback_id in self._state.seen_feedback:
            return  # table effects already materialised
        if self._state.get(delta.relation) is None:
            return  # untracked relation — the full pipeline ignores it too
        entry = dirty_set(delta.relation)
        entry.recompute.add(delta.row_key)
        entry.reasons.append(f"feedback on {delta.row_key}")

    def _appended_index_ranges(self, change_set: ChangeSet) -> dict[int, list[int]]:
        """Positional indexes of each append delta's rows (keyed by ``id``).

        Several appends to one source may ride one change set; their rows
        sit at the table's tail in delta order, so ranges are assigned back
        to front — the last delta owns the last rows, earlier deltas the
        rows before them.
        """
        ranges: dict[int, list[int]] = {}
        if self._catalog is None:
            return ranges
        claimed: dict[str, int] = {}
        for delta in reversed(change_set.source_deltas()):
            if not delta.appended or delta.relation not in self._catalog:
                continue
            end = len(self._catalog.get(delta.relation)) - claimed.get(delta.relation, 0)
            start = max(0, end - len(delta.appended))
            ranges[id(delta)] = list(range(start, end))
            claimed[delta.relation] = claimed.get(delta.relation, 0) + len(delta.appended)
        return ranges

    def _resolve_source(
        self,
        delta: SourceRowsDelta,
        dirty_set,
        appended_indexes: Mapping[int, list[int]],
    ) -> None:
        for relation, state in self._state.relations.items():
            mapping = self._mappings.get(relation)
            if mapping is None:
                entry = dirty_set(relation)
                entry.full_rebuild = True
                entry.reasons.append(f"source {delta.relation} changed, mapping unknown")
                continue
            for leaf in mapping.leaf_mappings():
                if leaf.sources[0] == delta.relation:
                    self._resolve_driving_source(delta, dirty_set(relation), appended_indexes)
                elif delta.relation in leaf.sources[1:]:
                    self._resolve_lookup_source(delta, leaf, state, dirty_set(relation))

    def _resolve_driving_source(
        self,
        delta: SourceRowsDelta,
        entry: DirtySet,
        appended_indexes: Mapping[int, list[int]],
    ) -> None:
        if delta.removed_indexes:
            # Positional ids after the removal point all shift: rebuild the
            # source's whole segment (other sources stay untouched).
            entry.rebuild_sources.add(delta.relation)
            entry.reasons.append(f"rows removed from driving source {delta.relation}")
        if delta.appended:
            rows = entry.appended.setdefault(delta.relation, [])
            rows.extend(appended_indexes.get(id(delta), ()))
            entry.reasons.append(f"{len(delta.appended)} rows appended to {delta.relation}")

    def _resolve_lookup_source(
        self, delta: SourceRowsDelta, leaf, state: RelationState, entry: DirtySet
    ) -> None:
        if delta.removed_indexes:
            # Conservative: every row of this leaf may have joined the
            # removed rows (and unjoined rows may now match a different one).
            prefix = f"{leaf.sources[0]}:"
            stale = {key for key in state.order if key.startswith(prefix)}
            entry.rematerialise |= stale
            entry.reasons.append(f"rows removed from lookup source {delta.relation}")
            return
        if not delta.appended or self._catalog is None:
            return
        # An appended lookup row only changes driving rows it newly matches:
        # existing matches keep winning (first-match semantics), so only
        # driving rows whose join key equals a new row's key are affected.
        join_keys = self._appended_join_keys(delta, leaf)
        if join_keys is None:
            entry.rematerialise |= {
                key for key in state.order if key.startswith(f"{leaf.sources[0]}:")
            }
            entry.reasons.append(f"lookup source {delta.relation} changed (no join key)")
            return
        driving_attr = join_keys[0]
        new_keys = join_keys[1]
        driving = self._catalog.get(leaf.sources[0])
        if driving_attr not in driving.schema:
            return
        position = driving.schema.position(driving_attr)
        for index, values in enumerate(driving.tuples()):
            if normalise_key(values[position]) in new_keys:
                entry.rematerialise.add(f"{leaf.sources[0]}:{index}")
        entry.reasons.append(
            f"{len(delta.appended)} rows appended to lookup source {delta.relation}"
        )

    def _appended_join_keys(self, delta: SourceRowsDelta, leaf):
        """(driving join attribute, normalised appended key values) or None."""
        driving_attr = other_attr = None
        for condition in leaf.join_conditions:
            if (
                condition.left_relation == leaf.sources[0]
                and condition.right_relation == delta.relation
            ):
                driving_attr, other_attr = condition.left_attribute, condition.right_attribute
            elif (
                condition.right_relation == leaf.sources[0]
                and condition.left_relation == delta.relation
            ):
                driving_attr, other_attr = condition.right_attribute, condition.left_attribute
        if driving_attr is None or other_attr is None:
            return None
        lookup = self._catalog.get(delta.relation)
        if other_attr not in lookup.schema:
            return None
        position = lookup.schema.position(other_attr)
        keys = {normalise_key(row[position]) for row in delta.appended if position < len(row)}
        keys.discard(None)
        return driving_attr, keys

    def _resolve_rule(self, delta: RuleDelta, dirty_set) -> None:
        if delta.change == "removed":
            for cfd_id in delta.cfd_ids:
                for relation, row_key in self.repaired_by(cfd_id):
                    entry = dirty_set(relation)
                    entry.recompute.add(row_key)
                    entry.reasons.append(f"cfd {cfd_id} removed")
            return
        # Added / revised rules may newly apply anywhere: conservative.
        for relation, state in self._state.relations.items():
            entry = dirty_set(relation)
            entry.recompute |= set(state.order)
            entry.reasons.append(f"cfds {delta.change}: {', '.join(delta.cfd_ids)}")

    def _resolve_fusion(self, delta: FusionPolicyDelta, dirty_set) -> None:
        for relation in self._state.relations:
            if delta.relation not in (None, relation):
                continue
            clustered = self.clusters(relation)
            if not clustered:
                continue
            entry = dirty_set(relation)
            entry.recompute |= set(clustered)
            entry.reasons.append("fusion policy revised")
