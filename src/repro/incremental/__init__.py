"""Incremental re-wrangling: lineage-driven delta re-materialisation.

The pay-as-you-go feedback loop is only cheap if iterating is cheap. This
package turns a feedback-driven revision into a typed change set
(:mod:`~repro.incremental.delta`), resolves it through the inverted
why-provenance to the exact dirty rows (:mod:`~repro.incremental.impact`),
and patches the materialised results, the provenance store and the derived
facts in place instead of re-running the whole pipeline
(:mod:`~repro.incremental.rewrangle`). Equality with the full pipeline is a
checked contract (:mod:`~repro.incremental.validate`).

The engine and validation modules are imported lazily: the pipeline
transducers import :mod:`~repro.incremental.state` at module load, and an
eager engine import here would close that loop during bootstrap.
"""

from repro.incremental.delta import (
    ChangeSet,
    FeedbackDelta,
    FusionPolicyDelta,
    MappingRevisionDelta,
    RuleDelta,
    SourceRowsDelta,
)
from repro.incremental.impact import DirtySet, ImpactIndex, cluster_map
from repro.incremental.state import (
    INCREMENTAL_STATE_ARTIFACT_KEY,
    IncrementalState,
    RelationState,
    incremental_state,
    mapping_source_volumes,
)

__all__ = [
    "ChangeSet",
    "FeedbackDelta",
    "SourceRowsDelta",
    "RuleDelta",
    "FusionPolicyDelta",
    "MappingRevisionDelta",
    "DirtySet",
    "ImpactIndex",
    "cluster_map",
    "IncrementalOutcome",
    "IncrementalWrangler",
    "IncrementalState",
    "RelationState",
    "INCREMENTAL_STATE_ARTIFACT_KEY",
    "incremental_state",
    "mapping_source_volumes",
    "ValidationReport",
    "check_incremental",
]

_LAZY = {
    "IncrementalOutcome": "repro.incremental.rewrangle",
    "IncrementalWrangler": "repro.incremental.rewrangle",
    "ValidationReport": "repro.incremental.validate",
    "check_incremental": "repro.incremental.validate",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
