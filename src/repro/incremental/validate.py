"""Validation: incremental re-wrangling must equal the full pipeline.

The incremental engine is an optimisation, not a semantics change. This
module checks exactly that, the way the CQA literature frames incremental
repair correctness: run the same scenario twice — one session applying each
feedback round through :meth:`Wrangler.apply_feedback(incremental=True)
<repro.wrangler.pipeline.Wrangler.apply_feedback>`, one through the full
orchestrated re-run — and assert after every round that the materialised
result tables are row-for-row equal (same rows, same order, same values),
the same mapping is selected, and the revised match scores agree.

Used three ways:

- as a library (:func:`check_incremental`) by the property-based tests;
- by ``benchmarks/test_bench_incremental.py``, whose speedup claim is only
  meaningful if the cheap path computes the same thing;
- as a CLI::

      PYTHONPATH=src python -m repro.incremental.validate --check \
          --family product_catalog --entities 2000 --rounds 3 --budget 20
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.facts import Predicates
from repro.feedback.annotations import simulate_feedback
from repro.scenarios.base import Scenario
from repro.scenarios.synth import SynthConfig, generate_synthetic
from repro.wrangler.config import WranglerConfig

__all__ = ["RoundCheck", "ValidationReport", "check_incremental", "check_restored", "main"]


@dataclass
class RoundCheck:
    """The comparison outcome of one feedback round."""

    round: int
    annotations: int
    rows_incremental: int
    rows_full: int
    tables_equal: bool
    selection_equal: bool
    matches_equal: bool
    #: Whether the patched metric statistics finalise to exactly the report
    #: a full recomputation over the current tables produces (both sessions).
    metrics_equal: bool = True
    #: Whether the incremental engine patched (False → it fell back).
    patched: bool = False
    fallback_reason: str = ""
    seconds_incremental: float = 0.0
    seconds_full: float = 0.0
    mismatch: str = ""

    @property
    def ok(self) -> bool:
        """Equality held for this round (patched or not)."""
        return (
            self.tables_equal
            and self.selection_equal
            and self.matches_equal
            and self.metrics_equal
        )


@dataclass
class ValidationReport:
    """Outcome of one incremental-vs-full validation run."""

    scenario: str
    rounds: list[RoundCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every round's incremental output equalled the full re-run's."""
        return all(check.ok for check in self.rounds)

    @property
    def patched_rounds(self) -> int:
        """How many rounds the engine actually patched (vs fell back)."""
        return sum(1 for check in self.rounds if check.patched)

    def speedup(self) -> float:
        """Wall-clock full/incremental ratio across all rounds."""
        incremental = sum(check.seconds_incremental for check in self.rounds)
        full = sum(check.seconds_full for check in self.rounds)
        return full / max(incremental, 1e-9)

    def describe(self) -> dict[str, Any]:
        """A compact, JSON-friendly summary."""
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "rounds": len(self.rounds),
            "patched_rounds": self.patched_rounds,
            "speedup": round(self.speedup(), 2),
            "failures": [
                {"round": check.round, "mismatch": check.mismatch}
                for check in self.rounds
                if not check.ok
            ],
        }


def _prepare(scenario: Scenario, config: WranglerConfig):
    """One session wrangled through bootstrap + data context."""
    # Imported lazily: the wrangler pipeline imports this package's engine,
    # and a module-level import back into the pipeline would be circular.
    from repro.wrangler.pipeline import Wrangler

    wrangler = Wrangler(config=config)
    scenario.install(wrangler)
    wrangler.run("bootstrap", evaluate=False)
    if scenario.reference is not None:
        wrangler.add_reference_data(scenario.reference)
    if scenario.master is not None:
        wrangler.add_master_data(scenario.master)
    if scenario.reference is not None or scenario.master is not None:
        wrangler.run("data_context", evaluate=False)
    return wrangler


def _compare_reports(left, right, where: str) -> str:
    """Empty string when two quality reports are exactly equal."""
    if left is None or right is None:
        if left is right:
            return ""
        return f"{where}: one report is missing"
    if left.as_dict() != right.as_dict():
        return f"{where}: criteria differ: {left.as_dict()} vs {right.as_dict()}"
    if left.attribute_completeness != right.attribute_completeness:
        return f"{where}: per-attribute completeness differs"
    if left.row_count != right.row_count:
        return f"{where}: row counts differ: {left.row_count} vs {right.row_count}"
    return ""


def _compare_metrics(incremental_session, full_session) -> str:
    """The incremental-metrics equality contract, checked three ways.

    The incremental session's maintained statistics must finalise to the
    same report as a forced full recomputation over its own result — and
    both must equal the full session's recomputation, so the maintained
    numbers cannot silently drift from what a from-scratch pipeline knows.
    """
    fast = incremental_session.evaluate()
    slow = incremental_session.evaluate(use_stats=False)
    full = full_session.evaluate(use_stats=False)
    mismatch = _compare_reports(fast, slow, "incremental stats vs rescan")
    if mismatch:
        return mismatch
    return _compare_reports(slow, full, "incremental vs full session")


def _compare_tables(left, right) -> str:
    """Empty string when equal, else a description of the first difference."""
    if left is None or right is None:
        if left is right:
            return ""
        return "one session has no result table"
    if list(left.schema.attribute_names) != list(right.schema.attribute_names):
        return (
            f"schemas differ: {list(left.schema.attribute_names)} "
            f"vs {list(right.schema.attribute_names)}"
        )
    left_rows = left.tuples()
    right_rows = right.tuples()
    if len(left_rows) != len(right_rows):
        return f"row counts differ: {len(left_rows)} vs {len(right_rows)}"
    for position, (a, b) in enumerate(zip(left_rows, right_rows)):
        if a != b:
            return f"row {position} differs: {a!r} vs {b!r}"
    return ""


def check_incremental(
    scenario: Scenario | SynthConfig | None = None,
    *,
    rounds: int = 3,
    budget: int = 10,
    seed: int = 0,
    wrangler_config: WranglerConfig | None = None,
    ground_truth_key: Sequence[str] | None = None,
) -> ValidationReport:
    """Run ``rounds`` identical feedback rounds through both paths and compare.

    Each round simulates a user annotating ``budget`` cells of the *full*
    session's current result against ground truth, then asserts the same
    annotations into both sessions. Equality must hold whether the
    incremental engine patched or fell back — the fallback is part of the
    contract.
    """
    if scenario is None:
        scenario = SynthConfig()
    if isinstance(scenario, SynthConfig):
        scenario = generate_synthetic(scenario)
    config = wrangler_config or WranglerConfig()
    key = tuple(ground_truth_key or scenario.evaluation_key)

    incremental_session = _prepare(scenario, config)
    full_session = _prepare(scenario, config)
    report = ValidationReport(scenario=scenario.name)

    for round_number in range(1, rounds + 1):
        reference_table = full_session.result()
        if reference_table is None:
            break
        annotations = simulate_feedback(
            reference_table,
            scenario.ground_truth,
            key,
            budget=budget,
            seed=seed * 7919 + round_number,
            strategy="targeted",
            id_prefix=f"v{round_number}",
        )
        # Both sides skip the quality-report diagnostic: the comparison (and
        # the timing) is about the re-wrangling itself.
        started = time.perf_counter()
        incremental_result = incremental_session._apply_feedback(
            annotations, incremental=True, evaluate=False
        )
        incremental_elapsed = time.perf_counter() - started

        started = time.perf_counter()
        full_session.add_feedback(annotations)
        full_session.run("feedback", evaluate=False)
        full_elapsed = time.perf_counter() - started

        left = incremental_session.result()
        right = full_session.result()
        mismatch = _compare_tables(left, right)
        metrics_mismatch = _compare_metrics(incremental_session, full_session)
        left_selected = incremental_session.selected_mapping()
        right_selected = full_session.selected_mapping()
        left_id = left_selected.mapping_id if left_selected else None
        right_id = right_selected.mapping_id if right_selected else None
        left_matches = sorted(incremental_session.kb.facts(Predicates.MATCH))
        right_matches = sorted(full_session.kb.facts(Predicates.MATCH))
        outcome = incremental_result.details.get("incremental", {})
        report.rounds.append(
            RoundCheck(
                round=round_number,
                annotations=len(annotations),
                rows_incremental=len(left) if left is not None else 0,
                rows_full=len(right) if right is not None else 0,
                tables_equal=not mismatch,
                selection_equal=left_id == right_id,
                matches_equal=left_matches == right_matches,
                metrics_equal=not metrics_mismatch,
                patched=bool(outcome.get("applied")),
                fallback_reason="" if outcome.get("applied") else str(outcome.get("reason", "")),
                seconds_incremental=incremental_elapsed,
                seconds_full=full_elapsed,
                mismatch=mismatch or metrics_mismatch,
            )
        )
    return report


def check_restored(
    scenario: Scenario | SynthConfig | None = None,
    *,
    rounds: int = 3,
    budget: int = 10,
    seed: int = 0,
    wrangler_config: WranglerConfig | None = None,
    checkpoint_path: str | None = None,
) -> ValidationReport:
    """Checkpoint → kill → restore must be invisible to the feedback loop.

    The session-persistence counterpart of :func:`check_incremental`: one
    session stays alive throughout; the other is checkpointed to disk,
    discarded and restored **before every feedback round** (simulating a
    process death between rounds). After each round both sessions must hold
    row-for-row equal result tables, the same selected mapping, the same
    match facts and exactly equal quality metrics.
    """
    import os
    import tempfile

    from repro.service.api import FeedbackRequest
    from repro.service.session import WranglingSession

    if scenario is None:
        scenario = SynthConfig()
    if isinstance(scenario, SynthConfig):
        scenario = generate_synthetic(scenario)
    config = wrangler_config or WranglerConfig()
    key = tuple(scenario.evaluation_key)

    live = WranglingSession(_prepare(scenario, config), scenario=scenario)
    survivor = WranglingSession(_prepare(scenario, config), scenario=scenario)
    report = ValidationReport(scenario=f"{scenario.name}(restore)")

    with tempfile.TemporaryDirectory() as scratch:
        path = checkpoint_path or os.path.join(scratch, "survivor.ckpt")
        for round_number in range(1, rounds + 1):
            reference_table = live.result()
            if reference_table is None:
                break
            annotations = simulate_feedback(
                reference_table,
                scenario.ground_truth,
                key,
                budget=budget,
                seed=seed * 7919 + round_number,
                strategy="targeted",
                id_prefix=f"r{round_number}",
            )
            request = FeedbackRequest(annotations=tuple(annotations), evaluate=False)

            started = time.perf_counter()
            live_metrics = live.feedback(request)
            live_elapsed = time.perf_counter() - started

            # The survivor dies and comes back between rounds.
            survivor.checkpoint(path)
            del survivor
            started = time.perf_counter()
            survivor = WranglingSession.restore(path)
            restored_metrics = survivor.feedback(request)
            restored_elapsed = time.perf_counter() - started

            left = survivor.result()
            right = live.result()
            mismatch = _compare_tables(left, right)
            if not mismatch and restored_metrics.fingerprint != live_metrics.fingerprint:
                mismatch = (
                    f"fingerprints differ: {restored_metrics.fingerprint} "
                    f"vs {live_metrics.fingerprint}"
                )
            metrics_mismatch = _compare_metrics(survivor.wrangler, live.wrangler)
            left_selected = survivor.wrangler.selected_mapping()
            right_selected = live.wrangler.selected_mapping()
            left_id = left_selected.mapping_id if left_selected else None
            right_id = right_selected.mapping_id if right_selected else None
            left_matches = sorted(survivor.wrangler.kb.facts(Predicates.MATCH))
            right_matches = sorted(live.wrangler.kb.facts(Predicates.MATCH))
            outcome = restored_metrics.incremental or {}
            report.rounds.append(
                RoundCheck(
                    round=round_number,
                    annotations=len(annotations),
                    rows_incremental=len(left) if left is not None else 0,
                    rows_full=len(right) if right is not None else 0,
                    tables_equal=not mismatch,
                    selection_equal=left_id == right_id,
                    matches_equal=left_matches == right_matches,
                    metrics_equal=not metrics_mismatch,
                    patched=bool(outcome.get("applied")),
                    fallback_reason="" if outcome.get("applied") else str(outcome.get("reason", "")),
                    seconds_incremental=restored_elapsed,
                    seconds_full=live_elapsed,
                    mismatch=mismatch or metrics_mismatch,
                )
            )
    return report


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; exits non-zero when ``--check`` finds a divergence."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.incremental.validate",
        description="Check incremental re-wrangling against the full pipeline.",
    )
    parser.add_argument("--family", default="product_catalog", help="scenario family")
    parser.add_argument("--entities", type=int, default=500, help="ground-truth entities")
    parser.add_argument("--sources", type=int, default=2, help="source tables")
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument("--rounds", type=int, default=3, help="feedback rounds")
    parser.add_argument("--budget", type=int, default=10, help="annotations per round")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every round's outputs are identical",
    )
    parser.add_argument(
        "--contract",
        choices=("incremental", "restore"),
        default="incremental",
        help="which equality contract to check: incremental-vs-full rounds "
        "(default) or checkpoint/restore-vs-uninterrupted sessions",
    )
    args = parser.parse_args(argv)

    checker = check_incremental if args.contract == "incremental" else check_restored
    report = checker(
        SynthConfig(
            family=args.family,
            entities=args.entities,
            sources=args.sources,
            seed=args.seed,
        ),
        rounds=args.rounds,
        budget=args.budget,
        seed=args.seed,
    )
    for check in report.rounds:
        status = "ok " if check.ok else "FAIL"
        mode = "patched" if check.patched else f"fallback ({check.fallback_reason})"
        print(
            f"{status} round {check.round}: {check.annotations} annotations, "
            f"rows {check.rows_incremental}/{check.rows_full}, {mode}, "
            f"incremental {check.seconds_incremental:.3f}s vs full {check.seconds_full:.3f}s"
        )
        if check.mismatch:
            print(f"     mismatch: {check.mismatch}")
    print(
        f"{report.scenario}: {'EQUAL' if report.ok else 'DIVERGED'} over "
        f"{len(report.rounds)} rounds ({report.patched_rounds} patched), "
        f"speedup {report.speedup():.2f}x"
    )
    if args.check and not report.ok:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI test
    raise SystemExit(main())
