"""Incremental pipeline state: the snapshots delta re-materialisation needs.

A full wrangle derives the result in stages — materialise, repair, apply
feedback, detect duplicates, fuse, repair again — and only the final table
survives in the catalog. Patching that table for a small delta needs the
*intermediate* stages back: the freshly materialised rows (to re-repair a
dirty row from scratch), the pre-fusion rows (to re-score duplicate pairs
against), the detected pairs (to re-cluster), and the per-row base lineage
(to reset a dirty row's provenance before re-recording fusion and repair
overrides).

:class:`IncrementalState` captures those stages as the pipeline transducers
produce them — each transducer calls one ``observe_*`` hook, costing a row
list copy at most — and the
:class:`~repro.incremental.rewrangle.IncrementalWrangler` patches the
snapshots in place alongside the real tables. The state lives in the
knowledge base under :data:`INCREMENTAL_STATE_ARTIFACT_KEY`, so it is
per-session and dies with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.provenance.model import ProvenanceStore, TupleLineage
from repro.relational.table import Table

__all__ = [
    "INCREMENTAL_STATE_ARTIFACT_KEY",
    "RelationState",
    "IncrementalState",
    "incremental_state",
    "mapping_source_volumes",
]


def mapping_source_volumes(catalog, mapping) -> tuple[tuple[str, int], ...]:
    """(source relation, row count) fingerprint of a mapping's inputs.

    Row counts stand in for source contents — sources are logically
    immutable apart from explicit row appends/removals, which change their
    counts (the same convention the mapping base-score cache uses). A
    snapshot whose fingerprint matches the live catalog was materialised
    from the sources as they stand now.
    """
    volumes = []
    for relation in sorted(mapping.all_sources()):
        if relation not in catalog:
            return ()
        volumes.append((relation, len(catalog.get(relation))))
    return tuple(volumes)

#: Artifact key under which the session's :class:`IncrementalState` lives.
INCREMENTAL_STATE_ARTIFACT_KEY = "incremental_state"

#: Pipeline phases a relation snapshot moves through.
PHASE_MATERIALISED = "materialised"
PHASE_PREFUSION = "prefusion"
PHASE_FUSED = "fused"


@dataclass
class RelationState:
    """The intermediate pipeline stages of one materialised result."""

    relation: str
    mapping_id: str | None = None
    #: The selected mapping *object* at materialisation time. The id alone
    #: is not enough: feedback can push a match below the generation
    #: threshold, silently changing an id-stable mapping's assignments.
    mapping: Any = None
    #: Output schema (target attributes plus the bookkeeping columns).
    schema: Any = None
    #: Base row keys in materialisation (driving-row) order.
    order: list[str] = field(default_factory=list)
    #: key → freshly materialised row (pre-repair, pre-feedback).
    base: dict[str, tuple] = field(default_factory=dict)
    #: key → post-repair, post-feedback, *pre-fusion* row.
    prefusion: dict[str, tuple] = field(default_factory=dict)
    #: Duplicate pairs detected on the pre-fusion rows: sorted key pair → score.
    pairs: dict[tuple[str, str], float] = field(default_factory=dict)
    #: key → lineage recorded at materialisation time (before any override).
    base_lineage: dict[str, TupleLineage] = field(default_factory=dict)
    #: (source relation, row count) fingerprint of the mapping's inputs at
    #: materialisation time — while it matches the live catalog, ``base``
    #: equals what a fresh execution of ``mapping`` would produce.
    source_volumes: tuple = ()
    #: Where in the pipeline the snapshot currently is.
    phase: str = PHASE_MATERIALISED
    #: Set when the observed pipeline left the single-fusion-pass shape the
    #: snapshot can represent (e.g. fused rows re-clustered); a stale
    #: snapshot forces the next revision through the full pipeline.
    stale: bool = False
    stale_reason: str = ""

    def mark_stale(self, reason: str) -> None:
        """Invalidate the snapshot (next revision falls back to a full run)."""
        self.stale = True
        self.stale_reason = reason

    @property
    def ready(self) -> bool:
        """Whether the snapshot is coherent enough to patch against."""
        return (
            not self.stale
            and self.schema is not None
            and self.mapping_id is not None
            and bool(self.order)
            and self.phase in (PHASE_PREFUSION, PHASE_FUSED)
        )

    def alive_keys(self) -> list[str]:
        """Base keys still present pre-fusion, in materialisation order."""
        return [key for key in self.order if key in self.prefusion]


class IncrementalState:
    """Per-session snapshots, keyed by result relation."""

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self.relations: dict[str, RelationState] = {}
        #: Feedback fact ids whose table effects are already reflected in
        #: the materialised results (applied by a full pipeline pass or an
        #: incremental patch). Only unseen annotations dirty rows.
        self.seen_feedback: set[str] = set()
        #: The session's persistent ImpactIndex (inverted provenance). Built
        #: lazily by the first resolution that needs it, patched in place by
        #: the engine afterwards, and dropped whenever a materialisation
        #: resets the lineage it inverts.
        self.impact = None
        #: The quality-metric sufficient statistics as last stashed by the
        #: quality transducer (shared with the ``quality_stats`` artifact).
        self.quality = None

    def get(self, relation: str) -> RelationState | None:
        """The snapshot of one relation (None when untracked)."""
        return self.relations.get(relation)

    # -- pipeline hooks -------------------------------------------------------

    def observe_materialised(
        self,
        table: Table,
        mapping: Any,
        store: ProvenanceStore | None = None,
        catalog: Any = None,
    ) -> None:
        """A result was (re-)materialised: reset the relation's snapshot."""
        if not self.enabled:
            return
        # The lineage underpinning the inverted impact index was re-recorded
        # wholesale; the next revision re-inverts it once and patches on.
        self.impact = None
        state = RelationState(
            relation=table.name,
            mapping_id=mapping.mapping_id,
            mapping=mapping,
            schema=table.schema,
        )
        if catalog is not None:
            state.source_volumes = mapping_source_volumes(catalog, mapping)
        rows = table.tuples()
        keys = table.row_keys()
        state.order = list(keys)
        state.base = dict(zip(keys, rows))
        if len(state.base) != len(rows):
            # Duplicate row keys (two leaves driven by one source) cannot be
            # patched key-wise; fall back to full runs for this relation.
            state.mark_stale("duplicate row keys in materialised result")
        state.prefusion = dict(state.base)
        if store is not None and store.enabled:
            state.base_lineage = dict(store.iter_tuples(table.name))
        state.phase = PHASE_MATERIALISED
        self.relations[table.name] = state

    def observe_table_updated(self, table: Table) -> None:
        """Repair / feedback rewrote a result table.

        Before fusion this refreshes the pre-fusion snapshot; after fusion
        the rewrites concern the fused rows, which the engine re-reads from
        the catalog, so nothing needs recording.
        """
        if not self.enabled:
            return
        state = self.relations.get(table.name)
        if state is None or state.stale:
            return
        if state.phase == PHASE_FUSED:
            return
        state.prefusion = dict(zip(table.row_keys(), table.tuples()))

    def observe_pairs(self, table: Table, pairs: dict[tuple[str, str], float]) -> None:
        """Duplicate detection ran over ``table``.

        The first detection after a materialisation sees the pre-fusion
        rows: snapshot them together with the pairs. A detection over the
        *fused* table that still finds pairs means fusion will cascade a
        second level — a shape the single-pass snapshot cannot represent —
        so the snapshot goes stale instead of silently misrepresenting it.
        """
        if not self.enabled:
            return
        state = self.relations.get(table.name)
        if state is None or state.stale:
            return
        if state.phase == PHASE_FUSED:
            if pairs:
                state.mark_stale("duplicate pairs detected on already-fused rows")
            return
        state.prefusion = dict(zip(table.row_keys(), table.tuples()))
        state.pairs = dict(pairs)
        state.phase = PHASE_PREFUSION

    def observe_fused(self, table: Table) -> None:
        """Fusion collapsed the detected clusters."""
        if not self.enabled:
            return
        state = self.relations.get(table.name)
        if state is None or state.stale:
            return
        if state.phase != PHASE_PREFUSION:
            state.mark_stale(f"fusion observed in phase {state.phase!r}")
            return
        state.phase = PHASE_FUSED

    def observe_feedback_applied(self, feedback_ids: set[str]) -> None:
        """The listed annotations' table effects are now materialised."""
        if not self.enabled:
            return
        self.seen_feedback |= feedback_ids

    def observe_quality_stats(self, stash: Any) -> None:
        """The quality transducer (re-)stashed the metric statistics."""
        if not self.enabled:
            return
        self.quality = stash

    # -- summaries ------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """A compact, picklable summary (diagnostics, batch results)."""
        return {
            "enabled": self.enabled,
            "relations": {
                name: {
                    "phase": state.phase,
                    "rows": len(state.order),
                    "pairs": len(state.pairs),
                    "stale": state.stale,
                }
                for name, state in sorted(self.relations.items())
            },
            "seen_feedback": len(self.seen_feedback),
        }

    def __repr__(self) -> str:
        return (
            f"IncrementalState(enabled={self.enabled}, "
            f"relations={sorted(self.relations)})"
        )


def incremental_state(kb, *, create: bool = True, enabled: bool = True) -> IncrementalState | None:
    """The knowledge base's incremental state (created on first use).

    Mirrors :func:`repro.provenance.model.provenance_store`: transducers call
    this to reach the session state; the wrangler seeds it with the
    configured ``enable_incremental`` flag. With ``create=False`` the
    function returns None when no state exists yet.
    """
    state = kb.get_artifact(INCREMENTAL_STATE_ARTIFACT_KEY)
    if state is None and create:
        state = IncrementalState(enabled=enabled)
        kb.store_artifact(INCREMENTAL_STATE_ARTIFACT_KEY, state)
    return state
