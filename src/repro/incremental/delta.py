"""Typed revision deltas and the change-set algebra.

A feedback-driven revision — a user annotation, an appended source row, a
changed CFD, a fusion-policy flip, a mapping re-selection — is represented
as a typed delta. A :class:`ChangeSet` bundles deltas and supports the small
algebra the incremental engine needs:

- **union** (``a | b``) — combine the revisions of several interactions;
- **restrict-to-table** — the deltas that can affect one result relation;
- **row-key closure** — resolve the deltas to the exact dirty row keys per
  result relation, by delegating to an
  :class:`~repro.incremental.impact.ImpactIndex` built over the recorded
  why-provenance.

Deltas are pure descriptions: nothing here touches the knowledge base. The
:class:`~repro.incremental.rewrangle.IncrementalWrangler` interprets them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.incremental.impact import DirtyMap, ImpactIndex

__all__ = [
    "FeedbackDelta",
    "SourceRowsDelta",
    "RuleDelta",
    "FusionPolicyDelta",
    "MappingRevisionDelta",
    "Delta",
    "ChangeSet",
]


@dataclass(frozen=True)
class FeedbackDelta:
    """One user annotation on a materialised result cell or tuple."""

    kind = "feedback"

    #: Result relation the annotation targets.
    relation: str
    #: Stable row key (``_row_id``) of the annotated tuple.
    row_key: str
    #: Annotated attribute; None means tuple-level feedback.
    attribute: str | None
    #: The user's verdict.
    correct: bool
    #: The feedback fact id this delta was derived from (diagnostics).
    feedback_id: str | None = None

    @property
    def changes_table(self) -> bool:
        """Only negative feedback rewrites the result (cells cleared, rows
        dropped); positive feedback changes scores, not data."""
        return not self.correct


@dataclass(frozen=True)
class SourceRowsDelta:
    """Rows appended to (or removed from) a registered source table.

    Appends are fully incremental: existing ``source:index`` row ids stay
    valid and only the new rows (plus any join partners they unlock) are
    re-materialised. Removals invalidate the positional ids of every later
    row of that source, so they dirty the source's whole segment — still
    incremental with respect to every *other* source and mapping.
    """

    kind = "source_rows"

    #: The source relation being revised.
    relation: str
    #: New raw rows in the source's schema order.
    appended: tuple[tuple, ...] = ()
    #: Positional indexes of removed rows (pre-removal numbering).
    removed_indexes: tuple[int, ...] = ()


@dataclass(frozen=True)
class RuleDelta:
    """A change to the learned rules (CFDs) driving repair.

    ``change`` is ``"removed"``, ``"added"`` or ``"revised"``. Removal is
    surgical: the inverted repair index names exactly the cells the retired
    CFDs rewrote. Additions and revisions are conservative — a new pattern
    may newly apply anywhere — so they dirty every row of the affected
    relations for re-repair (but not for re-materialisation).
    """

    kind = "rule"

    cfd_ids: tuple[str, ...]
    change: str = "revised"


@dataclass(frozen=True)
class FusionPolicyDelta:
    """A conflict-resolution policy change (fusion-winner flip).

    Dirties every row that belongs to a duplicate cluster — singleton rows
    have no conflicts to re-resolve — for re-fusion without re-execution.
    """

    kind = "fusion_policy"

    #: Affected result relation (None → every tracked relation).
    relation: str | None = None
    #: Affected attributes (informational; clusters re-fuse whole rows).
    attributes: tuple[str, ...] = ()


@dataclass(frozen=True)
class MappingRevisionDelta:
    """The selected mapping changed for a target relation.

    The result is a different query over the sources, so the relation needs
    a full rebuild; the engine performs it as one straight-line pipeline
    pass rather than through orchestrated re-runs.
    """

    kind = "mapping"

    target_relation: str
    mapping_id: str


#: Any of the supported delta types.
Delta = FeedbackDelta | SourceRowsDelta | RuleDelta | FusionPolicyDelta | MappingRevisionDelta


@dataclass(frozen=True)
class ChangeSet:
    """An immutable bundle of revision deltas."""

    deltas: tuple[Delta, ...] = ()
    #: Free-form origin note ("apply_feedback round 3", "CFD refresh", ...).
    origin: str = ""
    details: dict[str, Any] = field(default_factory=dict, compare=False)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_feedback(cls, annotations: Iterable, *, origin: str = "feedback") -> "ChangeSet":
        """A change set from :class:`~repro.core.facts.Feedback` annotations."""
        from repro.core.facts import Predicates

        deltas = []
        for annotation in annotations:
            attribute = annotation.attribute
            if attribute == Predicates.ANY_ATTRIBUTE:
                attribute = None
            deltas.append(
                FeedbackDelta(
                    relation=str(annotation.relation),
                    row_key=str(annotation.row_key),
                    attribute=attribute,
                    correct=bool(annotation.correct),
                    feedback_id=str(annotation.feedback_id),
                )
            )
        return cls(deltas=tuple(deltas), origin=origin)

    # -- algebra --------------------------------------------------------------

    def union(self, other: "ChangeSet") -> "ChangeSet":
        """The combined change set (deduplicated, order-preserving)."""
        seen = set()
        merged = []
        for delta in (*self.deltas, *other.deltas):
            if delta in seen:
                continue
            seen.add(delta)
            merged.append(delta)
        origin = " + ".join(part for part in (self.origin, other.origin) if part)
        return ChangeSet(deltas=tuple(merged), origin=origin)

    __or__ = union

    def restrict_to_table(
        self, relation: str, *, source_relations: Sequence[str] | None = None
    ) -> "ChangeSet":
        """The deltas that can affect result relation ``relation``.

        ``source_relations`` names the sources feeding that relation (the
        selected mapping's sources); without it, source- and rule-level
        deltas are kept conservatively.
        """
        sources = set(source_relations) if source_relations is not None else None
        kept = []
        for delta in self.deltas:
            if isinstance(delta, FeedbackDelta):
                if delta.relation == relation:
                    kept.append(delta)
            elif isinstance(delta, SourceRowsDelta):
                if sources is None or delta.relation in sources:
                    kept.append(delta)
            elif isinstance(delta, FusionPolicyDelta):
                if delta.relation in (None, relation):
                    kept.append(delta)
            elif isinstance(delta, MappingRevisionDelta):
                if delta.target_relation == relation or relation.startswith(delta.target_relation):
                    kept.append(delta)
            else:  # RuleDelta — rules are learned per target, keep conservatively.
                kept.append(delta)
        return ChangeSet(deltas=tuple(kept), origin=self.origin)

    def row_key_closure(self, index: "ImpactIndex") -> "DirtyMap":
        """Resolve the change set to dirty row keys per result relation.

        This is the closure operation of the algebra: every delta is pushed
        through the inverted provenance index (source-ref fan-out, fusion
        clusters, repair fan-out) to the exact set of downstream row keys it
        can affect. Delegates to :meth:`ImpactIndex.resolve`.
        """
        return index.resolve(self)

    # -- views ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Delta]:
        return iter(self.deltas)

    def __len__(self) -> int:
        return len(self.deltas)

    def __bool__(self) -> bool:
        return bool(self.deltas)

    def feedback_deltas(self) -> list[FeedbackDelta]:
        """Only the feedback deltas."""
        return [d for d in self.deltas if isinstance(d, FeedbackDelta)]

    def source_deltas(self) -> list[SourceRowsDelta]:
        """Only the source-row deltas."""
        return [d for d in self.deltas if isinstance(d, SourceRowsDelta)]

    def rule_deltas(self) -> list[RuleDelta]:
        """Only the rule (CFD) deltas."""
        return [d for d in self.deltas if isinstance(d, RuleDelta)]

    def fusion_deltas(self) -> list[FusionPolicyDelta]:
        """Only the fusion-policy deltas."""
        return [d for d in self.deltas if isinstance(d, FusionPolicyDelta)]

    def mapping_deltas(self) -> list[MappingRevisionDelta]:
        """Only the mapping-revision deltas."""
        return [d for d in self.deltas if isinstance(d, MappingRevisionDelta)]

    def result_relations(self) -> list[str]:
        """Result relations directly named by feedback deltas."""
        return sorted({d.relation for d in self.feedback_deltas()})

    def describe(self) -> dict[str, Any]:
        """A compact, JSON-friendly summary."""
        counts: dict[str, int] = {}
        for delta in self.deltas:
            counts[delta.kind] = counts.get(delta.kind, 0) + 1
        return {"origin": self.origin, "deltas": len(self.deltas), "by_kind": counts}
