"""The incremental re-wrangler: delta re-materialisation of results.

A feedback-driven revision re-runs the whole pipeline today: re-materialise
every tuple of the selected mapping, re-detect every duplicate pair, re-fuse
every cluster, re-repair every cell — twice, because the orchestration loop
re-derives the result once before and once after feedback assimilation. When
lineage already names the handful of rows a revision can touch, that work is
almost entirely redundant.

:class:`IncrementalWrangler` replaces it with a patch:

1. **assimilate** — the feedback-evaluation transducers run once (they are
   cheap: matches, candidate regeneration, cached scoring, selection);
2. **resolve** — the change set is closed over the inverted provenance index
   to the exact dirty row keys per result relation;
3. **patch** — only the dirty driving rows re-execute, only their duplicate
   pairs re-score, only their clusters re-fuse, only their cells re-repair;
   the materialised table, the provenance store and the result facts are
   patched in place;
4. **verify/fallback** — anything the snapshot cannot represent (a flipped
   mapping selection, second-level fusion, stale state) falls back to the
   full orchestrated pipeline, so the incremental path is an optimisation,
   never a semantics change. ``validate.py`` checks exactly that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.facts import Predicates, metric_fact, result_fact
from repro.core.knowledge_base import KnowledgeBase
from repro.core.registry import TransducerRegistry
from repro.fusion.blocking import block_by_attributes, candidate_pairs
from repro.fusion.duplicates import DuplicateDetector
from repro.fusion.fusion import DataFuser
from repro.fusion.transducers import DUPLICATES_ARTIFACT_KEY
from repro.incremental.delta import ChangeSet, FeedbackDelta
from repro.incremental.impact import DirtySet, ImpactIndex, cluster_map
from repro.incremental.state import (
    PHASE_FUSED,
    PHASE_PREFUSION,
    RelationState,
    incremental_state,
    mapping_source_volumes,
)
from repro.mapping.execution import MappingExecutor
from repro.mapping.transducers import MAPPINGS_ARTIFACT_KEY, result_relation_name
from repro.provenance.model import OPERATOR_FEEDBACK, ProvenanceStore, provenance_store
from repro.quality.cfd_learning import LearnedCFDs
from repro.quality.repair import CFDRepairer
from repro.quality.transducers import (
    CFD_ARTIFACT_KEY,
    build_relation_entry,
    quality_context_token,
    quality_stats_stash,
)
from repro.relational.table import ROW_KEY_ATTRIBUTE, Table
from repro.relational.types import is_null

__all__ = ["IncrementalOutcome", "IncrementalWrangler"]

#: Transducers whose work the engine performs out of band when it patches.
_PATCHED_TRANSDUCERS = (
    "result_materialisation",
    "duplicate_detection",
    "data_fusion",
    "data_repair",
    "feedback_repair",
)
#: Additionally marked synced when the engine patched the metric facts too.
_METRIC_TRANSDUCER = "quality_metrics"
#: Canonical order the engine runs evaluation-side transducers in: the same
#: order the orchestration loop's fixpoint settles them (matching before
#: evaluation before regeneration before scoring before selection).
_EVALUATION_ORDER = (
    "instance_matching",
    "schema_matching",
    "mapping_evaluation",
    "mapping_generation",
    "mapping_quality",
    "mapping_selection",
)


@dataclass
class IncrementalOutcome:
    """What one incremental application did (or why it could not apply)."""

    applied: bool
    reason: str = ""
    relations: list[str] = field(default_factory=list)
    rows_rematerialised: int = 0
    rows_recomputed: int = 0
    clusters_refused: int = 0
    cells_rerepaired: int = 0
    rows_dropped: int = 0
    #: Relations whose metric facts were refreshed from patched statistics
    #: (empty when the quality stash was unavailable and the next full run
    #: recomputes the metrics instead).
    metrics_patched: list[str] = field(default_factory=list)
    details: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> dict[str, Any]:
        """A compact, JSON-friendly summary."""
        return {
            "applied": self.applied,
            "reason": self.reason,
            "relations": list(self.relations),
            "rows_rematerialised": self.rows_rematerialised,
            "rows_recomputed": self.rows_recomputed,
            "clusters_refused": self.clusters_refused,
            "cells_rerepaired": self.cells_rerepaired,
            "rows_dropped": self.rows_dropped,
            "metrics_patched": list(self.metrics_patched),
            **self.details,
        }


class IncrementalWrangler:
    """Applies a change set to materialised results by patching, not re-running."""

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        registry: TransducerRegistry | None = None,
    ):
        self._kb = kb
        self._registry = registry
        self._fuser = self._component("data_fusion", "fuser", DataFuser)
        self._detector = self._component("duplicate_detection", "detector", DuplicateDetector)
        self._repairer = self._component("data_repair", "repairer", CFDRepairer)

    def _component(self, transducer_name: str, attribute: str, fallback):
        """The pipeline's own component instance, so configs always agree."""
        if self._registry is not None and transducer_name in self._registry:
            return getattr(self._registry.get(transducer_name), attribute)
        return fallback()

    # -- entry point ----------------------------------------------------------

    def apply(self, change_set: ChangeSet) -> IncrementalOutcome:
        """Apply ``change_set`` incrementally; never raises into a broken KB.

        On any unsupported shape the outcome reports ``applied=False`` and
        the engine has (re-)armed the orchestrator so that a normal ``run``
        rebuilds the affected results — partial patches are then overwritten
        wholesale by the full pipeline.

        The phases mirror the orchestrated cascade's fixpoint order:

        A. patch the feedback-dirty rows against the *current* mapping (the
           cascade's first pipeline cycle — evaluation must observe exactly
           this lineage and table state);
        B. run the evaluation-side transducers (assimilation, regeneration,
           cached re-scoring, re-selection);
        C. verify the selection survived; diff the re-generated winner's
           leaves against the snapshot;
        D. patch the structural part — source/rule/fusion deltas plus any
           leaf whose assignments the revision changed (the cascade's second
           cycle, against the *revised* mapping);
        E. bookkeeping: mark the subsumed pipeline-tail transducers synced.
        """
        kb = self._kb
        state = incremental_state(kb, create=False)
        store = provenance_store(kb, create=False)
        if state is None or not state.enabled:
            return self._fallback(change_set, "incremental state is disabled")
        if store is None or not store.enabled:
            return self._fallback(change_set, "provenance tracking is disabled")
        for relation, rel_state in state.relations.items():
            if not rel_state.ready:
                return self._fallback(
                    change_set,
                    f"snapshot for {relation} not patchable "
                    f"({rel_state.stale_reason or rel_state.phase})",
                )

        outcome = IncrementalOutcome(applied=True)
        #: relation → (rows before the patch, rows after) — feeds the
        #: metric-statistics patch; phase D composes onto phase A's diff.
        row_diffs: dict[str, tuple[dict[str, tuple], dict[str, tuple]]] = {}
        #: relation → row keys whose lineage this patch rewrote — feeds the
        #: in-place impact-index update.
        touched_lineage: dict[str, set[str]] = {}

        # Phase A — feedback patch against the pre-revision mappings.
        feedback_set = ChangeSet(
            deltas=tuple(change_set.feedback_deltas()), origin=change_set.origin
        )
        if feedback_set:
            old_mappings = {
                relation: rel_state.mapping for relation, rel_state in state.relations.items()
            }
            problem = self._patch_phase(
                feedback_set, state, store, old_mappings, outcome, row_diffs, touched_lineage
            )
            if problem is not None:
                return self._fallback(change_set, problem)

        # Phase B — evaluation-side transducers. Which ones must run depends
        # on what changed: feedback re-evaluates, source changes re-match,
        # rule changes only re-score.
        needed: set[str] = set()
        if feedback_set:
            needed |= {
                "mapping_evaluation",
                "mapping_generation",
                "mapping_quality",
                "mapping_selection",
            }
        if change_set.source_deltas():
            needed |= set(_EVALUATION_ORDER) - {"mapping_evaluation"}
        if change_set.rule_deltas():
            needed |= {"mapping_quality", "mapping_selection"}
        evaluated = False
        if needed:
            if self._registry is None:
                return self._fallback(change_set, "no registry to assimilate feedback with")
            missing = [n for n in needed if n not in self._registry]
            if missing:
                return self._fallback(change_set, f"missing transducers: {sorted(missing)}")
            for name in _EVALUATION_ORDER:
                if name in needed:
                    self._registry.get(name).execute(kb)
            evaluated = True

        # Phase C — winner stability: a flipped selection means a different
        # query, which is a rebuild, not a patch. A same-id winner can still
        # change shape (feedback pushing a match below the generation
        # threshold drops assignments): a changed leaf re-executes its whole
        # driving-source segment; added or removed leaves change the row
        # order and fall back.
        selected = self._selected_mappings()
        revised_leaves: dict[str, set[str]] = {}
        for relation, rel_state in state.relations.items():
            mapping = selected.get(relation)
            if mapping is None:
                return self._fallback(
                    change_set, f"no selected mapping for {relation}", evaluated=evaluated
                )
            if rel_state.mapping_id != mapping.mapping_id:
                return self._fallback(
                    change_set,
                    f"selected mapping changed for {relation}: "
                    f"{rel_state.mapping_id} -> {mapping.mapping_id}",
                    evaluated=evaluated,
                )
            changed = self._changed_leaves(rel_state.mapping, mapping)
            if changed is None:
                return self._fallback(
                    change_set,
                    f"mapping {mapping.mapping_id} gained or lost leaves for {relation}",
                    evaluated=evaluated,
                )
            if changed:
                revised_leaves[relation] = changed
            # From here on the patch derives against the *fresh* mapping
            # object (changed segments re-execute with its assignments).
            rel_state.mapping = mapping

        # Phase D — structural patch against the revised mappings.
        structural = ChangeSet(
            deltas=tuple(delta for delta in change_set if not isinstance(delta, FeedbackDelta)),
            origin=change_set.origin,
        )
        if structural or revised_leaves:
            problem = self._patch_phase(
                structural,
                state,
                store,
                selected,
                outcome,
                row_diffs,
                touched_lineage,
                revised_leaves=revised_leaves,
            )
            if problem is not None:
                return self._fallback(change_set, problem, evaluated=evaluated)

        # Phase D2 — metric facts: retract/add only the touched rows'
        # contributions to the quality sufficient statistics, then refresh
        # the affected ``metric`` facts from the patched accumulators.
        metrics_started = time.perf_counter()
        metrics_patched = self._patch_metrics(change_set, state, row_diffs, outcome)
        outcome.details["metrics_seconds"] = time.perf_counter() - metrics_started

        # Phase E — bookkeeping: the engine has done the pipeline tail's
        # work for this revision; without marking it, the next orchestration
        # would redo it from scratch.
        state.observe_feedback_applied(
            {d.feedback_id for d in change_set.feedback_deltas() if d.feedback_id}
        )
        if self._registry is not None:
            synced = _PATCHED_TRANSDUCERS + ((_METRIC_TRANSDUCER,) if metrics_patched else ())
            for name in synced:
                if name in self._registry:
                    self._registry.get(name).mark_synced(kb)
        outcome.reason = "patched in place"
        outcome.details["change_set"] = change_set.describe()
        return outcome

    def _impact_index(self, state, store: ProvenanceStore) -> ImpactIndex:
        """The session's persistent impact index (created on first need).

        The index survives across revisions: each patch updates the touched
        rows' entries in place (:meth:`ImpactIndex.apply_change_set`), so
        the provenance store is inverted at most once per materialisation —
        never once per revision.
        """
        index = state.impact
        if index is None or index.store is not store:
            index = ImpactIndex(store, state)
            state.impact = index
        return index

    def _patch_phase(
        self,
        change_set: ChangeSet,
        state,
        store: ProvenanceStore,
        mappings: Mapping[str, Any],
        outcome: IncrementalOutcome,
        row_diffs: dict[str, tuple[dict[str, tuple], dict[str, tuple]]],
        touched_lineage: dict[str, set[str]],
        *,
        revised_leaves: Mapping[str, set[str]] | None = None,
    ) -> str | None:
        """Resolve one change set and patch every affected relation.

        Returns a problem description on any unsupported shape (the caller
        falls back to the full pipeline, which overwrites partial patches).
        """
        index = self._impact_index(state, store).refresh(
            mappings=mappings, catalog=self._kb.catalog
        )
        dirty_map = change_set.row_key_closure(index)
        for relation, sources in (revised_leaves or {}).items():
            entry = dirty_map.setdefault(relation, DirtySet(relation=relation))
            entry.rebuild_sources |= sources
            entry.reasons.append(f"mapping assignments changed for {sorted(sources)}")
        try:
            phase_touched: dict[str, set[str]] = {}
            for relation, dirty in sorted(dirty_map.items()):
                rel_state = state.get(relation)
                if rel_state is None or dirty.full_rebuild:
                    return (
                        f"{relation} needs a full rebuild "
                        f"({'; '.join(dirty.reasons) or 'untracked'})"
                    )
                if dirty.empty:
                    continue
                mapping = mappings.get(relation)
                if mapping is None:
                    return f"no mapping available to patch {relation}"
                problem = self._patch_relation(
                    relation, rel_state, dirty, mapping, store, outcome, row_diffs, phase_touched
                )
                if problem is not None:
                    rel_state.mark_stale(problem)
                    return problem
                if relation not in outcome.relations:
                    outcome.relations.append(relation)
            # The patched rows' lineage changed: splice their entries into
            # the inverted maps so the next resolution (including phase D of
            # this very apply) reads current provenance without re-inverting.
            index.apply_change_set(change_set, phase_touched)
            for relation, keys in phase_touched.items():
                touched_lineage.setdefault(relation, set()).update(keys)
        except Exception as exc:  # noqa: BLE001 — any patch failure must fall back
            return f"patch failed: {type(exc).__name__}: {exc}"
        return None

    # -- metric facts ----------------------------------------------------------

    def _patch_metrics(
        self,
        change_set: ChangeSet,
        state,
        row_diffs: Mapping[str, tuple[dict[str, tuple], dict[str, tuple]]],
        outcome: IncrementalOutcome,
    ) -> bool:
        """Patch the quality sufficient statistics and refresh metric facts.

        Result relations re-derive from the before/after row diff (remove
        the old contribution, add the new); sources with appended rows add
        the tail rows' contributions. Anything the accumulators cannot
        represent — a changed data context or CFD set (the context token),
        a row-count drift — rebuilds the affected entries from the patched
        tables, which is still a table scan, not a pipeline run. Returns
        False only when the session has no stash to patch (the next full
        run recomputes the metrics from scratch).
        """
        kb = self._kb
        # The metric transducer snapshots the stash into the incremental
        # state; fall back to the KB artifact for sessions that predate it.
        stash = state.quality or quality_stats_stash(kb, create=False)
        if stash is None or not stash.entries:
            return False  # metrics never computed — let the transducer run
        from repro.quality.transducers import _metric_context

        context = None
        refreshed: list[str] = []

        def rebuild(relation: str) -> None:
            nonlocal context
            if context is None:
                context = _metric_context(kb)
            subject_kind = stash.entries[relation].subject_kind
            stash.entries[relation] = build_relation_entry(
                kb, relation, subject_kind, context=context
            )

        token = quality_context_token(kb)
        if stash.context_token != token:
            # The evaluation context itself changed (CFD revision, new data
            # context): every accumulator embeds it, so rebuild them all
            # against the already-patched tables.
            for relation in sorted(stash.entries):
                if kb.has_table(relation):
                    rebuild(relation)
                    refreshed.append(relation)
                else:
                    stash.entries.pop(relation)
            stash.context_token = token
        else:
            appended_rows: dict[str, int] = {}
            rebuild_sources: set[str] = set()
            for delta in change_set.source_deltas():
                if delta.removed_indexes:
                    rebuild_sources.add(delta.relation)
                elif delta.appended:
                    appended_rows[delta.relation] = (
                        appended_rows.get(delta.relation, 0) + len(delta.appended)
                    )
            for relation in sorted(rebuild_sources):
                if relation in stash.entries and kb.has_table(relation):
                    rebuild(relation)
                    refreshed.append(relation)
            for relation, count in sorted(appended_rows.items()):
                entry = stash.entries.get(relation)
                if entry is None or not kb.has_table(relation):
                    continue
                rows = kb.get_table(relation).tuples()
                if entry.stats.row_count + count != len(rows):
                    rebuild(relation)  # stats drifted from the table: resync
                else:
                    for values in rows[len(rows) - count:]:
                        entry.stats.add_row(values)
                refreshed.append(relation)
            for relation, (old_rows, new_rows) in sorted(row_diffs.items()):
                entry = stash.entries.get(relation)
                if entry is None or not kb.has_table(relation):
                    continue
                if entry.stats.row_count != len(old_rows):
                    rebuild(relation)  # stats drifted from the table: resync
                else:
                    stats = entry.stats
                    for key, old in old_rows.items():
                        new = new_rows.get(key)
                        if new is None:
                            stats.remove_row(old)
                        elif new is not old and new != old:
                            # Unchanged rows carry the same tuple object
                            # through the patch; the identity check keeps
                            # this scan at pointer-compare cost.
                            stats.replace_row(old, new)
                    for key, new in new_rows.items():
                        if key not in old_rows:
                            stats.add_row(new)
                refreshed.append(relation)

        for relation in dict.fromkeys(refreshed):
            entry = stash.entries[relation]
            # Retract/add: the patched subject's facts are replaced wholesale,
            # exactly as the metric transducer would on a full re-run.
            kb.retract_where(Predicates.METRIC, p0=entry.subject_kind, p1=relation)
            for criterion, value in entry.stats.finalise().as_dict().items():
                kb.assert_tuple(metric_fact(entry.subject_kind, relation, criterion, value))
        outcome.metrics_patched = list(dict.fromkeys(refreshed))
        # Stamped after the assertions: the stash exactly reflects the
        # patched tables as the engine hands back control, which is what
        # lets Wrangler.evaluate serve the report without a rescan.
        stash.synced_revision = kb.revision
        return True

    # -- fallback -------------------------------------------------------------

    def _fallback(
        self, change_set: ChangeSet, reason: str, *, evaluated: bool = False
    ) -> IncrementalOutcome:
        """Report non-application and arm the orchestrator for a full pass.

        When feedback was already assimilated (stage 1 ran), the selection
        facts were re-asserted and materialisation is runnable. Otherwise a
        re-selection nudge makes it runnable, so the caller's ``run()``
        rebuilds the results rather than quiescing over a half-patched KB.
        """
        state = incremental_state(self._kb, create=False)
        if state is not None:
            # A half-applied patch may have half-updated the inverted index;
            # the full run re-records lineage and the next revision re-inverts.
            state.impact = None
        if not evaluated:
            kb = self._kb
            for mapping_id, rank in list(kb.facts(Predicates.MAPPING_SELECTED)):
                kb.retract_fact(Predicates.MAPPING_SELECTED, mapping_id, rank)
                kb.assert_fact(Predicates.MAPPING_SELECTED, mapping_id, rank)
        return IncrementalOutcome(
            applied=False, reason=reason, details={"change_set": change_set.describe()}
        )

    @staticmethod
    def _changed_leaves(old_mapping, new_mapping) -> set[str] | None:
        """Driving sources whose leaf changed shape (None → leaves added/lost).

        Assignment *scores* are ignored — they move with every feedback
        round but do not affect what a leaf materialises. Only the
        (target, source relation, source attribute) triplets and the join
        conditions matter (``SchemaMapping.structure_signature``).
        """
        if old_mapping is None:
            return None
        old_leaves = {
            leaf.sources[0]: leaf.structure_signature() for leaf in old_mapping.leaf_mappings()
        }
        new_leaves = {
            leaf.sources[0]: leaf.structure_signature() for leaf in new_mapping.leaf_mappings()
        }
        if set(old_leaves) != set(new_leaves):
            return None
        return {source for source, sig in new_leaves.items() if old_leaves[source] != sig}

    # -- selection ------------------------------------------------------------

    def _selected_mappings(self) -> dict[str, Any]:
        """result relation → currently selected SchemaMapping."""
        kb = self._kb
        candidates = kb.get_artifact(MAPPINGS_ARTIFACT_KEY, {})
        selected: dict[str, Any] = {}
        for mapping_id, rank in kb.facts(Predicates.MAPPING_SELECTED):
            if rank != 1 or mapping_id not in candidates:
                continue
            mapping = candidates[mapping_id]
            selected[result_relation_name(mapping.target_relation)] = mapping
        return selected

    # -- the patch ------------------------------------------------------------

    def _patch_relation(
        self,
        relation: str,
        rel_state: RelationState,
        dirty: DirtySet,
        mapping,
        store: ProvenanceStore,
        outcome: IncrementalOutcome,
        row_diffs: dict[str, tuple[dict[str, tuple], dict[str, tuple]]],
        touched_lineage: dict[str, set[str]],
    ) -> str | None:
        """Patch one relation in place; returns a problem string on failure."""
        kb = self._kb
        schema = rel_state.schema
        old_pairs = dict(rel_state.pairs)
        old_clusters = cluster_map(old_pairs)

        # (a) re-execute dirty driving rows (and whole segments / appends).
        rematerialised = self._rematerialise(relation, rel_state, dirty, mapping, store)
        if rematerialised is None:
            return f"re-materialisation failed for {relation}"
        fresh, removed = rematerialised
        outcome.rows_rematerialised += len(fresh)

        # Dirty rows re-derive from base; their whole old clusters join them
        # (the fused survivor needs every member's fresh pre-fusion row and
        # lineage, not just the dirty one's).
        recompute = (set(dirty.recompute) | set(dirty.rematerialise) | fresh) & set(rel_state.base)
        for key in list(recompute):
            recompute |= old_clusters.get(key, frozenset())
        recompute &= set(rel_state.base)

        # (b) per-row pass 1: base → repair → feedback (the pre-fusion rows).
        feedback_marks = self._feedback_marks(relation)
        learned: LearnedCFDs | None = kb.get_artifact(CFD_ARTIFACT_KEY)
        recompute_order = [key for key in rel_state.order if key in recompute]
        pass1, repaired_cells, dropped = self._derive_prefusion(
            relation, rel_state, recompute_order, learned, feedback_marks, store
        )
        outcome.rows_recomputed += len(recompute_order)
        outcome.cells_rerepaired += repaired_cells
        outcome.rows_dropped += len(dropped)
        for key in recompute_order:
            if key in dropped:
                rel_state.prefusion.pop(key, None)
            else:
                rel_state.prefusion[key] = pass1[key]

        # (c) re-score duplicate pairs involving the recomputed rows.
        touched = recompute | removed
        self._repair_pairs(rel_state, touched)

        # (d) affected final rows: every cluster (old or new) touching the
        # recomputed keys, plus recomputed singletons.
        new_clusters = cluster_map(rel_state.pairs)
        affected: set[str] = set(recompute)
        for key in recompute | removed:
            affected |= old_clusters.get(key, frozenset())
            affected |= new_clusters.get(key, frozenset())
        affected &= set(rel_state.base)

        # The pipeline runs its repair/feedback passes once per
        # materialisation — and once more *only when fusion rewrites the
        # table*. Whether this relation fuses at all therefore decides every
        # row's pass count; if the patch flips that (first pairs appeared,
        # or the last cluster dissolved), every row's derivation changes
        # shape and the whole table re-derives.
        two_pass = bool(rel_state.pairs)
        if two_pass != bool(old_pairs):
            affected = set(rel_state.prefusion)

        # (e) fuse dirty clusters; when the relation fuses, run the
        # cascade's post-fusion repair + feedback pass over the affected rows.
        current = self._current_rows(relation)
        final_updates, refused, pass2_cells, pass2_dropped = self._derive_final(
            relation,
            rel_state,
            affected,
            new_clusters,
            learned,
            feedback_marks,
            store,
            two_pass=two_pass,
        )
        outcome.clusters_refused += refused
        outcome.cells_rerepaired += pass2_cells
        outcome.rows_dropped += len(pass2_dropped)

        # (f) rebuild the emitted row order and write the table.
        order_index = {key: position for position, key in enumerate(rel_state.order)}
        emitted: list[str] = []
        rows: list[tuple] = []
        for key in rel_state.order:
            if key not in rel_state.prefusion:
                continue  # dropped pre-fusion (tuple feedback, removed row)
            cluster = new_clusters.get(key)
            if cluster is not None:
                kept = min(cluster, key=lambda member: order_index.get(member, 1 << 30))
                if key != kept:
                    continue
            if key in pass2_dropped:
                continue
            if key in final_updates:
                row = final_updates[key]
            elif key in current:
                row = current[key]
            else:
                # Newly appended / newly released from a cluster but not in
                # the affected set — derive directly from its pre-fusion row.
                row = rel_state.prefusion[key]
            emitted.append(key)
            rows.append(row)

        table = Table(schema, rows)
        kb.update_table(table)
        rel_state.phase = PHASE_FUSED if rel_state.pairs else PHASE_PREFUSION

        # (g) verify the patched table is a pipeline fixpoint: the full run
        # would re-detect over the fused rows and fuse again if anything
        # still pairs. Unchanged rows were pairwise clean at the previous
        # fixpoint, so only pairs touching this patch's final rows can exist.
        changed_final = {key for key in emitted if key in final_updates}
        if self._second_level_pairs(table, changed_final):
            return f"{relation}: patched rows re-cluster post-fusion (needs full pass)"

        # (h) result facts mirror the cascade's quiescent state.
        for row in list(kb.facts(Predicates.RESULT)):
            if row[0] == relation:
                kb.retract_fact(Predicates.RESULT, *row)
        kb.assert_tuple(result_fact(relation, mapping.mapping_id, len(table)))
        kb.retract_where(Predicates.DUPLICATE, p0=relation)
        all_pairs = kb.get_artifact(DUPLICATES_ARTIFACT_KEY, {})
        all_pairs[relation] = []
        kb.store_artifact(DUPLICATES_ARTIFACT_KEY, all_pairs)

        # (i) bookkeeping for the downstream patches: the before/after row
        # diff (metric statistics) and every key whose lineage this patch
        # rewrote (impact-index maintenance). Phase D composes onto phase
        # A's diff, so the first captured "before" is kept.
        before = row_diffs[relation][0] if relation in row_diffs else current
        row_diffs[relation] = (before, dict(zip(emitted, rows)))
        touched_lineage.setdefault(relation, set()).update(
            recompute | fresh | removed | dropped | pass2_dropped | set(final_updates)
        )
        if dirty.appended or dirty.rebuild_sources:
            rel_state.source_volumes = mapping_source_volumes(kb.catalog, mapping)
        return None

    # -- patch internals -------------------------------------------------------

    def _rematerialise(
        self,
        relation: str,
        rel_state: RelationState,
        dirty: DirtySet,
        mapping,
        store: ProvenanceStore,
    ) -> tuple[set[str], set[str]] | None:
        """Re-execute dirty driving rows; returns (fresh keys, removed keys)."""
        kb = self._kb
        target_schema = kb.schema_of(mapping.target_relation)
        executor = MappingExecutor(kb.catalog, provenance=store)

        driving: dict[str, set[int]] = {}
        for key in dirty.rematerialise:
            source, _, index = key.rpartition(":")
            if source and index.isdigit():
                driving.setdefault(source, set()).add(int(index))
        for source, indexes in dirty.appended.items():
            driving.setdefault(source, set()).update(indexes)
        segment_sources = set(dirty.rebuild_sources)
        for source in segment_sources:
            if source not in kb.catalog:
                return None
            driving[source] = set(range(len(kb.catalog.get(source))))

        if not driving:
            return set(), set()

        produced = executor.execute_rows(
            mapping, target_schema, driving=dict(driving), result_name=relation
        )
        fresh: set[str] = set()
        by_source_new: dict[str, list[str]] = {}
        for key, row in produced:
            fresh.add(key)
            if key in rel_state.base:
                rel_state.base[key] = row
            else:
                by_source_new.setdefault(key.rpartition(":")[0], []).append(key)
                rel_state.base[key] = row
            rel_state.prefusion.setdefault(key, row)
            lineage = store.tuple_lineage(relation, key)
            if lineage is not None:
                rel_state.base_lineage[key] = lineage

        # Segment rebuilds: drop keys of those sources that no longer exist.
        removed: set[str] = set()
        for source in segment_sources:
            prefix = f"{source}:"
            for key in [k for k in rel_state.order if k.startswith(prefix)]:
                if key not in fresh:
                    self._drop_key(relation, rel_state, key, store, "source rows removed")
                    removed.add(key)

        # Splice new keys into the order at the end of their source segment
        # (matching a full execute's leaf-then-index enumeration).
        for source, new_keys in by_source_new.items():
            prefix = f"{source}:"
            insert_at = max(
                (
                    position + 1
                    for position, key in enumerate(rel_state.order)
                    if key.startswith(prefix)
                ),
                default=len(rel_state.order),
            )
            ordered = sorted(new_keys, key=lambda key: int(key.rpartition(":")[2]))
            rel_state.order[insert_at:insert_at] = ordered
        return fresh, removed

    def _drop_key(
        self,
        relation: str,
        rel_state: RelationState,
        key: str,
        store: ProvenanceStore,
        reason: str,
    ) -> None:
        rel_state.base.pop(key, None)
        rel_state.prefusion.pop(key, None)
        rel_state.base_lineage.pop(key, None)
        try:
            rel_state.order.remove(key)
        except ValueError:
            pass
        store.record_drop(relation, key, reason=reason)

    def _feedback_marks(self, relation: str) -> dict[str, list[tuple[str, str]]]:
        """row key → [(attribute, verdict)] for this relation's feedback."""
        marks: dict[str, list[tuple[str, str]]] = {}
        for _fid, rel, row_key, attribute, verdict in self._kb.facts(Predicates.FEEDBACK):
            if rel == relation:
                marks.setdefault(str(row_key), []).append((str(attribute), verdict))
        return marks

    def _derive_prefusion(
        self,
        relation: str,
        rel_state: RelationState,
        keys: list[str],
        learned: LearnedCFDs | None,
        feedback_marks: Mapping[str, list[tuple[str, str]]],
        store: ProvenanceStore,
    ) -> tuple[dict[str, tuple], int, set[str]]:
        """Pass 1 for the given keys: base lineage reset → repair → feedback."""
        # Reset lineage to the materialisation-time annotation: repair and
        # fusion overrides are re-derived below, replacing (not appending to)
        # whatever previous rounds recorded.
        for key in keys:
            base = rel_state.base_lineage.get(key)
            if base is not None:
                store.record_tuple(
                    relation,
                    key,
                    operator=base.operator,
                    witnesses=base.witnesses,
                    mapping_id=base.mapping_id,
                    cell_sources=base.cell_sources,
                )
        rows = [rel_state.base[key] for key in keys]
        repaired, cells = self._repair_rows(relation, rel_state.schema, rows, learned, store)
        derived: dict[str, tuple] = {}
        dropped: set[str] = set()
        for key, row in zip(keys, repaired):
            row, row_dropped = self._apply_feedback_row(
                relation, key, row, rel_state.schema, feedback_marks, store
            )
            if row_dropped:
                dropped.add(key)
            else:
                derived[key] = row
        return derived, cells, dropped

    def _repair_rows(
        self,
        relation: str,
        schema,
        rows: list[tuple],
        learned: LearnedCFDs | None,
        store: ProvenanceStore,
    ) -> tuple[list[tuple], int]:
        """One CFD repair pass over a row subset (row-local, like the full pass)."""
        if not rows or learned is None or not learned.cfds:
            return rows, 0
        mini = Table(schema, rows, coerce=False, validate=False)
        mini = mini.rename(relation)
        result = self._repairer.repair(
            mini, learned.cfds, witnesses=learned.witnesses, provenance=store
        )
        return result.table.tuples(), len(result.actions)

    def _apply_feedback_row(
        self,
        relation: str,
        key: str,
        row: tuple,
        schema,
        feedback_marks: Mapping[str, list[tuple[str, str]]],
        store: ProvenanceStore,
    ) -> tuple[tuple, bool]:
        """Apply this key's annotations to one row (cascade semantics)."""
        marks = feedback_marks.get(key)
        if not marks:
            return row, False
        if any(
            attribute == Predicates.ANY_ATTRIBUTE and verdict == Predicates.INCORRECT
            for attribute, verdict in marks
        ):
            store.record_drop(relation, key, reason="feedback: tuple marked incorrect")
            return row, True
        cleared = {
            attribute
            for attribute, verdict in marks
            if verdict == Predicates.INCORRECT and attribute != Predicates.ANY_ATTRIBUTE
        }
        if not cleared:
            return row, False
        mutable = list(row)
        for position, attribute in enumerate(schema.attribute_names):
            if attribute in cleared and not is_null(mutable[position]):
                mutable[position] = None
                prior = store.cell_lineage(relation, key, attribute)
                store.record_cell(
                    relation,
                    key,
                    attribute,
                    operator=OPERATOR_FEEDBACK,
                    witnesses=prior.witnesses if prior else (),
                    detail="cleared: marked incorrect",
                )
        return tuple(mutable), False

    def _repair_pairs(self, rel_state: RelationState, touched: set[str]) -> None:
        """Drop pairs touching ``touched`` keys and re-score their candidates.

        Mirrors :meth:`DuplicateDetector.detect` over the pre-fusion rows,
        restricted to pairs with at least one touched endpoint: same blocks,
        same oversized-block skips, same threshold, same score rounding.
        """
        rel_state.pairs = {
            pair: score
            for pair, score in rel_state.pairs.items()
            if pair[0] not in touched and pair[1] not in touched
        }
        alive = rel_state.alive_keys()
        touched_alive = [key for key in alive if key in touched]
        if not touched_alive:
            return
        config = self._detector.config
        schema = rel_state.schema
        table = Table(
            schema, [rel_state.prefusion[key] for key in alive], coerce=False, validate=False
        )
        position_of = {key: position for position, key in enumerate(alive)}
        blocking = [name for name in config.blocking_attributes if name in schema]
        if blocking:
            blocks = block_by_attributes(table, blocking)
            pairs = candidate_pairs(blocks, max_block_size=config.max_block_size)
            candidates = [(i, j) for i, j in pairs if alive[i] in touched or alive[j] in touched]
        else:
            touched_positions = sorted(position_of[key] for key in touched_alive)
            candidates = []
            seen = set()
            for i in touched_positions:
                for j in range(len(alive)):
                    if i == j:
                        continue
                    pair = (min(i, j), max(i, j))
                    if pair not in seen:
                        seen.add(pair)
                        candidates.append(pair)
        rows = table.rows()
        for i, j in candidates:
            score = self._detector.pair_similarity(rows[i], rows[j])
            if score >= config.threshold:
                rel_state.pairs[(alive[i], alive[j])] = round(score, 6)

    def _derive_final(
        self,
        relation: str,
        rel_state: RelationState,
        affected: set[str],
        new_clusters: Mapping[str, frozenset],
        learned: LearnedCFDs | None,
        feedback_marks: Mapping[str, list[tuple[str, str]]],
        store: ProvenanceStore,
        *,
        two_pass: bool,
    ) -> tuple[dict[str, tuple], int, int, set[str]]:
        """Fuse affected clusters; with ``two_pass``, re-repair + re-apply
        feedback over the affected rows (the cascade's post-fusion passes)."""
        schema = rel_state.schema
        names = list(schema.attribute_names)
        final: dict[str, tuple] = {}
        handled: set[str] = set()
        refused = 0
        order_index = {key: position for position, key in enumerate(rel_state.order)}

        for key in sorted(affected, key=lambda k: order_index.get(k, 1 << 30)):
            if key in handled or key not in rel_state.prefusion:
                continue
            cluster = new_clusters.get(key)
            if cluster is None:
                final[key] = rel_state.prefusion[key]
                handled.add(key)
                continue
            members = sorted(
                (member for member in cluster if member in rel_state.prefusion),
                key=lambda member: order_index.get(member, 1 << 30),
            )
            handled |= set(members)
            if not members:
                continue
            if len(members) == 1:
                final[members[0]] = rel_state.prefusion[members[0]]
                continue
            member_rows = [rel_state.prefusion[member] for member in members]
            merged, _conflicts = self._fuser.fuse_cluster(
                relation, names, member_rows, members, provenance=store
            )
            kept = self._kept_key(names, merged, members)
            final[kept] = merged
            refused += 1

        if not two_pass:
            # No fusion → the pipeline never rewrites the materialised
            # table after its single repair/feedback pass.
            return final, refused, 0, set()

        # The cascade's post-fusion repair + feedback over the fused rows.
        keys = [key for key in rel_state.order if key in final]
        rows = [final[key] for key in keys]
        repaired, cells = self._repair_rows(relation, schema, rows, learned, store)
        dropped: set[str] = set()
        for key, row in zip(keys, repaired):
            row, row_dropped = self._apply_feedback_row(
                relation, key, row, schema, feedback_marks, store
            )
            if row_dropped:
                dropped.add(key)
            else:
                final[key] = row
        return final, refused, cells, dropped

    @staticmethod
    def _kept_key(names: list[str], merged: tuple, member_keys: list[str]) -> str:
        """The surviving key of a fused cluster (the fuser's convention)."""
        if ROW_KEY_ATTRIBUTE in names:
            value = merged[names.index(ROW_KEY_ATTRIBUTE)]
            if value is not None:
                return str(value)
        return member_keys[0]

    def _current_rows(self, relation: str) -> dict[str, tuple]:
        """The current final table, keyed by row key."""
        if not self._kb.has_table(relation):
            return {}
        table = self._kb.get_table(relation)
        return dict(zip(table.row_keys(), table.tuples()))

    def _second_level_pairs(self, table: Table, changed_keys: set[str]) -> bool:
        """Would the pipeline's final detection pass fuse again?"""
        if not changed_keys:
            return False
        config = self._detector.config
        keys = table.row_keys()
        rows = table.rows()
        blocking = [name for name in config.blocking_attributes if name in table.schema]
        if blocking:
            blocks = block_by_attributes(table, blocking)
            pairs: Iterable[tuple[int, int]] = candidate_pairs(
                blocks, max_block_size=config.max_block_size
            )
        else:
            pairs = (
                (min(i, j), max(i, j))
                for i in range(len(keys))
                for j in range(len(keys))
                if i < j and (keys[i] in changed_keys or keys[j] in changed_keys)
            )
        for i, j in pairs:
            if keys[i] not in changed_keys and keys[j] not in changed_keys:
                continue
            if self._detector.pair_similarity(rows[i], rows[j]) >= config.threshold:
                return True
        return False
