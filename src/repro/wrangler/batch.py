"""Parallel batch execution of wrangling scenarios.

The ROADMAP north-star asks for "as many scenarios as you can imagine"
served at production scale; this module runs whole families of generated
scenarios (see :mod:`repro.scenarios.synth`) concurrently:

- **process-pool execution** via :mod:`concurrent.futures` (the wrangling
  pipeline is pure Python and CPU-bound, so threads cannot scale it);
- **per-worker session reuse** — each worker process builds the transducer
  registry once and reuses it (reset between scenarios), so dependency
  parsing and stratification are paid once per worker, not per scenario;
- **deterministic seeding** — scenarios are generated inside the workers
  from their :class:`~repro.scenarios.synth.SynthConfig`, so a batch is
  reproducible and its per-scenario results are byte-identical to a
  sequential run of the same configs;
- **structured results** — one picklable :class:`ScenarioRunResult` per
  scenario (including a result-table fingerprint for equivalence checks)
  and an aggregate :class:`BatchReport` with cost/quality totals.

Command line::

    python -m repro.wrangler.batch --families product_catalog sensor_log \\
        --per-family 4 --entities 300 --workers 4 --json report.json
"""

from __future__ import annotations

import argparse
import functools
import hashlib
import json
import multiprocessing
import os
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Sequence

from repro.relational.table import Table
from repro.scenarios.base import Scenario
from repro.scenarios.synth import SynthConfig, family_names, generate_synthetic, scenario_suite
from repro.wrangler.config import WranglerConfig
from repro.wrangler.pipeline import Wrangler, build_default_registry

__all__ = [
    "EXECUTORS",
    "BatchConfig",
    "BatchReport",
    "ScenarioRunResult",
    "iter_run",
    "main",
    "run_batch",
    "run_scenario",
    "table_fingerprint",
    "wrangle_scenario",
]

#: Supported execution backends.
EXECUTORS = ("process", "thread", "serial")


def _default_batch_wrangler() -> WranglerConfig:
    """Per-scenario session config of a batch: snapshots off by default —
    batch feedback rounds re-run fully unless the caller turns the
    incremental engine on (``wrangler=WranglerConfig(enable_incremental=True)``)."""
    return WranglerConfig(enable_incremental=False)


@dataclass(frozen=True)
class BatchConfig:
    """How a batch of scenarios is executed.

    Session-level knobs (step budget, provenance/incremental toggles, the
    session seed) live in one canonical place — the nested
    :class:`~repro.wrangler.config.WranglerConfig` — shared with the
    interactive and service entry points. The old flat spellings
    (``max_steps``, ``track_provenance``, ``incremental_feedback``) are
    still accepted, with a :class:`DeprecationWarning`, and fold into
    ``wrangler``.
    """

    #: Worker count (None → ``os.cpu_count()``, capped at the batch size).
    workers: int | None = None
    #: One of :data:`EXECUTORS`. ``process`` is the only backend that scales
    #: CPU-bound wrangling; ``thread``/``serial`` exist for debugging and as
    #: the sequential baseline in benchmarks.
    executor: str = "process"
    #: Whether reference/master tables are bound as data context (phase 2).
    use_data_context: bool = True
    #: Simulated feedback annotations per scenario (0 skips the phase).
    feedback_budget: int = 0
    #: How many feedback rounds each scenario runs (annotate → revise →
    #: re-wrangle, ``feedback_budget`` annotations per round).
    feedback_rounds: int = 1
    #: The per-scenario session configuration. ``enable_incremental`` also
    #: selects the feedback-loop path: on, rounds are patched by the
    #: incremental engine; off, each round re-orchestrates fully.
    wrangler: WranglerConfig = field(default_factory=_default_batch_wrangler)
    #: Deprecated alias of ``wrangler.enable_incremental``.
    incremental_feedback: bool | None = None
    #: Deprecated alias of ``wrangler.max_steps``.
    max_steps: int | None = None
    #: Deprecated alias of ``wrangler.track_provenance``.
    track_provenance: bool | None = None

    def __post_init__(self) -> None:
        folded = self.wrangler
        for old, new in (("incremental_feedback", "enable_incremental"),
                         ("max_steps", "max_steps"),
                         ("track_provenance", "track_provenance")):
            value = getattr(self, old)
            if value is None:
                continue
            warnings.warn(
                f"BatchConfig.{old} is deprecated; pass "
                f"wrangler=WranglerConfig({new}=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            folded = replace(folded, **{new: value})
            # Reset the alias so dataclasses.replace() on this config does
            # not warn again (the canonical field now carries the value).
            object.__setattr__(self, old, None)
        object.__setattr__(self, "wrangler", folded)

    def resolve_workers(self, batch_size: int) -> int:
        """The effective worker count for ``batch_size`` scenarios."""
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, batch_size))


@dataclass(frozen=True)
class ScenarioRunResult:
    """Structured outcome of wrangling one scenario (picklable)."""

    name: str
    family: str
    seed: int
    #: Ground-truth entity count and per-source volume of the scenario.
    entities: int
    source_count: int
    source_rows: int
    #: Pay-as-you-go phases that ran (bootstrap, data_context, feedback).
    phases: tuple[str, ...]
    #: Rows in the final materialised result.
    rows: int
    #: Total orchestration steps across all phases.
    steps: int
    #: Manual-action count (the paper's cost proxy).
    manual_actions: int
    #: Quality metrics of the final result, scored against ground truth.
    quality: dict[str, float]
    #: Order-independent fingerprint of the final result table.
    fingerprint: str
    #: Wall-clock seconds spent on this scenario (generation + wrangling).
    seconds: float
    #: PID of the worker that ran the scenario (not part of equivalence).
    worker: int = 0
    #: Error message when the scenario failed (None on success).
    error: str | None = None
    #: Summary of the lineage recorded for the scenario's result (see
    #: :meth:`repro.provenance.model.ProvenanceStore.stats`); None when
    #: tracking was disabled. Picklable, so process-pool workers ship it
    #: home with the rest of the result.
    provenance: dict[str, Any] | None = None
    #: How many feedback rounds the incremental engine patched in place
    #: (0 when feedback ran through full re-orchestration).
    incremental_patches: int = 0
    #: Whether this result was reloaded from a checkpoint (not recomputed).
    checkpointed: bool = False

    @property
    def ok(self) -> bool:
        """Whether the scenario ran to completion."""
        return self.error is None

    def equivalence_key(self) -> tuple:
        """The deterministic fields: equal configs must produce equal keys,
        regardless of executor, worker count or scheduling order."""
        return (
            self.name,
            self.family,
            self.seed,
            self.entities,
            self.source_count,
            self.source_rows,
            self.phases,
            self.rows,
            self.steps,
            self.manual_actions,
            tuple(sorted(self.quality.items())),
            self.fingerprint,
            self.error,
        )

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly rendering."""
        return {
            "name": self.name,
            "family": self.family,
            "seed": self.seed,
            "entities": self.entities,
            "source_count": self.source_count,
            "source_rows": self.source_rows,
            "phases": list(self.phases),
            "rows": self.rows,
            "steps": self.steps,
            "manual_actions": self.manual_actions,
            "quality": dict(self.quality),
            "fingerprint": self.fingerprint,
            "seconds": round(self.seconds, 4),
            "worker": self.worker,
            "error": self.error,
            "provenance": dict(self.provenance) if self.provenance is not None else None,
            "incremental_patches": self.incremental_patches,
            "checkpointed": self.checkpointed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioRunResult":
        """Rebuild a result from its :meth:`as_dict` rendering."""
        provenance = payload.get("provenance")
        return cls(
            name=str(payload["name"]),
            family=str(payload["family"]),
            seed=int(payload["seed"]),
            entities=int(payload["entities"]),
            source_count=int(payload["source_count"]),
            source_rows=int(payload["source_rows"]),
            phases=tuple(payload.get("phases", ())),
            rows=int(payload["rows"]),
            steps=int(payload["steps"]),
            manual_actions=int(payload["manual_actions"]),
            quality={str(k): float(v) for k, v in dict(payload.get("quality", {})).items()},
            fingerprint=str(payload["fingerprint"]),
            seconds=float(payload.get("seconds", 0.0)),
            worker=int(payload.get("worker", 0)),
            error=payload.get("error"),
            provenance=dict(provenance) if provenance is not None else None,
            incremental_patches=int(payload.get("incremental_patches", 0)),
            checkpointed=bool(payload.get("checkpointed", False)),
        )


@dataclass
class BatchReport:
    """Aggregate outcome of one batch run."""

    results: list[ScenarioRunResult]
    wall_seconds: float
    workers: int
    executor: str

    @property
    def succeeded(self) -> list[ScenarioRunResult]:
        """Results that ran to completion, in input order."""
        return [result for result in self.results if result.ok]

    @property
    def failed(self) -> list[ScenarioRunResult]:
        """Results that errored, in input order."""
        return [result for result in self.results if not result.ok]

    def aggregate(self) -> dict[str, Any]:
        """Deterministic cost/quality totals (independent of timing and of
        how the batch was scheduled across workers)."""
        succeeded = self.succeeded
        quality_sum: dict[str, float] = {}
        for result in succeeded:
            for metric, value in result.quality.items():
                quality_sum[metric] = quality_sum.get(metric, 0.0) + value
        count = len(succeeded)
        quality_mean = {metric: total / count for metric, total in quality_sum.items()}
        return {
            "scenarios": len(self.results),
            "succeeded": count,
            "failed": len(self.failed),
            "rows": sum(result.rows for result in succeeded),
            "steps": sum(result.steps for result in succeeded),
            "manual_actions": sum(result.manual_actions for result in succeeded),
            "quality_sum": {metric: quality_sum[metric] for metric in sorted(quality_sum)},
            "quality_mean": {metric: quality_mean[metric] for metric in sorted(quality_mean)},
        }

    def by_family(self) -> dict[str, dict[str, Any]]:
        """Per-family scenario counts, rows and mean overall quality."""
        grouped: dict[str, list[ScenarioRunResult]] = {}
        for result in self.succeeded:
            grouped.setdefault(result.family, []).append(result)
        summary = {}
        for family in sorted(grouped):
            results = grouped[family]
            overall = [result.quality.get("overall", 0.0) for result in results]
            summary[family] = {
                "scenarios": len(results),
                "rows": sum(result.rows for result in results),
                "steps": sum(result.steps for result in results),
                "quality_overall_mean": sum(overall) / len(overall),
            }
        return summary

    def fingerprints(self) -> dict[str, str]:
        """Scenario name → result fingerprint (for equivalence checks)."""
        return {result.name: result.fingerprint for result in self.results}

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly rendering of the whole report."""
        return {
            "wall_seconds": round(self.wall_seconds, 4),
            "workers": self.workers,
            "executor": self.executor,
            "aggregate": self.aggregate(),
            "by_family": self.by_family(),
            "results": [result.as_dict() for result in self.results],
        }


# -- per-worker session state -------------------------------------------------

#: Per-thread (and therefore per-process) wrangling session state. Building
#: the default registry parses and stratifies every transducer's dependency
#: rules; reusing it across the scenarios a worker serves pays that cost
#: once. ``reset_all`` clears execution history between scenarios, and every
#: scenario still gets a fresh knowledge base.
_worker_state = threading.local()


def _worker_registry():
    registry = getattr(_worker_state, "registry", None)
    if registry is None:
        registry = build_default_registry()
        _worker_state.registry = registry
        _worker_state.sessions = 0
    registry.reset_all()
    _worker_state.sessions += 1
    return registry


def _worker_sessions() -> int:
    """How many scenarios this worker has served (diagnostics/tests)."""
    return getattr(_worker_state, "sessions", 0)


def table_fingerprint(table: Table | None) -> str:
    """An order-independent fingerprint of a table (schema + row multiset)."""
    digest = hashlib.sha256()
    if table is None:
        digest.update(b"<no result>")
        return digest.hexdigest()
    digest.update("|".join(table.schema.attribute_names).encode("utf-8"))
    for row in sorted(repr(values) for values in table.tuples()):
        digest.update(b"\x1f")
        digest.update(row.encode("utf-8"))
    return digest.hexdigest()


# -- single-scenario execution ------------------------------------------------


def wrangle_scenario(scenario: Scenario, batch: BatchConfig | None = None) -> ScenarioRunResult:
    """Wrangle one (already generated) scenario through the standard phases."""
    batch = batch or BatchConfig()
    started = time.perf_counter()
    truth = scenario.ground_truth
    key = scenario.evaluation_key
    wrangler = Wrangler(config=batch.wrangler, registry=_worker_registry())
    scenario.install(wrangler)
    phases = ["bootstrap"]
    result = wrangler.run("bootstrap", ground_truth=truth, ground_truth_key=key)
    if batch.use_data_context and (scenario.reference is not None or scenario.master is not None):
        if scenario.reference is not None:
            wrangler.add_reference_data(scenario.reference)
        if scenario.master is not None:
            wrangler.add_master_data(scenario.master)
        phases.append("data_context")
        result = wrangler.run("data_context", ground_truth=truth, ground_truth_key=key)
    incremental_patches = 0
    if batch.feedback_budget > 0:
        from repro.feedback.annotations import simulate_feedback as simulate

        for round_number in range(max(1, batch.feedback_rounds)):
            table = wrangler.result()
            if table is None:
                break
            annotations = simulate(
                table,
                truth,
                key,
                budget=batch.feedback_budget,
                seed=scenario.seed + round_number,
                strategy="targeted",
                id_prefix="sim" if round_number == 0 else f"sim_r{round_number}",
            )
            if batch.wrangler.enable_incremental:
                result = wrangler._apply_feedback(
                    annotations,
                    incremental=True,
                    ground_truth=truth,
                    ground_truth_key=key,
                )
                if result.details.get("incremental", {}).get("applied"):
                    incremental_patches += 1
            else:
                wrangler.add_feedback(annotations)
                result = wrangler.run("feedback", ground_truth=truth, ground_truth_key=key)
            phases.append("feedback" if round_number == 0 else f"feedback{round_number + 1}")

    quality = dict(result.quality.as_dict()) if result.quality is not None else {}
    if result.quality is not None:
        quality["overall"] = result.quality.overall()
    provenance_summary = None
    if batch.wrangler.track_provenance:
        provenance_summary = wrangler.provenance.stats(wrangler.result_name())
    return ScenarioRunResult(
        name=scenario.name,
        family=scenario.family,
        seed=scenario.seed,
        entities=len(truth),
        source_count=scenario.source_count,
        source_rows=scenario.total_source_rows,
        phases=tuple(phases),
        rows=result.row_count,
        steps=len(wrangler.trace),
        manual_actions=wrangler.manual_actions(),
        quality=quality,
        fingerprint=table_fingerprint(result.table),
        seconds=time.perf_counter() - started,
        worker=os.getpid(),
        provenance=provenance_summary,
        incremental_patches=incremental_patches,
    )


def run_scenario(config: SynthConfig, batch: BatchConfig | None = None) -> ScenarioRunResult:
    """Generate and wrangle one scenario; failures become error results."""
    batch = batch or BatchConfig()
    started = time.perf_counter()
    try:
        scenario = generate_synthetic(config)
        return wrangle_scenario(scenario, batch)
    except Exception as exc:  # noqa: BLE001 - one bad scenario must not kill the batch
        return ScenarioRunResult(
            name=config.label(),
            family=config.family,
            seed=config.seed,
            entities=config.entities,
            source_count=config.sources,
            source_rows=0,
            phases=(),
            rows=0,
            steps=0,
            manual_actions=0,
            quality={},
            fingerprint="",
            seconds=time.perf_counter() - started,
            worker=os.getpid(),
            error=f"{type(exc).__name__}: {exc}",
        )


# -- checkpointing ------------------------------------------------------------


def _shard_fingerprint(config: SynthConfig, batch: BatchConfig) -> str:
    """A deterministic fingerprint of one shard (scenario config + the
    batch knobs that shape its result). Executor/worker knobs are excluded:
    they affect scheduling, not outcomes."""
    digest = hashlib.sha256()
    digest.update(repr(config).encode("utf-8"))
    digest.update(
        repr(
            (
                batch.use_data_context,
                batch.feedback_budget,
                batch.feedback_rounds,
                batch.wrangler.enable_incremental,
                batch.wrangler.max_steps,
                batch.wrangler.track_provenance,
            )
        ).encode("utf-8")
    )
    return digest.hexdigest()


def _checkpoint_path(directory: str, config: SynthConfig, fingerprint: str) -> str:
    safe_label = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in config.label())
    return os.path.join(directory, f"{safe_label}-{fingerprint[:16]}.json")


def _load_checkpoint(
    directory: str, config: SynthConfig, batch: BatchConfig
) -> ScenarioRunResult | None:
    """A completed shard result, if a fingerprint-matching checkpoint exists.

    Anything suspicious — unreadable file, wrong fingerprint (the config or
    batch knobs changed since the checkpoint was written), failed result —
    means the shard re-runs; resuming must never resurrect stale results.
    """
    fingerprint = _shard_fingerprint(config, batch)
    path = _checkpoint_path(directory, config, fingerprint)
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("shard_fingerprint") != fingerprint:
        return None
    try:
        result = ScenarioRunResult.from_dict(payload["result"])
    except (KeyError, TypeError, ValueError):
        return None
    if not result.ok:
        return None
    return replace(result, checkpointed=True)


def _write_checkpoint(
    directory: str, config: SynthConfig, batch: BatchConfig, result: ScenarioRunResult
) -> None:
    """Persist one completed shard (failures are not checkpointed)."""
    if not result.ok:
        return
    fingerprint = _shard_fingerprint(config, batch)
    path = _checkpoint_path(directory, config, fingerprint)
    payload = {"shard_fingerprint": fingerprint, "result": result.as_dict()}
    temporary = f"{path}.tmp.{os.getpid()}"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(temporary, path)


# -- batch execution ----------------------------------------------------------


def _resolve_batch(
    batch: BatchConfig | None, workers: int | None, executor: str | None
) -> BatchConfig:
    batch = batch or BatchConfig()
    if workers is not None:
        batch = replace(batch, workers=workers)
    if executor is not None:
        batch = replace(batch, executor=executor)
    if batch.executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {batch.executor!r}; expected one of {', '.join(EXECUTORS)}"
        )
    return batch


def iter_run(
    configs: Iterable[SynthConfig],
    batch: BatchConfig | None = None,
    *,
    workers: int | None = None,
    executor: str | None = None,
    checkpoint_dir: str | None = None,
):
    """Run many scenarios, yielding each :class:`ScenarioRunResult` as it lands.

    Results stream back in input order whatever the executor, and each
    per-scenario result is identical to what a sequential run of the same
    config produces (scenarios are generated from their seeds inside the
    workers). Unlike :func:`run_batch`, only the in-flight results are held
    in memory — million-scenario sweeps can consume (aggregate, write out,
    discard) results as they arrive. ``workers``/``executor`` override the
    corresponding :class:`BatchConfig` fields.

    With ``checkpoint_dir``, every completed shard is persisted there and a
    restarted sweep reloads it instead of recomputing — verified against a
    fingerprint of the scenario config and the result-shaping batch knobs,
    so an edited sweep never resumes from stale shards. Reloaded results are
    flagged ``checkpointed=True``; failed shards always re-run.

    Closing the generator early shuts the worker pool down (in-flight
    scenarios finish, queued ones are abandoned where the platform allows).
    """
    batch = _resolve_batch(batch, workers, executor)
    config_list = list(configs)
    if not config_list:
        return

    cached: dict[int, ScenarioRunResult] = {}
    pending: list[tuple[int, SynthConfig]] = []
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        for position, config in enumerate(config_list):
            result = _load_checkpoint(checkpoint_dir, config, batch)
            if result is not None:
                cached[position] = result
            else:
                pending.append((position, config))
    else:
        pending = list(enumerate(config_list))

    effective_workers = batch.resolve_workers(max(1, len(pending)))
    run_one = functools.partial(run_scenario, batch=batch)
    pending_configs = [config for _position, config in pending]

    def fresh_results():
        if not pending_configs:
            return
        if batch.executor == "serial" or effective_workers == 1:
            for config in pending_configs:
                yield run_one(config)
        elif batch.executor == "process":
            # Prefer fork so workers inherit the parent's state — in
            # particular scenario families registered at runtime via
            # ``register_family``. Under spawn/forkserver (no fork on the
            # platform), workers re-import the modules, so custom families
            # must be registered at import time.
            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=effective_workers, mp_context=context) as pool:
                yield from pool.map(run_one, pending_configs)
        else:
            with ThreadPoolExecutor(max_workers=effective_workers) as pool:
                yield from pool.map(run_one, pending_configs)

    fresh = fresh_results()
    fresh_positions = {position for position, _config in pending}
    for position, config in enumerate(config_list):
        if position in fresh_positions:
            result = next(fresh)
            if checkpoint_dir is not None:
                _write_checkpoint(checkpoint_dir, config, batch, result)
        else:
            result = cached[position]
        yield result


def run_batch(
    configs: Iterable[SynthConfig],
    batch: BatchConfig | None = None,
    *,
    workers: int | None = None,
    executor: str | None = None,
    checkpoint_dir: str | None = None,
) -> BatchReport:
    """Run many scenarios and aggregate their results.

    A thin, fully-materialising wrapper over :func:`iter_run`: collects
    every result into a :class:`BatchReport`. Use :func:`iter_run` directly
    when the batch is too large to hold all results at once.
    """
    batch = _resolve_batch(batch, workers, executor)
    config_list = list(configs)
    started = time.perf_counter()
    results = list(iter_run(config_list, batch, checkpoint_dir=checkpoint_dir))
    wall = time.perf_counter() - started
    return BatchReport(
        results=results,
        wall_seconds=wall,
        workers=batch.resolve_workers(len(config_list)),
        executor=batch.executor,
    )


# -- command line -------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.wrangler.batch",
        description="Generate and wrangle a batch of synthetic scenarios in parallel.",
    )
    parser.add_argument(
        "--families",
        nargs="+",
        default=None,
        metavar="FAMILY",
        help=f"scenario families (default: all of {', '.join(family_names())})",
    )
    parser.add_argument(
        "--per-family", type=int, default=2, help="scenario variants per family (default 2)"
    )
    parser.add_argument(
        "--entities", type=int, default=300, help="ground-truth entities per scenario"
    )
    parser.add_argument("--sources", type=int, default=2, help="source tables per scenario")
    parser.add_argument("--noise", type=float, default=0.08, help="per-cell conflict rate")
    parser.add_argument("--missing", type=float, default=0.08, help="per-cell missing rate")
    parser.add_argument(
        "--missing-pattern", default="random", help="missing pattern: random, column or tail"
    )
    parser.add_argument(
        "--drift", type=float, default=0.5, help="per-source schema-drift probability"
    )
    parser.add_argument(
        "--reference-size",
        type=float,
        default=1.0,
        help="fraction of the directory exposed as reference data",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed for the suite")
    parser.add_argument("--workers", type=int, default=None, help="workers (default: CPU count)")
    parser.add_argument(
        "--executor", choices=EXECUTORS, default="process", help="execution backend"
    )
    parser.add_argument(
        "--feedback-budget",
        type=int,
        default=0,
        help="simulated feedback annotations per scenario (0 skips the phase)",
    )
    parser.add_argument(
        "--feedback-rounds",
        type=int,
        default=1,
        help="feedback rounds per scenario (annotate, revise, re-wrangle)",
    )
    parser.add_argument(
        "--incremental",
        default=False,
        action=argparse.BooleanOptionalAction,
        help="apply feedback through the incremental re-wrangling engine "
        "instead of full re-orchestration (default: --no-incremental)",
    )
    parser.add_argument(
        "--mix-families",
        nargs="+",
        default=None,
        metavar="FAMILY",
        help="mix distractor sources from these families into every scenario",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="persist completed shards here; a restarted sweep reloads them "
        "(fingerprint-verified) instead of recomputing",
    )
    parser.add_argument(
        "--data-context",
        default=True,
        action=argparse.BooleanOptionalAction,
        help="bind reference/master tables as data context "
        "(default: --data-context; --no-data-context skips the phase)",
    )
    parser.add_argument(
        "--provenance",
        default=True,
        action=argparse.BooleanOptionalAction,
        help="record why-provenance while wrangling (default: --provenance; "
        "--no-provenance is faster, but results cannot be explained)",
    )
    parser.add_argument(
        "--max-steps", type=int, default=200, help="orchestration step budget per scenario"
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH", help="write the report as JSON to PATH"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the per-scenario table")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    configs = scenario_suite(
        args.families,
        per_family=args.per_family,
        seed=args.seed,
        entities=args.entities,
        sources=args.sources,
        noise=args.noise,
        missing=args.missing,
        missing_pattern=args.missing_pattern,
        schema_drift=args.drift,
        reference_size=args.reference_size,
        mix_families=tuple(args.mix_families) if args.mix_families else (),
    )
    batch = BatchConfig(
        workers=args.workers,
        executor=args.executor,
        use_data_context=args.data_context,
        feedback_budget=args.feedback_budget,
        feedback_rounds=args.feedback_rounds,
        wrangler=WranglerConfig(
            max_steps=args.max_steps,
            track_provenance=args.provenance,
            enable_incremental=args.incremental,
        ),
    )
    report = run_batch(configs, batch, checkpoint_dir=args.checkpoint_dir)

    if not args.quiet:
        for result in report.results:
            if result.ok:
                overall = result.quality.get("overall", 0.0)
                print(
                    f"ok   {result.name}: rows={result.rows} steps={result.steps} "
                    f"quality={overall:.4f} seconds={result.seconds:.2f}"
                )
            else:
                print(f"FAIL {result.name}: {result.error}")
    aggregate = report.aggregate()
    print(
        f"batch: {aggregate['succeeded']}/{aggregate['scenarios']} scenarios ok, "
        f"{aggregate['rows']} result rows, {aggregate['steps']} steps, "
        f"workers={report.workers} ({report.executor}), wall={report.wall_seconds:.2f}s"
    )
    for family, stats in report.by_family().items():
        print(
            f"  {family}: scenarios={stats['scenarios']} rows={stats['rows']} "
            f"quality={stats['quality_overall_mean']:.4f}"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    return 0 if not report.failed else 1


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI test
    raise SystemExit(main())
