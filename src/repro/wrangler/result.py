"""Result objects returned by the wrangling pipeline."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.core.trace import Trace
from repro.mapping.model import SchemaMapping
from repro.provenance.explain import LineageTree, explain_result, render_lineage
from repro.provenance.model import ProvenanceStore
from repro.quality.metrics import QualityReport
from repro.relational.table import Table

__all__ = ["WranglingResult"]


@dataclass
class WranglingResult:
    """What one orchestration run (one pay-as-you-go stage) produced."""

    #: Label of the stage that produced this result (bootstrap, data_context,
    #: feedback, user_context or a caller-supplied label).
    phase: str
    #: The materialised result table (None when no mapping could be selected).
    table: Table | None
    #: The mapping that produced the result.
    selected_mapping: SchemaMapping | None
    #: Quality of the result as measured against ground truth (when the
    #: caller supplied it) or against the available data context.
    quality: QualityReport | None
    #: Orchestration trace of the whole session so far.
    trace: Trace
    #: Number of trace steps executed during this stage.
    steps_executed: int
    #: Extra details (per-criterion weights in use, ranking, …).
    details: dict[str, Any] = field(default_factory=dict)
    #: Lineage recorded for the session (None when tracking is off).
    provenance: ProvenanceStore | None = None
    #: The session catalog at the time the result was produced; lets
    #: :meth:`explain` resolve contributing source rows without the caller
    #: having to thread ``wrangler.kb.catalog`` through by hand.
    catalog: Any = None

    @property
    def row_count(self) -> int:
        """Number of rows in the result (0 when there is none)."""
        return len(self.table) if self.table is not None else 0

    def explain(self, row: int | str, column: str | None = None, *, catalog=None) -> LineageTree:
        """Why-provenance of one result cell (or tuple when ``column`` is None).

        Identical to :meth:`repro.wrangler.pipeline.Wrangler.explain` (both
        route through :func:`repro.provenance.explain.explain_result`); the
        source-row leaves resolve against the catalog captured with the
        result. Passing ``catalog=`` explicitly is deprecated — the result
        already carries it.
        """
        if catalog is not None:
            warnings.warn(
                "WranglingResult.explain(catalog=...) is deprecated; the result "
                "carries its session catalog — call explain(row, column)",
                DeprecationWarning,
                stacklevel=2,
            )
        return explain_result(
            self.table,
            self.provenance,
            row,
            column,
            catalog=catalog if catalog is not None else self.catalog,
        )

    def explain_text(self, row: int | str, column: str | None = None) -> str:
        """Human-readable rendering of :meth:`explain`."""
        return render_lineage(self.explain(row, column))

    def summary(self) -> dict[str, Any]:
        """A compact dictionary used by examples and benchmarks."""
        quality = self.quality.as_dict() if self.quality else {}
        return {
            "phase": self.phase,
            "rows": self.row_count,
            "mapping": self.selected_mapping.mapping_id if self.selected_mapping else None,
            "steps": self.steps_executed,
            **{f"quality_{name}": round(value, 4) for name, value in quality.items()},
        }
