"""The high-level pay-as-you-go wrangling API.

:class:`Wrangler` is the programmatic equivalent of the paper's web
interface (Figure 3): the user registers sources and a target schema, lets
the system bootstrap automatically, and then *pays* incrementally — adding
data context, giving feedback, stating a user context — with each payment
triggering re-orchestration and (typically) a better result.

Typical usage::

    wrangler = Wrangler()
    wrangler.add_source(rightmove)
    wrangler.add_source(onthemarket)
    wrangler.add_source(deprivation)
    wrangler.set_target_schema(target)

    bootstrap = wrangler.run("bootstrap")                     # step 1
    wrangler.add_reference_data(addresses)                    # step 2
    with_context = wrangler.run("data_context")
    wrangler.simulate_feedback(ground_truth, budget=50)       # step 3
    with_feedback = wrangler.run("feedback")
    wrangler.set_user_context(user_context)                   # step 4
    final = wrangler.run("user_context")
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.context.data_context import DataContext
from repro.context.transducers import CriterionWeightTransducer
from repro.context.user_context import UserContext
from repro.cqa import (
    ConjunctiveQuery,
    EnumerationConfig,
    answer_certain,
    keys_from_cfds,
    parse_query,
    query_answers,
)
from repro.core.facts import Feedback, Predicates
from repro.core.knowledge_base import KnowledgeBase
from repro.core.orchestrator import NetworkTransducer, Orchestrator
from repro.core.registry import TransducerRegistry
from repro.core.trace import Trace
from repro.extraction.pages import ResultPage
from repro.extraction.transducers import DataExtractionTransducer, register_web_source
from repro.extraction.wrapper import SiteWrapper
from repro.feedback.annotations import FeedbackCollector, simulate_feedback
from repro.feedback.transducers import FeedbackRepairTransducer, MappingEvaluationTransducer
from repro.fusion.transducers import DataFusionTransducer, DuplicateDetectionTransducer
from repro.incremental.delta import ChangeSet, SourceRowsDelta
from repro.incremental.rewrangle import IncrementalWrangler
from repro.incremental.state import IncrementalState, incremental_state
from repro.mapping.model import SchemaMapping
from repro.mapping.transducers import (
    MAPPINGS_ARTIFACT_KEY,
    MappingGenerationTransducer,
    MappingQualityTransducer,
    MappingSelectionTransducer,
    ResultMaterialisationTransducer,
    SourceSelectionTransducer,
    result_relation_name,
)
from repro.matching.transducers import InstanceMatchingTransducer, SchemaMatchingTransducer
from repro.provenance.explain import LineageTree, explain_result, render_lineage
from repro.provenance.model import ProvenanceStore, provenance_store
from repro.quality.metrics import QualityReport, evaluate_quality
from repro.quality.stats import AnswerAgreementStats
from repro.quality.transducers import (
    CFD_ARTIFACT_KEY,
    CFDLearningTransducer,
    DataRepairTransducer,
    QualityMetricTransducer,
    quality_stats_stash,
)
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.wrangler.config import WranglerConfig
from repro.wrangler.result import WranglingResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service wraps us)
    from repro.service.session import WranglingSession

__all__ = [
    "Wrangler",
    "QueryOutcome",
    "build_default_registry",
    "CQA_AGREEMENT_ARTIFACT_KEY",
]

#: Artifact key for the per-query certain-vs-repaired agreement records
#: written by :meth:`Wrangler.query` in ``mode="both"``.
CQA_AGREEMENT_ARTIFACT_KEY = "cqa_agreement"


def _deprecated(old: str, new: str) -> None:
    """One deprecation voice for the pre-session Wrangler surface."""
    warnings.warn(
        f"Wrangler.{old} is deprecated; use {new} (see README 'Migrating to "
        f"the session API')",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class QueryOutcome:
    """The answers of one :meth:`Wrangler.query` call.

    ``certain`` holds the certain answers over the unrepaired base tables,
    ``repaired`` the plain answers over the current (repaired) result;
    either is ``None`` when the mode did not request it. Boolean queries
    use ``((),)`` for *certainly true* and ``()`` for *not certain*.
    """

    query: str
    mode: str
    certain: tuple[tuple, ...] | None
    repaired: tuple[tuple, ...] | None
    #: ``"rewriting"`` or ``"enumeration"`` (None when certain was skipped).
    method: str | None
    rewritable: bool | None
    reason: str
    #: The primary keys the certain semantics ran under.
    keys: dict[str, tuple[str, ...]]
    #: Jaccard overlap of certain and repaired answers (``mode="both"``).
    agreement: float | None
    #: False when a sampled/timed-out enumeration over-approximated.
    exact: bool
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """A JSON-friendly rendering (answer tuples become lists)."""
        return {
            "query": self.query,
            "mode": self.mode,
            "certain": None if self.certain is None else [list(r) for r in self.certain],
            "repaired": None if self.repaired is None else [list(r) for r in self.repaired],
            "method": self.method,
            "rewritable": self.rewritable,
            "reason": self.reason,
            "keys": {relation: list(attrs) for relation, attrs in self.keys.items()},
            "agreement": self.agreement,
            "exact": self.exact,
            "details": dict(self.details),
        }


def build_default_registry(config: WranglerConfig | None = None) -> TransducerRegistry:
    """The standard transducer complement of the architecture.

    This is the concrete instantiation of Table 1 (plus the additional
    transducers named in the paper's text): extraction, schema and instance
    matching, mapping generation, CFD learning, quality metrics, repair,
    duplicate detection, data fusion, source selection, mapping selection,
    result materialisation, mapping evaluation and criterion weighting.
    """
    config = config or WranglerConfig()
    registry = TransducerRegistry()
    registry.register(DataExtractionTransducer())
    registry.register(SchemaMatchingTransducer(config.schema_matcher))
    registry.register(InstanceMatchingTransducer(config.instance_matcher))
    registry.register(MappingGenerationTransducer(config.mapping_generator))
    registry.register(MappingQualityTransducer())
    registry.register(CFDLearningTransducer(config.cfd_learner))
    registry.register(QualityMetricTransducer())
    if config.enable_repair:
        registry.register(DataRepairTransducer())
    if config.enable_fusion:
        registry.register(DuplicateDetectionTransducer(config.duplicate_detector))
        registry.register(DataFusionTransducer())
    if config.enable_source_selection:
        registry.register(SourceSelectionTransducer())
    registry.register(MappingSelectionTransducer())
    registry.register(ResultMaterialisationTransducer())
    registry.register(MappingEvaluationTransducer())
    registry.register(FeedbackRepairTransducer())
    registry.register(CriterionWeightTransducer())
    return registry


class Wrangler:
    """A pay-as-you-go wrangling session over one knowledge base."""

    def __init__(
        self,
        *,
        config: WranglerConfig | None = None,
        policy: NetworkTransducer | None = None,
        registry: TransducerRegistry | None = None,
    ):
        self._config = config or WranglerConfig()
        self._kb = KnowledgeBase()
        self._registry = registry if registry is not None else build_default_registry(self._config)
        self._orchestrator = Orchestrator(
            self._kb, self._registry, policy, max_steps=self._config.max_steps
        )
        self._feedback = FeedbackCollector(self._kb)
        self._target_relation: str | None = None
        self._user_context: UserContext | None = None
        # Seed the session's provenance store so every transducer records
        # (or skips, when tracking is off) against the same instance.
        self._provenance = provenance_store(self._kb, enabled=self._config.track_provenance)
        # Seed the incremental-state artifact likewise: the pipeline
        # transducers snapshot their intermediate stages into it, which is
        # what lets apply_feedback patch results instead of re-running.
        self._incremental = incremental_state(
            self._kb, enabled=self._config.enable_incremental and self._config.track_provenance
        )

    # -- accessors -------------------------------------------------------------

    @property
    def kb(self) -> KnowledgeBase:
        """The session's knowledge base."""
        return self._kb

    @property
    def registry(self) -> TransducerRegistry:
        """The registered transducers."""
        return self._registry

    @property
    def orchestrator(self) -> Orchestrator:
        """The orchestrator driving the session."""
        return self._orchestrator

    @property
    def trace(self) -> Trace:
        """The browsable orchestration trace."""
        return self._orchestrator.trace

    @property
    def target_relation(self) -> str | None:
        """Name of the declared target relation (None before it is set)."""
        return self._target_relation

    @property
    def provenance(self) -> ProvenanceStore:
        """The session's lineage store (disabled when tracking is off)."""
        return self._provenance

    @property
    def incremental(self) -> IncrementalState:
        """The incremental-engine snapshots (disabled when turned off)."""
        return self._incremental

    # -- configuration of the wrangling task (Figure 3 interactions) -------------

    def add_source(self, table: Table) -> str:
        """Register a source table (already extracted)."""
        return self._kb.register_table(table, Predicates.ROLE_SOURCE)

    def add_sources(self, tables: Iterable[Table]) -> list[str]:
        """Register several source tables."""
        return [self.add_source(table) for table in tables]

    def add_web_source(
        self, name: str, pages: Sequence[ResultPage], *, wrapper: SiteWrapper | None = None
    ) -> None:
        """Register a deep-web source as pages; extraction will wrangle it."""
        register_web_source(self._kb, name, pages, wrapper=wrapper)

    def set_target_schema(self, schema: Schema) -> None:
        """Declare the target schema the user needs (Figure 3(a))."""
        self._kb.describe_schema(schema, Predicates.ROLE_TARGET)
        self._target_relation = schema.name

    def set_data_context(self, data_context: DataContext) -> int:
        """Associate data-context tables with the target schema (Figure 3(b))."""
        return data_context.assert_into(self._kb)

    def add_reference_data(self, table: Table, *, target_relation: str | None = None) -> int:
        """Shorthand: bind one reference table to the target schema."""
        relation = target_relation or self._require_target()
        return DataContext().reference(table, relation).assert_into(self._kb)

    def add_master_data(self, table: Table, *, target_relation: str | None = None) -> int:
        """Shorthand: bind one master-data table to the target schema."""
        relation = target_relation or self._require_target()
        return DataContext().master(table, relation).assert_into(self._kb)

    def add_example_data(self, table: Table, *, target_relation: str | None = None) -> int:
        """Shorthand: bind one example-data table to the target schema."""
        relation = target_relation or self._require_target()
        return DataContext().example(table, relation).assert_into(self._kb)

    def set_user_context(self, user_context: UserContext) -> int:
        """State the user's pairwise priorities (Figure 3(d))."""
        self._user_context = user_context
        return user_context.assert_into(self._kb)

    # -- feedback (Figure 3(c)) ---------------------------------------------------

    def feedback_on_attribute(
        self, row_key: str, attribute: str, *, correct: bool, relation: str | None = None
    ) -> Feedback:
        """Attribute-level feedback on one result cell."""
        return self._feedback.annotate_attribute(
            relation or self.result_name(), row_key, attribute, correct=correct
        )

    def feedback_on_tuple(
        self, row_key: str, *, correct: bool, relation: str | None = None
    ) -> Feedback:
        """Tuple-level feedback on one result row."""
        return self._feedback.annotate_tuple(
            relation or self.result_name(), row_key, correct=correct
        )

    def add_feedback(self, annotations: Iterable[Feedback]) -> int:
        """Assert a batch of pre-built feedback annotations."""
        return self._feedback.annotate_many(annotations)

    def simulate_feedback(
        self,
        ground_truth: Table,
        *,
        budget: int = 50,
        seed: int | None = None,
        key: Sequence[str] = ("postcode", "price"),
        strategy: str = "targeted",
    ) -> int:
        """Simulate a user annotating ``budget`` result cells against ground truth.

        The default ``targeted`` strategy mirrors the paper's motivation:
        the user notices and flags values that are clearly wrong (e.g. a
        bedroom count that is actually a room area). ``seed`` defaults to
        the session's :attr:`WranglerConfig.seed`.
        """
        table = self.result()
        if table is None:
            return 0
        if seed is None:
            seed = self._config.seed
        annotations = simulate_feedback(
            table, ground_truth, key, budget=budget, seed=seed, strategy=strategy
        )
        return self.add_feedback(annotations)

    # -- incremental revisions (the cheap side of the feedback loop) -------------

    def apply_feedback(
        self,
        annotations: Iterable[Feedback] | None = None,
        *,
        incremental: bool | None = None,
        ground_truth: Table | None = None,
        ground_truth_key: Sequence[str] = ("postcode", "price"),
        evaluate: bool = True,
    ) -> WranglingResult:
        """Deprecated shim — use ``session().feedback(FeedbackRequest(...))``.

        The behaviour is unchanged (see :meth:`_apply_feedback`); the typed
        session surface in :mod:`repro.service` is the supported entry point
        for feedback rounds.
        """
        _deprecated("apply_feedback(...)", "WranglingSession.feedback(FeedbackRequest(...))")
        return self._apply_feedback(
            annotations,
            incremental=incremental,
            ground_truth=ground_truth,
            ground_truth_key=ground_truth_key,
            evaluate=evaluate,
        )

    def _apply_feedback(
        self,
        annotations: Iterable[Feedback] | None = None,
        *,
        incremental: bool | None = None,
        ground_truth: Table | None = None,
        ground_truth_key: Sequence[str] = ("postcode", "price"),
        evaluate: bool = True,
    ) -> WranglingResult:
        """Assert feedback and bring the result up to date — incrementally.

        This is the feedback loop's fast path: instead of re-running the
        whole pipeline (the behaviour of :meth:`run`, still available via
        ``incremental=False``), the annotations become a typed change set,
        lineage resolves them to the exact dirty rows, and only those rows
        are re-derived — re-executed, re-fused, re-repaired — with the
        result table, the provenance store and the derived facts patched in
        place. Revisions the patch cannot represent (a flipped mapping
        selection, structural changes) automatically fall back to the full
        orchestrated re-run, so the outcome is always the same as
        ``incremental=False``; only the cost differs.

        ``incremental`` defaults to the ``enable_incremental`` config flag.
        The outcome's :class:`~repro.wrangler.result.WranglingResult` carries
        the engine's report under ``details["incremental"]``.
        """
        if annotations is not None:
            self.add_feedback(annotations)
        if incremental is None:
            incremental = self._config.enable_incremental
        if not incremental:
            return self.run(
                "feedback",
                ground_truth=ground_truth,
                ground_truth_key=ground_truth_key,
                evaluate=evaluate,
            )
        from repro.provenance.feedback import LineageFeedbackPropagator

        change_set = LineageFeedbackPropagator().emit_deltas(
            self._kb, seen=self._incremental.seen_feedback
        )
        return self._apply_change_set(
            change_set,
            phase="feedback",
            ground_truth=ground_truth,
            ground_truth_key=ground_truth_key,
            evaluate=evaluate,
        )

    def apply_change_set(
        self,
        change_set: ChangeSet,
        *,
        phase: str = "revision",
        ground_truth: Table | None = None,
        ground_truth_key: Sequence[str] = ("postcode", "price"),
        evaluate: bool = True,
    ) -> WranglingResult:
        """Deprecated shim — use ``session().apply(ChangeSet(...))``."""
        _deprecated("apply_change_set(...)", "WranglingSession.apply(change_set)")
        return self._apply_change_set(
            change_set,
            phase=phase,
            ground_truth=ground_truth,
            ground_truth_key=ground_truth_key,
            evaluate=evaluate,
        )

    def _apply_change_set(
        self,
        change_set: ChangeSet,
        *,
        phase: str = "revision",
        ground_truth: Table | None = None,
        ground_truth_key: Sequence[str] = ("postcode", "price"),
        evaluate: bool = True,
    ) -> WranglingResult:
        """Apply an arbitrary change set through the incremental engine.

        Falls back to a full orchestrated run when the engine reports the
        revision is not patchable (and after any engine error — the full
        pipeline rebuilds whatever a partial patch touched).
        """
        engine = IncrementalWrangler(self._kb, registry=self._registry)
        outcome = engine.apply(change_set)
        if not outcome.applied:
            result = self.run(
                phase,
                ground_truth=ground_truth,
                ground_truth_key=ground_truth_key,
                evaluate=evaluate,
            )
            result.details["incremental"] = outcome.describe()
            return result
        table = self.result()
        quality = None
        if evaluate and table is not None:
            quality = self.evaluate(ground_truth=ground_truth, key=ground_truth_key)
        return WranglingResult(
            phase=f"{phase}(incremental)",
            table=table,
            selected_mapping=self.selected_mapping(),
            quality=quality,
            trace=self.trace,
            steps_executed=0,
            details={
                "kb_facts": self._kb.count(),
                "kb_revision": self._kb.revision,
                "incremental": outcome.describe(),
            },
            provenance=self._provenance if self._provenance.enabled else None,
            catalog=self._kb.catalog,
        )

    def append_source_rows(
        self,
        relation: str,
        rows: Iterable[Sequence],
        *,
        incremental: bool | None = None,
        ground_truth: Table | None = None,
        ground_truth_key: Sequence[str] = ("postcode", "price"),
        evaluate: bool = True,
    ) -> WranglingResult:
        """Deprecated shim — use ``session().append(AppendRequest(...))``."""
        _deprecated("append_source_rows(...)", "WranglingSession.append(AppendRequest(...))")
        return self._append_source_rows(
            relation,
            rows,
            incremental=incremental,
            ground_truth=ground_truth,
            ground_truth_key=ground_truth_key,
            evaluate=evaluate,
        )

    def _append_source_rows(
        self,
        relation: str,
        rows: Iterable[Sequence],
        *,
        incremental: bool | None = None,
        ground_truth: Table | None = None,
        ground_truth_key: Sequence[str] = ("postcode", "price"),
        evaluate: bool = True,
    ) -> WranglingResult:
        """Append rows to a registered source and update the result.

        Existing ``source:index`` row identities stay valid, so the
        incremental engine only executes the new driving rows (plus any
        existing rows a new lookup partner unlocks) instead of re-running
        the pipeline over the whole source.
        """
        appended = tuple(tuple(row) for row in rows)
        table = self._kb.get_table(relation)
        self._kb.update_table(table.extend(appended))
        if incremental is None:
            incremental = self._config.enable_incremental
        change_set = ChangeSet(
            deltas=(SourceRowsDelta(relation=relation, appended=appended),),
            origin=f"append {len(appended)} rows to {relation}",
        )
        if not incremental:
            return self.run(
                "revision",
                ground_truth=ground_truth,
                ground_truth_key=ground_truth_key,
                evaluate=evaluate,
            )
        return self._apply_change_set(
            change_set,
            phase="revision",
            ground_truth=ground_truth,
            ground_truth_key=ground_truth_key,
            evaluate=evaluate,
        )

    # -- running -----------------------------------------------------------------------

    def run(
        self,
        phase: str = "",
        *,
        ground_truth: Table | None = None,
        ground_truth_key: Sequence[str] = ("postcode", "price"),
        evaluate: bool = True,
    ) -> WranglingResult:
        """Orchestrate to quiescence and package the outcome of this stage.

        ``evaluate=False`` skips the quality report (an O(rows) diagnostic),
        leaving ``result.quality`` as None — useful when the caller only
        needs the materialised table (benchmark loops, validation harnesses).
        """
        steps_before = len(self.trace)
        self._orchestrator.set_phase(phase)
        self._orchestrator.run()
        steps_executed = len(self.trace) - steps_before
        table = self.result()
        quality = None
        if evaluate and table is not None:
            quality = self.evaluate(ground_truth=ground_truth, key=ground_truth_key)
        return WranglingResult(
            phase=phase or "run",
            table=table,
            selected_mapping=self.selected_mapping(),
            quality=quality,
            trace=self.trace,
            steps_executed=steps_executed,
            details={"kb_facts": self._kb.count(), "kb_revision": self._kb.revision},
            provenance=self._provenance if self._provenance.enabled else None,
            catalog=self._kb.catalog,
        )

    def session(self, *, session_id: str | None = None,
                name: str | None = None) -> "WranglingSession":
        """The coherent, typed session surface over this wrangler.

        This is the recommended entry point for the interactive loop: one
        :class:`~repro.service.session.WranglingSession` per data context,
        driven by typed requests (``FeedbackRequest``, ``AppendRequest``,
        ``ExplainRequest``, …) shared by the in-process, CLI and HTTP entry
        points, with checkpoint/restore built in.
        """
        from repro.service.session import WranglingSession

        return WranglingSession(self, session_id=session_id, name=name)

    def step(self):
        """Execute a single orchestration step (None when quiescent)."""
        return self._orchestrator.step()

    # -- results -------------------------------------------------------------------------

    def result_name(self) -> str:
        """Name of the materialised result relation."""
        return result_relation_name(self._require_target())

    def result(self) -> Table | None:
        """The current materialised result (None before materialisation)."""
        if self._target_relation is None:
            return None
        name = result_relation_name(self._target_relation)
        if not self._kb.has_table(name):
            return None
        return self._kb.get_table(name)

    def selected_mapping(self) -> SchemaMapping | None:
        """The currently selected mapping (None before selection)."""
        candidates = self._kb.get_artifact(MAPPINGS_ARTIFACT_KEY, {})
        for mapping_id, rank in self._kb.facts(Predicates.MAPPING_SELECTED):
            if rank == 1 and mapping_id in candidates:
                return candidates[mapping_id]
        return None

    def candidate_mappings(self) -> list[SchemaMapping]:
        """All candidate mappings currently known."""
        return sorted(
            self._kb.get_artifact(MAPPINGS_ARTIFACT_KEY, {}).values(),
            key=lambda mapping: mapping.mapping_id,
        )

    def explain(self, row: int | str, column: str | None = None) -> LineageTree:
        """Why-provenance of one result cell (or tuple when ``column`` is None).

        The returned tree has the annotated value at the root, one branch
        per why-provenance witness, and the contributing *source rows*
        (resolved from the catalog) at the leaves. Identical to
        :meth:`WranglingResult.explain <repro.wrangler.result.WranglingResult.explain>`
        — both route through :func:`repro.provenance.explain.explain_result`.
        Raises ``LookupError`` when there is no result yet or tracking is
        disabled.
        """
        return explain_result(
            self.result(), self._provenance, row, column, catalog=self._kb.catalog
        )

    def explain_text(self, row: int | str, column: str | None = None) -> str:
        """Human-readable rendering of :meth:`explain`."""
        return render_lineage(self.explain(row, column))

    # -- querying ------------------------------------------------------------------------

    def query(
        self,
        query: "ConjunctiveQuery | str",
        *,
        mode: str = "certain",
        keys: Mapping[str, Sequence[str] | str] | None = None,
        enumeration: EnumerationConfig | None = None,
        record: bool = True,
    ) -> QueryOutcome:
        """Answer a conjunctive query over the wrangled result.

        ``mode="certain"`` computes the answers that hold in *every* repair
        of the unrepaired base tables (the pre-repair, pre-feedback
        snapshot kept by the incremental engine) — rewritable queries run
        as datalog over the dirty tables, everything else falls back to
        bounded repair enumeration governed by ``enumeration``.
        ``mode="repaired"`` evaluates plainly over the current result;
        ``mode="both"`` computes the two and records their agreement as a
        quality signal (see ``CQA_AGREEMENT_ARTIFACT_KEY`` and the
        ``answer_agreement`` criterion), unless ``record=False``.

        Atoms may name the target relation (or the result relation) for the
        wrangled result; any other relation resolves from the catalog
        (lookup/reference/source tables, treated as consistent unless
        ``keys`` says otherwise). ``keys`` overrides the primary keys; by
        default they are derived from the exact CFDs learned by the
        pipeline.
        """
        if mode not in ("certain", "repaired", "both"):
            raise ValueError(f"unknown query mode {mode!r}; use certain, repaired or both")
        parsed = parse_query(query) if isinstance(query, str) else query
        text = str(parsed)
        schemas, certain_tables, repaired_tables, details = self._query_environment(parsed)
        resolved_keys = self._resolve_query_keys(schemas, keys)
        certain = repaired = None
        method = rewritable = agreement = None
        reason = ""
        exact = True
        if mode != "repaired":
            outcome = answer_certain(
                parsed, schemas, certain_tables, resolved_keys, enumeration=enumeration
            )
            certain = outcome.answers
            method = outcome.method
            rewritable = outcome.classification.rewritable
            reason = outcome.classification.reason
            exact = outcome.exact
            if outcome.enumeration is not None:
                details.update(
                    repairs_evaluated=outcome.enumeration.repairs_evaluated,
                    total_repairs=outcome.enumeration.total_repairs,
                    truncated=outcome.enumeration.truncated,
                    timed_out=outcome.enumeration.timed_out,
                )
        if mode != "certain":
            repaired = query_answers(parsed, schemas, repaired_tables)
        if certain is not None and repaired is not None:
            union = set(certain) | set(repaired)
            overlap = set(certain) & set(repaired)
            agreement = 1.0 if not union else len(overlap) / len(union)
            if record:
                self._record_query_agreement(text, certain, repaired, method, agreement)
        return QueryOutcome(
            query=text,
            mode=mode,
            certain=certain,
            repaired=repaired,
            method=method,
            rewritable=rewritable,
            reason=reason,
            keys=resolved_keys,
            agreement=agreement,
            exact=exact,
            details=details,
        )

    def _query_environment(self, parsed: ConjunctiveQuery):
        """Resolve every query relation to rows and schemas, in both modes.

        The target (or result) relation binds to the unrepaired base
        snapshot for certain semantics and to the current result for
        repaired semantics; catalog relations are the same in both.
        """
        target = self._require_target()
        result = self.result()
        if result is None:
            raise ValueError(
                "no result has been materialised yet; run the pipeline before querying"
            )
        result_name = result_relation_name(target)
        schemas: dict[str, tuple[str, ...]] = {}
        certain_tables: dict[str, list[tuple]] = {}
        repaired_tables: dict[str, list[tuple]] = {}
        details: dict[str, Any] = {}
        for relation in dict.fromkeys(parsed.relations()):
            if relation in (target, result_name):
                schemas[relation] = tuple(result.schema.attribute_names)
                repaired_tables[relation] = result.tuples()
                rows, note = self._unrepaired_rows(result)
                certain_tables[relation] = rows
                if note:
                    details["base_note"] = note
            else:
                if not self._kb.has_table(relation):
                    raise ValueError(f"unknown relation {relation!r} in query")
                table = self._kb.get_table(relation)
                schemas[relation] = tuple(table.schema.attribute_names)
                repaired_tables[relation] = table.tuples()
                certain_tables[relation] = table.tuples()
        return schemas, certain_tables, repaired_tables, details

    def _unrepaired_rows(self, result: Table) -> tuple[list[tuple], str]:
        """The pre-repair, pre-feedback rows of the result relation.

        Falls back to the current (repaired) result with a note when the
        incremental engine has no trustworthy base snapshot — certain
        answers are then certain with respect to that instance instead.
        """
        state = self._incremental.get(result.name)
        if state is None or not state.ready:
            return result.tuples(), "unrepaired snapshot unavailable; queried the current result"
        if tuple(state.schema.attribute_names) != tuple(result.schema.attribute_names):
            return result.tuples(), "base snapshot schema is stale; queried the current result"
        rows = [state.base[key] for key in state.order if key in state.base]
        if not rows:
            return result.tuples(), "base snapshot empty; queried the current result"
        return rows, ""

    def _resolve_query_keys(
        self,
        schemas: Mapping[str, Sequence[str]],
        keys: Mapping[str, Sequence[str] | str] | None,
    ) -> dict[str, tuple[str, ...]]:
        """Explicit keys win; otherwise derive them from exact learned CFDs.

        Keys declared under the target relation name also cover the result
        relation name and vice versa, matching atom-name aliasing.
        """
        target = self._target_relation
        result_name = result_relation_name(target) if target is not None else None
        aliases = {target: result_name, result_name: target}
        if keys is not None:
            resolved: dict[str, tuple[str, ...]] = {}
            for relation, attrs in dict(keys).items():
                key = (attrs,) if isinstance(attrs, str) else tuple(attrs)
                if not key:
                    continue
                name = relation
                if name not in schemas and aliases.get(name) in schemas:
                    name = aliases[name]
                resolved[name] = key
            return resolved
        learned = self._kb.get_artifact(CFD_ARTIFACT_KEY)
        if learned is None or not learned.cfds:
            return {}
        cfd_schemas = dict(schemas)
        for name, alias in aliases.items():
            if alias in cfd_schemas and name is not None and name not in cfd_schemas:
                cfd_schemas[name] = cfd_schemas[alias]
        underscored = {
            attribute
            for attrs in schemas.values()
            for attribute in attrs
            if attribute.startswith("_")
        }
        exclude = tuple(sorted(underscored)) or ("_row_id",)
        derived = keys_from_cfds(learned.cfds, cfd_schemas, exclude=exclude)
        resolved = {}
        for relation, key in derived.items():
            name = relation
            if name not in schemas and aliases.get(name) in schemas:
                name = aliases[name]
            if name in schemas:
                resolved[name] = key
        return resolved

    def _record_query_agreement(
        self, text: str, certain, repaired, method, agreement: float
    ) -> None:
        """Fold one ``mode="both"`` observation into the quality artifacts."""
        result = self.result()
        if result is not None:
            stash = quality_stats_stash(self._kb, create=False)
            entry = stash.get(result.name) if stash is not None else None
            if entry is not None:
                if entry.stats.answer_agreement is None:
                    entry.stats.answer_agreement = AnswerAgreementStats()
                entry.stats.answer_agreement.observe(text, certain, repaired)
        records = dict(self._kb.get_artifact(CQA_AGREEMENT_ARTIFACT_KEY) or {})
        records[text] = {
            "agreement": agreement,
            "certain_answers": len(set(certain)),
            "repaired_answers": len(set(repaired)),
            "method": method,
        }
        self._kb.store_artifact(CQA_AGREEMENT_ARTIFACT_KEY, records)

    def evaluate(
        self,
        *,
        ground_truth: Table | None = None,
        key: Sequence[str] = ("postcode", "price"),
        use_stats: bool | None = None,
    ) -> QualityReport | None:
        """Quality of the current result.

        With ``ground_truth`` the result is scored against it (accuracy and
        relevance use the ground truth); otherwise whatever reference/master
        data the data context provides is used — mirroring what the system
        itself can know.

        When the session's maintained quality statistics exactly reflect
        the current result (freshly patched by the incremental engine, or
        just recomputed by the metric transducer) and the evaluation
        context matches, the report is finalised from them without
        rescanning the table. ``use_stats=False`` forces the full
        recomputation (the validation harness compares both).
        """
        table = self.result()
        if table is None:
            return None
        learned = self._kb.get_artifact(CFD_ARTIFACT_KEY)
        cfds = learned.cfds if learned else []
        witnesses = learned.witnesses if learned else {}
        if ground_truth is not None:
            shared_key = [k for k in key if k in table.schema and k in ground_truth.schema]
            return evaluate_quality(
                table,
                reference=ground_truth,
                reference_key=shared_key,
                cfds=[cfd for cfd in cfds if cfd.rhs in table.schema],
                witnesses=witnesses,
                master=ground_truth,
                master_key=shared_key,
            )
        reference, reference_key = self._context_table(Predicates.CONTEXT_REFERENCE)
        master, master_key = self._context_table(Predicates.CONTEXT_MASTER)
        filtered_cfds = [cfd for cfd in cfds if cfd.rhs in table.schema]
        if use_stats is not False:
            report = self._stats_report(
                table, reference, reference_key, filtered_cfds, master, master_key
            )
            if report is not None:
                return report
        report = evaluate_quality(
            table,
            reference=reference,
            reference_key=reference_key,
            cfds=filtered_cfds,
            witnesses=witnesses,
            master=master,
            master_key=master_key,
        )
        return self._with_answer_agreement(table, report)

    def _with_answer_agreement(self, table: Table, report: QualityReport) -> QualityReport:
        """Graft the certain-vs-repaired agreement onto a recomputed report.

        ``evaluate_quality`` scans rows and knows nothing about queries, so
        the recomputation path would always drop the ``answer_agreement``
        criterion observed by :meth:`query`. Its observations are keyed by
        query text — independent of row-level stash syncing — so even a
        stale stash entry carries them faithfully.
        """
        stash = quality_stats_stash(self._kb, create=False)
        entry = stash.get(table.name) if stash is not None else None
        if entry is None or entry.stats.answer_agreement is None:
            return report
        return replace(report, answer_agreement=entry.stats.answer_agreement.value())

    def _stats_report(
        self, table: Table, reference, reference_key, cfds, master, master_key
    ) -> QualityReport | None:
        """The maintained-statistics report, or None when it cannot be trusted.

        Trust requires the stash to be exactly synced with the knowledge
        base (nothing mutated since the engine patched or the transducer
        ran) *and* the entry to have been built against the very same
        evaluation inputs this evaluate() call resolved — same reference
        and master tables, same join keys, same CFD list.
        """
        stash = quality_stats_stash(self._kb, create=False)
        if stash is None or not stash.fresh(self._kb, table.name):
            return None
        entry = stash.get(table.name)
        stats = entry.stats
        if stats.row_count != len(table):
            return None
        want_reference = reference.name if reference is not None and reference_key else None
        want_master = master.name if master is not None and master_key else None
        if entry.reference_name != want_reference or entry.master_name != want_master:
            return None
        have_reference_key = stats.accuracy.key if stats.accuracy is not None else None
        if want_reference is not None and have_reference_key != tuple(reference_key):
            return None
        have_master_key = stats.relevance.key if stats.relevance is not None else None
        if want_master is not None and have_master_key != tuple(master_key):
            return None
        if stats.consistency.cfds != tuple(cfds):
            return None
        return stats.finalise()

    def describe_transducers(self) -> list[dict]:
        """Table-1-style description of the registered transducers."""
        return self._registry.describe()

    def manual_actions(self) -> int:
        """How many manual configuration actions the user has performed.

        Counts the interactions of Figure 3: registering sources and the
        target schema, each data-context binding, each feedback annotation
        and each pairwise preference. Used by the cost-effectiveness
        benchmark as the effort proxy.
        """
        actions = len(self._kb.facts(Predicates.DATASET))
        actions += len(self._kb.target_relations())
        actions += len(self._kb.facts(Predicates.DATA_CONTEXT))
        actions += len(self._kb.facts(Predicates.FEEDBACK))
        actions += len(self._kb.facts(Predicates.PREFERENCE))
        return actions

    # -- internals --------------------------------------------------------------------------

    def _require_target(self) -> str:
        if self._target_relation is None:
            raise ValueError("no target schema has been set; call set_target_schema first")
        return self._target_relation

    def _context_table(self, kind: str):
        for context_name, context_kind, target_relation in self._kb.facts(Predicates.DATA_CONTEXT):
            if context_kind != kind or not self._kb.has_table(context_name):
                continue
            if self._target_relation is not None and target_relation != self._target_relation:
                continue
            table = self._kb.get_table(context_name)
            target = self._kb.schema_of(target_relation)
            shared = [name for name in table.schema.attribute_names if name in target]
            if not shared:
                continue
            if kind == Predicates.CONTEXT_MASTER:
                key = shared
            else:
                key = [name for name in shared if "postcode" in name.lower()] or shared[:1]
            return table, key
        return None, []
