"""The high-level pay-as-you-go wrangling facade and the batch runner."""

from repro.wrangler.batch import (
    BatchConfig,
    BatchReport,
    ScenarioRunResult,
    iter_run,
    run_batch,
    run_scenario,
    wrangle_scenario,
)
from repro.wrangler.config import WranglerConfig
from repro.wrangler.pipeline import QueryOutcome, Wrangler, build_default_registry
from repro.wrangler.result import WranglingResult

__all__ = [
    "QueryOutcome",
    "Wrangler",
    "WranglerConfig",
    "WranglingResult",
    "build_default_registry",
    "BatchConfig",
    "BatchReport",
    "ScenarioRunResult",
    "iter_run",
    "run_batch",
    "run_scenario",
    "wrangle_scenario",
]
