"""Configuration of the high-level wrangling pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fusion.duplicates import DuplicateDetectorConfig
from repro.mapping.generation import MappingGeneratorConfig
from repro.matching.instance_matching import InstanceMatcherConfig
from repro.matching.schema_matching import SchemaMatcherConfig
from repro.quality.cfd_learning import CFDLearnerConfig

__all__ = ["WranglerConfig"]


@dataclass(frozen=True)
class WranglerConfig:
    """Tuning knobs for a :class:`~repro.wrangler.pipeline.Wrangler` session.

    Component-specific configurations are passed through to the individual
    transducers; ``max_steps`` bounds each orchestration run (a safety net —
    a well-behaved session quiesces long before it).

    This is the canonical home of the session-level knobs that used to be
    re-spelt across configs: provenance/incremental toggles, the step
    budget and the session seed. :class:`~repro.wrangler.batch.BatchConfig`
    nests one of these; scenario *generation* seeds stay with
    :class:`~repro.scenarios.synth.SynthConfig`.
    """

    max_steps: int = 200
    #: Session-level seed: the default for simulated feedback sampling and
    #: any other stochastic choice a session makes (scenario generation has
    #: its own seed in ``SynthConfig``).
    seed: int = 0
    schema_matcher: SchemaMatcherConfig = field(default_factory=SchemaMatcherConfig)
    instance_matcher: InstanceMatcherConfig = field(default_factory=InstanceMatcherConfig)
    mapping_generator: MappingGeneratorConfig = field(default_factory=MappingGeneratorConfig)
    cfd_learner: CFDLearnerConfig = field(default_factory=CFDLearnerConfig)
    duplicate_detector: DuplicateDetectorConfig = field(default_factory=DuplicateDetectorConfig)
    #: Whether the fusion transducers are registered (duplicate detection and
    #: fusion are optional in small/clean scenarios).
    enable_fusion: bool = True
    #: Whether the repair transducer is registered.
    enable_repair: bool = True
    #: Whether source-selection is registered (informational in the demo).
    enable_source_selection: bool = True
    #: Whether why-provenance is recorded for every materialised tuple
    #: (lineage-aware explanations and feedback). Default on; switch off to
    #: benchmark the pipeline without lineage overhead.
    track_provenance: bool = True
    #: Whether the incremental re-wrangling engine keeps pipeline snapshots
    #: so :meth:`~repro.wrangler.pipeline.Wrangler.apply_feedback` can patch
    #: results in place instead of re-running the whole pipeline. Requires
    #: provenance tracking; the engine falls back to full runs without it.
    enable_incremental: bool = True
