"""Duplicate detection over wrangling results.

After the union of overlapping sources (Rightmove and Onthemarket list many
of the same properties), the result contains near-duplicate rows. The
detector blocks on a cheap key, scores candidate pairs with a per-attribute
similarity, and reports pairs above a threshold — the input the fusion
component needs (the paper mentions "a data fusion transducer may start to
evaluate when duplicates have been detected").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.fusion.blocking import block_by_attributes, candidate_pairs
from repro.matching.similarity import jaro_winkler_similarity
from repro.relational.table import Row, Table
from repro.relational.types import is_null

__all__ = [
    "DuplicatePair",
    "DuplicateDetectorConfig",
    "DuplicateDetector",
    "cluster_row_keys",
]


@dataclass(frozen=True)
class DuplicatePair:
    """Two row indexes judged to refer to the same real-world entity."""

    left_index: int
    right_index: int
    score: float

    def as_tuple(self) -> tuple[int, int]:
        """The pair as an (i, j) tuple with i < j."""
        return (min(self.left_index, self.right_index),
                max(self.left_index, self.right_index))


@dataclass(frozen=True)
class DuplicateDetectorConfig:
    """Tuning knobs of duplicate detection."""

    #: Attributes used for blocking (fall back to comparing all pairs when
    #: none of them exist in the table).
    blocking_attributes: tuple[str, ...] = ("postcode",)
    #: Attributes compared to score a candidate pair (missing ones ignored).
    #: Price and description are the discriminating attributes in the
    #: real-estate domain: two listings of the *same* property agree on them
    #: almost exactly, while different properties on the same street do not.
    comparison_attributes: tuple[str, ...] = (
        "street",
        "price",
        "bedrooms",
        "type",
        "description",
    )
    #: Pairs scoring at or above this are duplicates. The default is
    #: deliberately conservative: false merges (fusing two different
    #: properties) damage accuracy far more than missed duplicates damage
    #: conciseness.
    threshold: float = 0.92
    #: Relative tolerance for numeric attribute agreement.
    numeric_tolerance: float = 0.01
    #: Oversized blocks are skipped.
    max_block_size: int = 200


class DuplicateDetector:
    """Finds duplicate row pairs within one table."""

    def __init__(self, config: DuplicateDetectorConfig | None = None):
        self._config = config or DuplicateDetectorConfig()

    @property
    def config(self) -> DuplicateDetectorConfig:
        """The detector configuration."""
        return self._config

    def detect(self, table: Table) -> list[DuplicatePair]:
        """All duplicate pairs in ``table`` (row-index pairs with scores)."""
        config = self._config
        blocking = [name for name in config.blocking_attributes if name in table.schema]
        if blocking:
            blocks = block_by_attributes(table, blocking)
            pairs = candidate_pairs(blocks, max_block_size=config.max_block_size)
        else:
            indexes = list(range(len(table)))
            pairs = [(i, j) for i in indexes for j in indexes if i < j]
        rows = table.rows()
        duplicates = []
        for left_index, right_index in pairs:
            score = self.pair_similarity(rows[left_index], rows[right_index])
            if score >= config.threshold:
                duplicates.append(DuplicatePair(left_index, right_index, round(score, 6)))
        return duplicates

    def pair_similarity(self, left: Row, right: Row) -> float:
        """Mean per-attribute similarity over the comparison attributes.

        Attributes missing from the schema are skipped; attributes where
        either side is NULL contribute a neutral 0.5 (absence of evidence).
        """
        config = self._config
        scores = []
        for attribute in config.comparison_attributes:
            if attribute not in left.schema or attribute not in right.schema:
                continue
            left_value, right_value = left.get(attribute), right.get(attribute)
            if is_null(left_value) or is_null(right_value):
                scores.append(0.5)
                continue
            scores.append(self._value_similarity(left_value, right_value))
        if not scores:
            return 0.0
        return sum(scores) / len(scores)

    def _value_similarity(self, left, right) -> float:
        if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
                and not isinstance(left, bool) and not isinstance(right, bool):
            left_value, right_value = float(left), float(right)
            if left_value == right_value:
                return 1.0
            magnitude = max(abs(left_value), abs(right_value))
            if magnitude == 0:
                return 1.0
            difference = abs(left_value - right_value) / magnitude
            if difference <= self._config.numeric_tolerance:
                return 1.0 - difference / max(self._config.numeric_tolerance, 1e-9) * 0.5
            return max(0.0, 1.0 - difference)
        return jaro_winkler_similarity(str(left).strip().lower(), str(right).strip().lower())


def cluster_pairs(pairs: Sequence[DuplicatePair], size: int) -> list[list[int]]:
    """Union-find clustering of duplicate pairs into entity clusters.

    Returns only clusters with at least two members; ``size`` is the number
    of rows in the underlying table.
    """
    parent = list(range(size))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(left: int, right: int) -> None:
        root_left, root_right = find(left), find(right)
        if root_left != root_right:
            parent[max(root_left, root_right)] = min(root_left, root_right)

    for pair in pairs:
        union(pair.left_index, pair.right_index)
    clusters: dict[int, list[int]] = {}
    for index in range(size):
        clusters.setdefault(find(index), []).append(index)
    return [sorted(members) for members in clusters.values() if len(members) > 1]


def cluster_row_keys(table: Table, pairs: Sequence[DuplicatePair]) -> list[list[str]]:
    """Duplicate clusters as stable row keys instead of positional indexes.

    Row keys (see :meth:`~repro.relational.table.Table.row_keys`) are what
    the provenance store and feedback annotations are keyed on, so this is
    the form lineage consumers want clusters in — positional indexes go
    stale as soon as fusion rewrites the table.
    """
    keys = table.row_keys()
    return [[keys[member] for member in members]
            for members in cluster_pairs(pairs, len(table))]
