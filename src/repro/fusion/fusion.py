"""Data fusion: merging duplicate rows into single consolidated records.

"A data fusion transducer may start to evaluate when duplicates have been
detected" (§2). Fusion collapses each duplicate cluster into one row,
resolving attribute conflicts with a configurable policy:

- ``prefer_non_null`` — the first non-null value wins (default);
- ``majority`` — the most frequent non-null value wins;
- ``min`` / ``max`` — for numeric attributes (e.g. keep the lowest price);
- ``longest`` — the longest string (useful for descriptions).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.fusion.duplicates import DuplicatePair, cluster_pairs
from repro.relational.table import Table
from repro.relational.types import is_null

__all__ = ["FusionPolicy", "FusionResult", "DataFuser"]


class FusionPolicy:
    """Names of the supported conflict-resolution policies."""

    PREFER_NON_NULL = "prefer_non_null"
    MAJORITY = "majority"
    MIN = "min"
    MAX = "max"
    LONGEST = "longest"

    ALL = (PREFER_NON_NULL, MAJORITY, MIN, MAX, LONGEST)


@dataclass
class FusionResult:
    """The fused table plus bookkeeping about what was merged."""

    table: Table
    clusters_fused: int
    rows_removed: int
    conflicts_resolved: int


class DataFuser:
    """Fuses duplicate clusters according to per-attribute policies."""

    def __init__(self, *, default_policy: str = FusionPolicy.PREFER_NON_NULL,
                 attribute_policies: Mapping[str, str] | None = None):
        if default_policy not in FusionPolicy.ALL:
            raise ValueError(f"unknown fusion policy {default_policy!r}")
        for attribute, policy in (attribute_policies or {}).items():
            if policy not in FusionPolicy.ALL:
                raise ValueError(f"unknown fusion policy {policy!r} for {attribute!r}")
        self._default_policy = default_policy
        self._attribute_policies = dict(attribute_policies or {})

    def fuse(self, table: Table, duplicates: Sequence[DuplicatePair]) -> FusionResult:
        """Collapse duplicate clusters of ``table`` into single rows.

        Non-duplicate rows are kept unchanged and row order is preserved
        (each cluster is emitted at the position of its first member).
        """
        if not duplicates:
            return FusionResult(table=table, clusters_fused=0, rows_removed=0,
                                conflicts_resolved=0)
        clusters = cluster_pairs(duplicates, len(table))
        in_cluster: dict[int, int] = {}
        for cluster_id, members in enumerate(clusters):
            for member in members:
                in_cluster[member] = cluster_id
        rows = table.tuples()
        names = table.schema.attribute_names
        emitted_clusters: set[int] = set()
        fused_rows: list[tuple] = []
        conflicts = 0
        for index, values in enumerate(rows):
            cluster_id = in_cluster.get(index)
            if cluster_id is None:
                fused_rows.append(values)
                continue
            if cluster_id in emitted_clusters:
                continue
            emitted_clusters.add(cluster_id)
            members = clusters[cluster_id]
            merged, cluster_conflicts = self._merge(names, [rows[m] for m in members])
            conflicts += cluster_conflicts
            fused_rows.append(merged)
        fused_table = table.replace_rows(fused_rows)
        return FusionResult(
            table=fused_table,
            clusters_fused=len(clusters),
            rows_removed=len(table) - len(fused_table),
            conflicts_resolved=conflicts,
        )

    def _merge(self, names: Sequence[str], member_rows: list[tuple]) -> tuple[tuple, int]:
        merged = []
        conflicts = 0
        for position, name in enumerate(names):
            values = [row[position] for row in member_rows]
            present = [value for value in values if not is_null(value)]
            distinct = {self._normalise(value) for value in present}
            if len(distinct) > 1:
                conflicts += 1
            merged.append(self._resolve(name, present))
        return tuple(merged), conflicts

    def _resolve(self, attribute: str, values: list[Any]) -> Any:
        if not values:
            return None
        policy = self._attribute_policies.get(attribute, self._default_policy)
        if policy == FusionPolicy.PREFER_NON_NULL:
            return values[0]
        if policy == FusionPolicy.MAJORITY:
            counts = Counter(self._normalise(value) for value in values)
            winner, _count = counts.most_common(1)[0]
            for value in values:
                if self._normalise(value) == winner:
                    return value
            return values[0]
        if policy in (FusionPolicy.MIN, FusionPolicy.MAX):
            numeric = [value for value in values
                       if isinstance(value, (int, float)) and not isinstance(value, bool)]
            if not numeric:
                return values[0]
            return min(numeric) if policy == FusionPolicy.MIN else max(numeric)
        if policy == FusionPolicy.LONGEST:
            return max(values, key=lambda value: len(str(value)))
        return values[0]

    @staticmethod
    def _normalise(value: Any) -> Any:
        if isinstance(value, str):
            return value.strip().lower()
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value
