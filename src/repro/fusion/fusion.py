"""Data fusion: merging duplicate rows into single consolidated records.

"A data fusion transducer may start to evaluate when duplicates have been
detected" (§2). Fusion collapses each duplicate cluster into one row,
resolving attribute conflicts with a configurable policy:

- ``prefer_non_null`` — the first non-null value wins (default);
- ``majority`` — the most frequent non-null value wins;
- ``min`` / ``max`` — for numeric attributes (e.g. keep the lowest price);
- ``longest`` — the longest string (useful for descriptions).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.fusion.duplicates import DuplicatePair, cluster_pairs
from repro.provenance.model import OPERATOR_FUSION, ProvenanceStore
from repro.relational.table import ROW_KEY_ATTRIBUTE, Table
from repro.relational.types import is_null

__all__ = ["FusionPolicy", "FusionResult", "DataFuser"]


class FusionPolicy:
    """Names of the supported conflict-resolution policies."""

    PREFER_NON_NULL = "prefer_non_null"
    MAJORITY = "majority"
    MIN = "min"
    MAX = "max"
    LONGEST = "longest"

    ALL = (PREFER_NON_NULL, MAJORITY, MIN, MAX, LONGEST)


@dataclass
class FusionResult:
    """The fused table plus bookkeeping about what was merged."""

    table: Table
    clusters_fused: int
    rows_removed: int
    conflicts_resolved: int


class DataFuser:
    """Fuses duplicate clusters according to per-attribute policies."""

    def __init__(
        self,
        *,
        default_policy: str = FusionPolicy.PREFER_NON_NULL,
        attribute_policies: Mapping[str, str] | None = None,
    ):
        if default_policy not in FusionPolicy.ALL:
            raise ValueError(f"unknown fusion policy {default_policy!r}")
        for attribute, policy in (attribute_policies or {}).items():
            if policy not in FusionPolicy.ALL:
                raise ValueError(f"unknown fusion policy {policy!r} for {attribute!r}")
        self._default_policy = default_policy
        self._attribute_policies = dict(attribute_policies or {})

    def fuse(
        self,
        table: Table,
        duplicates: Sequence[DuplicatePair],
        *,
        provenance: ProvenanceStore | None = None,
    ) -> FusionResult:
        """Collapse duplicate clusters of ``table`` into single rows.

        Non-duplicate rows are kept unchanged and row order is preserved
        (each cluster is emitted at the position of its first member). With
        a provenance store, the merged members' lineage is unioned into the
        surviving row (one why-provenance witness per duplicate) and every
        conflicting cell records which members supplied the winning value.
        """
        if not duplicates:
            return FusionResult(table=table, clusters_fused=0, rows_removed=0,
                                conflicts_resolved=0)
        clusters = cluster_pairs(duplicates, len(table))
        in_cluster: dict[int, int] = {}
        for cluster_id, members in enumerate(clusters):
            for member in members:
                in_cluster[member] = cluster_id
        rows = table.tuples()
        names = table.schema.attribute_names
        track = provenance is not None and provenance.enabled
        row_keys = table.row_keys() if track else []
        emitted_clusters: set[int] = set()
        fused_rows: list[tuple] = []
        conflicts = 0
        for index, values in enumerate(rows):
            cluster_id = in_cluster.get(index)
            if cluster_id is None:
                fused_rows.append(values)
                continue
            if cluster_id in emitted_clusters:
                continue
            emitted_clusters.add(cluster_id)
            members = clusters[cluster_id]
            merged, cluster_conflicts, winners = self._merge(names, [rows[m] for m in members])
            conflicts += cluster_conflicts
            fused_rows.append(merged)
            if track:
                self._record_merge(
                    provenance, table.name, names, merged, members, row_keys, winners
                )
        fused_table = table.replace_rows(fused_rows)
        return FusionResult(
            table=fused_table,
            clusters_fused=len(clusters),
            rows_removed=len(table) - len(fused_table),
            conflicts_resolved=conflicts,
        )

    def fuse_cluster(
        self,
        relation: str,
        names: Sequence[str],
        member_rows: Sequence[tuple],
        member_keys: Sequence[str],
        *,
        provenance: ProvenanceStore | None = None,
    ) -> tuple[tuple, int]:
        """Fuse one duplicate cluster outside a full-table pass.

        ``member_rows`` must be in table order (the first member is the
        surviving position). Returns ``(merged row, conflicts resolved)``;
        with a provenance store, the members' lineage is merged and per-cell
        winners recorded exactly as :meth:`fuse` does. This is the delta
        path of incremental re-wrangling: only dirty clusters re-fuse.
        """
        merged, conflicts, winners = self._merge(names, list(member_rows))
        if provenance is not None and provenance.enabled:
            self._record_merge(
                provenance,
                relation,
                names,
                merged,
                list(range(len(member_keys))),
                list(member_keys),
                winners,
            )
        return merged, conflicts

    def _record_merge(
        self,
        provenance: ProvenanceStore,
        relation: str,
        names: Sequence[str],
        merged: tuple,
        members: Sequence[int],
        row_keys: Sequence[str],
        winners: Mapping[int, list[int]],
    ) -> None:
        """Record the lineage of one fused cluster row."""
        member_keys = [row_keys[m] for m in members]
        if ROW_KEY_ATTRIBUTE in names:
            kept_value = merged[list(names).index(ROW_KEY_ATTRIBUTE)]
            kept_key = str(kept_value) if kept_value is not None else member_keys[0]
        else:
            kept_key = member_keys[0]
        member_lineages = {
            key: provenance.tuple_lineage(relation, key) for key in member_keys
        }
        provenance.merge_tuples(
            relation, kept_key,
            [key for key in member_keys if key != kept_key],
            operator=OPERATOR_FUSION)
        # Per-cell lineage of the fused row: conflicting cells are witnessed
        # by the members whose value won, agreeing cells by every member.
        # The kept tuple's shared cell_sources map is per-*mapping* and
        # cannot express cross-member support, so fused rows carry explicit
        # overrides (clusters are a small fraction of any result, so this
        # stays bounded).
        all_members = list(range(len(member_keys)))
        for position, name in enumerate(names):
            if name.startswith("_"):
                continue
            conflict = position in winners
            contributing = winners[position] if conflict else all_members
            witnesses: set = set()
            for member_position in contributing:
                lineage = member_lineages.get(member_keys[member_position])
                if lineage is not None:
                    witnesses.update(lineage.cell(name).witnesses)
            policy = self._attribute_policies.get(name, self._default_policy)
            provenance.record_cell(
                relation,
                kept_key,
                name,
                operator=OPERATOR_FUSION,
                witnesses=witnesses,
                detail=policy if conflict else None,
            )

    def _merge(
        self, names: Sequence[str], member_rows: list[tuple]
    ) -> tuple[tuple, int, dict[int, list[int]]]:
        """Merge one cluster; returns (row, conflict count, conflict winners).

        ``winners`` maps conflicting attribute positions to the member
        positions whose (normalised) value matches the resolved one — the
        cell-level why-provenance of the conflict resolution.
        """
        merged = []
        conflicts = 0
        winners: dict[int, list[int]] = {}
        for position, name in enumerate(names):
            values = [row[position] for row in member_rows]
            present = [value for value in values if not is_null(value)]
            distinct = {self._normalise(value) for value in present}
            resolved = self._resolve(name, present)
            if len(distinct) > 1:
                conflicts += 1
                resolved_key = self._normalise(resolved)
                winners[position] = [
                    member_position for member_position, value in enumerate(values)
                    if not is_null(value) and self._normalise(value) == resolved_key]
            merged.append(resolved)
        return tuple(merged), conflicts, winners

    def _resolve(self, attribute: str, values: list[Any]) -> Any:
        if not values:
            return None
        policy = self._attribute_policies.get(attribute, self._default_policy)
        if policy == FusionPolicy.PREFER_NON_NULL:
            return values[0]
        if policy == FusionPolicy.MAJORITY:
            counts = Counter(self._normalise(value) for value in values)
            winner, _count = counts.most_common(1)[0]
            for value in values:
                if self._normalise(value) == winner:
                    return value
            return values[0]
        if policy in (FusionPolicy.MIN, FusionPolicy.MAX):
            numeric = [
                value
                for value in values
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
            if not numeric:
                return values[0]
            return min(numeric) if policy == FusionPolicy.MIN else max(numeric)
        if policy == FusionPolicy.LONGEST:
            return max(values, key=lambda value: len(str(value)))
        return values[0]

    @staticmethod
    def _normalise(value: Any) -> Any:
        if isinstance(value, str):
            return value.strip().lower()
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value
