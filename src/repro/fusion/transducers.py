"""Fusion transducers: duplicate detection and data fusion.

§2 of the paper uses these as the running example of dependency-driven
activation: "a data fusion transducer may start to evaluate when duplicates
have been detected". Duplicate detection needs a materialised result; data
fusion needs ``duplicate`` facts.
"""

from __future__ import annotations

from repro.core.facts import Predicates, duplicate_fact
from repro.core.knowledge_base import KnowledgeBase
from repro.core.transducer import Activity, Transducer, TransducerResult
from repro.fusion.duplicates import DuplicateDetector, DuplicateDetectorConfig, DuplicatePair
from repro.fusion.fusion import DataFuser
from repro.incremental.state import incremental_state
from repro.mapping.model import PROVENANCE_ROW_ID
from repro.provenance.model import provenance_store

__all__ = ["DUPLICATES_ARTIFACT_KEY", "DuplicateDetectionTransducer", "DataFusionTransducer"]

#: Artifact key for detected duplicate pairs per result relation.
DUPLICATES_ARTIFACT_KEY = "duplicate_pairs"


class DuplicateDetectionTransducer(Transducer):
    """Detects duplicate rows in materialised results."""

    name = "duplicate_detection"
    activity = Activity.FUSION
    priority = 10
    input_dependencies = ("result(R, M, N)",)

    def __init__(self, config: DuplicateDetectorConfig | None = None):
        super().__init__()
        self._detector = DuplicateDetector(config)

    @property
    def detector(self) -> DuplicateDetector:
        """The configured detector (shared with the incremental engine)."""
        return self._detector

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        added = 0
        all_pairs: dict[str, list[DuplicatePair]] = {}
        state = incremental_state(kb, create=False)
        for relation, _mapping_id, _rows in kb.facts(Predicates.RESULT):
            if not kb.has_table(relation):
                continue
            table = kb.get_table(relation)
            # Detection always runs against the *current* table, so any
            # previously asserted pairs are stale (their row values may have
            # been re-materialised since). Retracting them before asserting
            # the fresh set keeps the ``duplicate`` predicate in step with
            # the table — without this, a re-materialised result re-detects
            # the same pairs, nothing is new, and data fusion never re-runs.
            kb.retract_where(Predicates.DUPLICATE, p0=relation)
            pairs = self._detector.detect(table)
            all_pairs[relation] = pairs
            has_row_id = PROVENANCE_ROW_ID in table.schema
            rows = table.rows()
            pair_keys: dict[tuple[str, str], float] = {}
            for pair in pairs:
                left_key = (
                    str(rows[pair.left_index][PROVENANCE_ROW_ID])
                    if has_row_id
                    else str(pair.left_index)
                )
                right_key = (
                    str(rows[pair.right_index][PROVENANCE_ROW_ID])
                    if has_row_id
                    else str(pair.right_index)
                )
                pair_keys[(left_key, right_key)] = pair.score
                added += int(
                    kb.assert_tuple(
                        duplicate_fact(relation, left_key, relation, right_key, pair.score)
                    )
                )
            if state is not None and has_row_id:
                state.observe_pairs(table, pair_keys)
        kb.store_artifact(DUPLICATES_ARTIFACT_KEY, all_pairs)
        total = sum(len(pairs) for pairs in all_pairs.values())
        return TransducerResult(
            facts_added=added,
            notes=f"detected {total} duplicate pairs across {len(all_pairs)} results",
            details={"pairs": {rel: len(pairs) for rel, pairs in all_pairs.items()}},
        )


class DataFusionTransducer(Transducer):
    """Fuses detected duplicates in materialised results."""

    name = "data_fusion"
    activity = Activity.FUSION
    priority = 20
    input_dependencies = ("duplicate(R, K1, R, K2, S)",)

    def __init__(self, fuser: DataFuser | None = None):
        super().__init__()
        self._fuser = fuser or DataFuser()

    @property
    def fuser(self) -> DataFuser:
        """The configured fuser (shared with the incremental engine)."""
        return self._fuser

    def run(self, kb: KnowledgeBase) -> TransducerResult:
        all_pairs = kb.get_artifact(DUPLICATES_ARTIFACT_KEY, {})
        fused_tables = []
        rows_removed = 0
        store = provenance_store(kb)
        state = incremental_state(kb, create=False)
        for relation, pairs in all_pairs.items():
            if not pairs or not kb.has_table(relation):
                continue
            table = kb.get_table(relation)
            result = self._fuser.fuse(table, pairs, provenance=store)
            if result.rows_removed == 0:
                continue
            kb.update_table(result.table)
            if state is not None:
                state.observe_fused(result.table)
            # Refresh the result fact so downstream quality metrics notice
            # that the materialised result changed.
            for row in list(kb.facts(Predicates.RESULT)):
                if row[0] == relation:
                    kb.retract_fact(Predicates.RESULT, *row)
                    kb.assert_fact(Predicates.RESULT, relation, row[1], len(result.table))
            fused_tables.append(relation)
            rows_removed += result.rows_removed
        # The fused table invalidates the detected pairs (indexes changed).
        if fused_tables:
            kb.store_artifact(DUPLICATES_ARTIFACT_KEY, {rel: [] for rel in all_pairs})
        return TransducerResult(
            facts_added=0,
            tables_written=fused_tables,
            notes=f"fused duplicates in {len(fused_tables)} results "
            f"({rows_removed} rows removed)",
            details={"rows_removed": rows_removed},
        )
