"""Blocking: cheap candidate generation for duplicate detection.

Comparing every pair of rows is quadratic; blocking groups rows by a cheap
key (e.g. the postcode, or a normalised prefix of the street) so that only
rows sharing a block are compared. This is the standard first stage of
entity resolution and keeps duplicate detection tractable on the scenario's
source sizes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Sequence

from repro.relational.keys import normalise_key
from repro.relational.table import Row, Table

__all__ = ["block_by_attributes", "block_by_key_function", "candidate_pairs"]


def block_by_attributes(table: Table, attributes: Sequence[str]) -> dict[tuple, list[int]]:
    """Group row indexes by the normalised values of ``attributes``.

    Rows with NULL in any blocking attribute end up in their own singleton
    blocks (they can never be confidently matched on that key).
    """
    blocks: dict[tuple, list[int]] = defaultdict(list)
    for index, row in enumerate(table.rows()):
        key = tuple(normalise_key(row.get(name)) for name in attributes)
        if any(part is None for part in key):
            blocks[("__null__", index)].append(index)
        else:
            blocks[key].append(index)
    return dict(blocks)


def block_by_key_function(
    table: Table, key_function: Callable[[Row], object]
) -> dict[object, list[int]]:
    """Group row indexes by an arbitrary key function."""
    blocks: dict[object, list[int]] = defaultdict(list)
    for index, row in enumerate(table.rows()):
        blocks[key_function(row)].append(index)
    return dict(blocks)


def candidate_pairs(blocks: dict, *, max_block_size: int = 200) -> list[tuple[int, int]]:
    """All within-block row-index pairs (i < j).

    Oversized blocks (low-selectivity keys) are skipped; they would dominate
    the runtime while contributing mostly non-duplicates.
    """
    pairs: list[tuple[int, int]] = []
    for members in blocks.values():
        if len(members) < 2 or len(members) > max_block_size:
            continue
        ordered = sorted(members)
        for i, left in enumerate(ordered):
            for right in ordered[i + 1:]:
                pairs.append((left, right))
    return pairs
