"""Duplicate detection and data fusion."""

from repro.fusion.blocking import block_by_attributes, block_by_key_function, candidate_pairs
from repro.fusion.duplicates import (
    DuplicateDetector,
    DuplicateDetectorConfig,
    DuplicatePair,
    cluster_pairs,
)
from repro.fusion.fusion import DataFuser, FusionPolicy, FusionResult
from repro.fusion.transducers import (
    DUPLICATES_ARTIFACT_KEY,
    DataFusionTransducer,
    DuplicateDetectionTransducer,
)

__all__ = [
    "block_by_attributes",
    "block_by_key_function",
    "candidate_pairs",
    "DuplicateDetector",
    "DuplicateDetectorConfig",
    "DuplicatePair",
    "cluster_pairs",
    "DataFuser",
    "FusionPolicy",
    "FusionResult",
    "DuplicateDetectionTransducer",
    "DataFusionTransducer",
    "DUPLICATES_ARTIFACT_KEY",
]
