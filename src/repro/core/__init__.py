"""Core of the VADA architecture: knowledge base, transducers, orchestration.

The components here are domain-agnostic; the wrangling functionality
(matching, mapping, quality, …) plugs in as :class:`Transducer` subclasses
registered with a :class:`TransducerRegistry` and driven by an
:class:`Orchestrator` under a :class:`NetworkTransducer` policy.
"""

from repro.core.errors import (
    CoreError,
    DependencyError,
    KnowledgeBaseError,
    OrchestrationError,
    RegistryError,
    TransducerError,
    UnknownFactError,
)
from repro.core.facts import Feedback, Predicates
from repro.core.knowledge_base import KnowledgeBase
from repro.core.orchestrator import (
    GenericNetworkTransducer,
    NetworkTransducer,
    Orchestrator,
    PreferInstanceMatchingPolicy,
    RoundRobinPolicy,
)
from repro.core.registry import TransducerRegistry
from repro.core.trace import Trace, TraceStep
from repro.core.transducer import Activity, Transducer, TransducerResult

__all__ = [
    "KnowledgeBase",
    "Predicates",
    "Feedback",
    "Transducer",
    "TransducerResult",
    "Activity",
    "TransducerRegistry",
    "Orchestrator",
    "NetworkTransducer",
    "GenericNetworkTransducer",
    "PreferInstanceMatchingPolicy",
    "RoundRobinPolicy",
    "Trace",
    "TraceStep",
    "CoreError",
    "KnowledgeBaseError",
    "UnknownFactError",
    "TransducerError",
    "DependencyError",
    "OrchestrationError",
    "RegistryError",
]
