"""The VADA knowledge base.

The knowledge base is "a repository for representing the data of relevance to
the data wrangling process": user context, data context and transducer
metadata. It also "provides access to extensional data, but for the most
part this is actually stored in external file systems or databases" — here,
in a :class:`~repro.relational.catalog.Catalog` of named tables.

Implementation notes
--------------------
- Metadata facts are plain tuples grouped by predicate, held in a
  :class:`repro.datalog.Database` so that Datalog dependency queries can be
  evaluated directly over them.
- Every mutation bumps a per-predicate *revision* counter. Transducers use
  revisions to decide whether their inputs changed since they last ran,
  which is what drives the dynamic re-orchestration described in the paper
  (new data context or feedback → affected transducers become runnable
  again).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from repro.core.errors import KnowledgeBaseError
from repro.core.facts import Predicates, attribute_fact, dataset_fact, schema_fact
from repro.datalog.engine import Database, Engine
from repro.datalog.parser import parse_atom
from repro.datalog.program import Program
from repro.datalog.terms import Atom
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table

__all__ = ["KnowledgeBase"]


class KnowledgeBase:
    """Shared metadata store plus extensional-data catalog."""

    #: Maximum number of (program → evaluated model) cache entries retained.
    MODEL_CACHE_SIZE = 64

    def __init__(self, catalog: Catalog | None = None):
        self._facts = Database()
        self._catalog = catalog if catalog is not None else Catalog()
        self._revisions: dict[str, int] = defaultdict(int)
        self._revision = 0
        self._artifacts: dict[str, Any] = {}
        # Dependency queries are evaluated over one shared, hash-indexed
        # Database: models are memoised per program and revision instead of
        # rebuilding an engine + database copy for every goal (the
        # orchestrator probes every transducer's dependencies each step).
        self._model_cache: dict[str, tuple[int, Engine, Database]] = {}

    # -- revision tracking ----------------------------------------------------

    @property
    def revision(self) -> int:
        """Global revision counter (bumped on every effective change)."""
        return self._revision

    def predicate_revision(self, predicate: str) -> int:
        """Revision at which ``predicate`` last changed (0 = never)."""
        return self._revisions.get(predicate, 0)

    def revision_of(self, predicates: Iterable[str]) -> int:
        """The most recent revision among ``predicates``."""
        return max((self.predicate_revision(p) for p in predicates), default=0)

    def _bump(self, predicate: str) -> None:
        self._revision += 1
        self._revisions[predicate] = self._revision

    # -- fact assertions --------------------------------------------------------

    def assert_fact(self, predicate: str, *values: Any) -> bool:
        """Assert one fact; returns True when the fact was new."""
        if not predicate:
            raise KnowledgeBaseError("predicate name must be non-empty")
        added = self._facts.add(predicate, tuple(values))
        if added:
            self._bump(predicate)
        return added

    def assert_tuple(self, fact: tuple[str, tuple]) -> bool:
        """Assert a (predicate, values) pair as built by :mod:`repro.core.facts`."""
        predicate, values = fact
        return self.assert_fact(predicate, *values)

    def assert_all(self, facts: Iterable[tuple[str, tuple]]) -> int:
        """Assert many facts; returns how many were new."""
        return sum(1 for fact in facts if self.assert_tuple(fact))

    def retract_fact(self, predicate: str, *values: Any) -> bool:
        """Remove one fact; returns True when it was present."""
        removed = self._facts.remove(predicate, tuple(values))
        if removed:
            self._bump(predicate)
        return removed

    def retract_where(self, predicate: str, **positions: Any) -> int:
        """Remove all facts of ``predicate`` whose positional values match.

        ``positions`` maps 0-based argument positions (as ``p0``, ``p1``, …)
        to required values; e.g. ``retract_where("match", p2="property")``.
        """
        to_match = {int(key[1:]): value for key, value in positions.items()}
        victims = []
        for row in self._facts.relation(predicate):
            if all(index < len(row) and row[index] == value
                   for index, value in to_match.items()):
                victims.append(row)
        for row in victims:
            self._facts.remove(predicate, row)
        if victims:
            self._bump(predicate)
        return len(victims)

    # -- fact queries --------------------------------------------------------------

    def facts(self, predicate: str) -> list[tuple]:
        """All tuples of ``predicate``, sorted for determinism."""
        return sorted(self._facts.relation(predicate), key=lambda row: tuple(map(str, row)))

    def has(self, predicate: str, *values: Any) -> bool:
        """Whether a specific ground fact is present."""
        return tuple(values) in self._facts.relation(predicate)

    def count(self, predicate: str | None = None) -> int:
        """Number of facts of one predicate (or overall)."""
        return self._facts.count(predicate)

    def predicates(self) -> list[str]:
        """Sorted list of non-empty predicates."""
        return self._facts.predicates()

    def query(self, goal: str | Atom, program: Program | str | None = None) -> list[tuple]:
        """Evaluate a Datalog goal over the knowledge base.

        ``program`` may supply additional rules (e.g. a transducer's
        dependency views); the KB facts are the EDB. Evaluated models are
        cached per program until the KB changes, so repeated dependency
        checks (multiple goals of one transducer, repeated orchestration
        steps) reuse one indexed database instead of re-deriving it.
        """
        if isinstance(program, str):
            program = Program.parse(program)
        if program is None:
            program = Program()
        engine, model = self._model_for(program)
        if isinstance(goal, str):
            goal = parse_atom(goal)
        try:
            return engine.query(goal, database=model)
        except Exception as exc:  # UnknownPredicateError → empty answer is friendlier
            from repro.datalog.errors import UnknownPredicateError

            if isinstance(exc, UnknownPredicateError):
                return []
            raise

    def _model_for(self, program: Program) -> tuple[Engine, Database]:
        """The (engine, evaluated model) pair for ``program`` at the current
        revision, memoised in a small LRU keyed by the program's rules.

        Programs without rules or facts derive nothing, so they share the
        live fact database directly — its hash indexes then persist across
        queries and are maintained incrementally by :meth:`assert_fact`.
        """
        key = program.cache_key()
        entry = self._model_cache.get(key)
        if entry is not None and entry[0] == self._revision:
            self._model_cache.pop(key)  # re-insert to refresh LRU order
            self._model_cache[key] = entry
            return entry[1], entry[2]
        engine = entry[1] if entry is not None else Engine(program)
        if not program.all_rules():
            model = self._facts
        else:
            model = engine.run(self._facts)
        self._model_cache.pop(key, None)
        self._model_cache[key] = (self._revision, engine, model)
        while len(self._model_cache) > self.MODEL_CACHE_SIZE:
            self._model_cache.pop(next(iter(self._model_cache)))
        return engine, model

    def satisfied(self, goals: Iterable[str | Atom], program: Program | str | None = None) -> bool:
        """True when every goal has at least one answer."""
        return all(self.query(goal, program) for goal in goals)

    def snapshot(self) -> dict[str, list[tuple]]:
        """A dictionary snapshot of all metadata facts (for tracing/tests)."""
        return {predicate: self.facts(predicate) for predicate in self.predicates()}

    @property
    def database(self) -> Database:
        """The underlying Datalog database (read access for the reasoner)."""
        return self._facts

    # -- extensional data ------------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        """The extensional-data catalog."""
        return self._catalog

    def register_table(self, table: Table, role: str, *,
                       replace: bool = False) -> str:
        """Register a table in the catalog and assert its schema metadata.

        ``role`` is one of ``source``, ``target``, ``context`` (see
        :class:`~repro.core.facts.Predicates`). Returns the catalog name.
        """
        if role not in (Predicates.ROLE_SOURCE, Predicates.ROLE_TARGET, Predicates.ROLE_CONTEXT):
            raise KnowledgeBaseError(f"unknown dataset role {role!r}")
        name = self._catalog.register(table, replace=replace)
        self.describe_schema(table.schema, role)
        self.assert_tuple(dataset_fact(name, role, len(table)))
        return name

    def update_table(self, table: Table) -> None:
        """Replace a registered table's contents and refresh its row count."""
        self._catalog.replace(table)
        for row in list(self._facts.relation(Predicates.DATASET)):
            if row[0] == table.name:
                self.retract_fact(Predicates.DATASET, *row)
                self.assert_tuple(dataset_fact(table.name, row[1], len(table)))

    def describe_schema(self, schema: Schema, role: str) -> None:
        """Assert ``schema`` / ``attribute`` facts for a relation."""
        self.assert_tuple(schema_fact(schema.name, role))
        for position, attribute in enumerate(schema.attributes):
            self.assert_tuple(
                attribute_fact(schema.name, attribute.name, attribute.dtype.value, position))

    def get_table(self, name: str) -> Table:
        """Fetch an extensional table by name."""
        return self._catalog.get(name)

    def has_table(self, name: str) -> bool:
        """Whether a table is registered under ``name``."""
        return name in self._catalog

    def tables_with_role(self, role: str) -> list[str]:
        """Names of registered datasets with the given role."""
        return sorted(row[0] for row in self._facts.relation(Predicates.DATASET)
                      if row[1] == role)

    def source_relations(self) -> list[str]:
        """Names of source datasets."""
        return self.tables_with_role(Predicates.ROLE_SOURCE)

    def target_relations(self) -> list[str]:
        """Names of relations declared with the target role."""
        return sorted(row[0] for row in self._facts.relation(Predicates.SCHEMA)
                      if row[1] == Predicates.ROLE_TARGET)

    def schema_of(self, relation: str) -> Schema:
        """Reconstruct a schema from ``attribute`` facts (metadata view).

        For relations whose data is registered in the catalog the catalog
        schema is returned directly (it carries richer type information).
        """
        if relation in self._catalog:
            return self._catalog.get_schema(relation)
        rows = [row for row in self._facts.relation(Predicates.ATTRIBUTE) if row[0] == relation]
        if not rows:
            raise KnowledgeBaseError(f"no schema information for relation {relation!r}")
        from repro.relational.schema import Attribute
        from repro.relational.types import DataType

        ordered = sorted(rows, key=lambda row: row[3])
        attributes = [Attribute(row[1], DataType.from_name(row[2])) for row in ordered]
        return Schema(relation, attributes)

    # -- structured artifacts -----------------------------------------------------

    def store_artifact(self, key: str, value: Any) -> None:
        """Store a structured component artifact (mapping object, learned CFDs, …).

        KB *facts* summarise artifacts for dependency evaluation; the full
        Python objects are kept here so that downstream transducers (e.g.
        repair consuming the CFD learner's witnesses) can retrieve them.
        """
        self._artifacts[key] = value

    def get_artifact(self, key: str, default: Any = None) -> Any:
        """Fetch a stored artifact (None / default when absent)."""
        return self._artifacts.get(key, default)

    def has_artifact(self, key: str) -> bool:
        """Whether an artifact is stored under ``key``."""
        return key in self._artifacts

    def artifact_keys(self) -> list[str]:
        """Sorted keys of stored artifacts."""
        return sorted(self._artifacts)

    # -- serialisation -------------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        """Pickle everything but the model cache (a transient memo holding
        evaluation engines); session checkpoints rebuild it on first query."""
        state = self.__dict__.copy()
        state["_model_cache"] = {}
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._model_cache = {}

    def __repr__(self) -> str:
        return (f"KnowledgeBase(facts={self._facts.count()}, "
                f"tables={len(self._catalog)}, revision={self._revision})")
