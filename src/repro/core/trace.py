"""Browsable orchestration trace.

The paper's demonstration "will provide browsable trace information that
shows what transducers are being orchestrated, their inputs and results".
The :class:`Trace` collects one :class:`TraceStep` per transducer execution
and offers summaries used by the examples and by the Figure-1/orchestration
benchmark.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["TraceStep", "Trace"]


@dataclass(frozen=True)
class TraceStep:
    """One transducer execution."""

    index: int
    transducer: str
    activity: str
    #: Names of the transducers that were runnable when this one was chosen.
    runnable: tuple[str, ...]
    #: KB global revision before and after the execution.
    revision_before: int
    revision_after: int
    facts_added: int
    tables_written: tuple[str, ...]
    duration_seconds: float
    notes: str = ""
    #: Label of the orchestration phase (bootstrap / data_context / feedback /
    #: user_context) during which the step ran, when the caller sets one.
    phase: str = ""

    def __str__(self) -> str:
        tables = f" tables={list(self.tables_written)}" if self.tables_written else ""
        return (f"[{self.index:03d}] {self.transducer} ({self.activity}) "
                f"+{self.facts_added} facts{tables} {self.notes}")


@dataclass
class Trace:
    """The ordered list of executions of one orchestration session."""

    steps: list[TraceStep] = field(default_factory=list)

    def record(self, step: TraceStep) -> None:
        """Append one step."""
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> TraceStep:
        return self.steps[index]

    # -- summaries -----------------------------------------------------------

    def executions_of(self, transducer: str) -> list[TraceStep]:
        """All executions of one transducer."""
        return [step for step in self.steps if step.transducer == transducer]

    def execution_counts(self) -> dict[str, int]:
        """Transducer name → number of executions."""
        return dict(Counter(step.transducer for step in self.steps))

    def activity_counts(self) -> dict[str, int]:
        """Activity → number of executions."""
        return dict(Counter(step.activity for step in self.steps))

    def phase_counts(self) -> dict[str, int]:
        """Phase label → number of executions."""
        return dict(Counter(step.phase for step in self.steps if step.phase))

    def reruns(self) -> dict[str, int]:
        """Transducer name → number of executions beyond the first."""
        return {name: count - 1 for name, count in self.execution_counts().items() if count > 1}

    def total_facts_added(self) -> int:
        """Sum of facts added across all steps."""
        return sum(step.facts_added for step in self.steps)

    def total_duration(self) -> float:
        """Total execution time in seconds."""
        return sum(step.duration_seconds for step in self.steps)

    def steps_in_phase(self, phase: str) -> list[TraceStep]:
        """All steps executed during ``phase``."""
        return [step for step in self.steps if step.phase == phase]

    # -- rendering ------------------------------------------------------------

    def to_text(self) -> str:
        """A browsable text rendering of the whole trace."""
        if not self.steps:
            return "(empty trace)"
        lines = [str(step) for step in self.steps]
        lines.append("")
        lines.append(f"total: {len(self.steps)} executions, "
                     f"{self.total_facts_added()} facts, "
                     f"{self.total_duration():.3f}s")
        return "\n".join(lines)

    def summary(self) -> dict:
        """Aggregate statistics used by benchmarks and tests."""
        return {
            "steps": len(self.steps),
            "facts_added": self.total_facts_added(),
            "by_transducer": self.execution_counts(),
            "by_activity": self.activity_counts(),
            "by_phase": self.phase_counts(),
            "reruns": self.reruns(),
            "duration_seconds": self.total_duration(),
        }
