"""The metadata vocabulary stored in the knowledge base.

The VADA knowledge base holds "information about the requirements of the
user (user context), the application domain (data context), and metadata
created and used by the transducers". This module fixes the predicate names
used for that metadata so that transducer dependencies, orchestration rules
and the benchmark harness all speak the same vocabulary.

Every predicate is documented with its argument layout. The helpers below
build ground tuples for the knowledge base (the KB stores plain tuples; the
relational payloads live in the catalog and are referenced by name).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "Predicates",
    "schema_fact",
    "attribute_fact",
    "dataset_fact",
    "data_context_fact",
    "match_fact",
    "mapping_fact",
    "mapping_score_fact",
    "mapping_selected_fact",
    "metric_fact",
    "cfd_fact",
    "feedback_fact",
    "preference_fact",
    "criterion_weight_fact",
    "source_selected_fact",
    "repair_fact",
    "duplicate_fact",
    "result_fact",
    "Feedback",
]


class Predicates:
    """Names of the knowledge-base predicates (the KB vocabulary).

    Argument layouts:

    - ``schema(relation, role)`` — role is ``source``, ``target`` or
      ``context``.
    - ``attribute(relation, attribute, dtype, position)``
    - ``dataset(relation, role, row_count)`` — a table registered in the
      catalog; role mirrors ``schema``.
    - ``data_context(relation, kind, target_relation)`` — kind is
      ``reference``, ``master`` or ``example``; ``target_relation`` is the
      target-schema relation the context data is associated with.
    - ``match(source_relation, source_attribute, target_relation,
      target_attribute, score)``
    - ``mapping(mapping_id, target_relation, kind)`` — kind is e.g.
      ``union``, ``join``, ``direct``.
    - ``mapping_score(mapping_id, criterion, value)``
    - ``mapping_selected(mapping_id, rank)``
    - ``source_selected(relation, rank)``
    - ``metric(subject_kind, subject, criterion, value)`` — subject kind is
      ``source``, ``mapping`` or ``result``; criterion is ``completeness``,
      ``accuracy``, ``consistency`` or ``relevance``.
    - ``cfd(cfd_id, relation, lhs, rhs, support)`` — lhs/rhs are rendered
      attribute patterns; the structured CFD lives in the catalog-side model.
    - ``feedback(feedback_id, relation, row_key, attribute, verdict)`` —
      verdict is ``correct`` or ``incorrect``; attribute may be ``*`` for
      tuple-level feedback.
    - ``preference(criterion_a, criterion_b, strength)`` — the user-context
      pairwise comparison; strength follows the AHP verbal scale (1–9).
    - ``criterion_weight(criterion, weight)`` — derived from preferences.
    - ``repair(relation, row_key, attribute, old_value, new_value, cfd_id)``
    - ``duplicate(relation_a, key_a, relation_b, key_b, score)``
    - ``result(relation, mapping_id, row_count)`` — a materialised result.
    - ``user_context_set()`` / ``data_context_set()`` — flags raised when
      the corresponding context has been provided.
    """

    SCHEMA = "schema"
    ATTRIBUTE = "attribute"
    DATASET = "dataset"
    DATA_CONTEXT = "data_context"
    MATCH = "match"
    MAPPING = "mapping"
    MAPPING_SCORE = "mapping_score"
    MAPPING_SELECTED = "mapping_selected"
    SOURCE_SELECTED = "source_selected"
    METRIC = "metric"
    CFD = "cfd"
    FEEDBACK = "feedback"
    PREFERENCE = "preference"
    CRITERION_WEIGHT = "criterion_weight"
    REPAIR = "repair"
    DUPLICATE = "duplicate"
    RESULT = "result"
    USER_CONTEXT_SET = "user_context_set"
    DATA_CONTEXT_SET = "data_context_set"

    #: Roles a relation can play.
    ROLE_SOURCE = "source"
    ROLE_TARGET = "target"
    ROLE_CONTEXT = "context"

    #: Kinds of data context (paper §2.2).
    CONTEXT_REFERENCE = "reference"
    CONTEXT_MASTER = "master"
    CONTEXT_EXAMPLE = "example"

    #: Quality criteria used by metrics, preferences and selection.
    CRITERIA = ("completeness", "accuracy", "consistency", "relevance")

    #: Feedback verdicts.
    CORRECT = "correct"
    INCORRECT = "incorrect"

    #: Wildcard used for tuple-level feedback.
    ANY_ATTRIBUTE = "*"


# -- tuple builders -----------------------------------------------------------


def schema_fact(relation: str, role: str) -> tuple[str, tuple]:
    """``schema(relation, role)``."""
    return Predicates.SCHEMA, (relation, role)


def attribute_fact(relation: str, attribute: str, dtype: str, position: int) -> tuple[str, tuple]:
    """``attribute(relation, attribute, dtype, position)``."""
    return Predicates.ATTRIBUTE, (relation, attribute, dtype, position)


def dataset_fact(relation: str, role: str, row_count: int) -> tuple[str, tuple]:
    """``dataset(relation, role, row_count)``."""
    return Predicates.DATASET, (relation, role, row_count)


def data_context_fact(relation: str, kind: str, target_relation: str) -> tuple[str, tuple]:
    """``data_context(relation, kind, target_relation)``."""
    return Predicates.DATA_CONTEXT, (relation, kind, target_relation)


def match_fact(source_relation: str, source_attribute: str, target_relation: str,
               target_attribute: str, score: float) -> tuple[str, tuple]:
    """``match(src_rel, src_attr, tgt_rel, tgt_attr, score)``."""
    return Predicates.MATCH, (source_relation, source_attribute, target_relation,
                              target_attribute, round(float(score), 6))


def mapping_fact(mapping_id: str, target_relation: str, kind: str) -> tuple[str, tuple]:
    """``mapping(mapping_id, target_relation, kind)``."""
    return Predicates.MAPPING, (mapping_id, target_relation, kind)


def mapping_score_fact(mapping_id: str, criterion: str, value: float) -> tuple[str, tuple]:
    """``mapping_score(mapping_id, criterion, value)``."""
    return Predicates.MAPPING_SCORE, (mapping_id, criterion, round(float(value), 6))


def mapping_selected_fact(mapping_id: str, rank: int) -> tuple[str, tuple]:
    """``mapping_selected(mapping_id, rank)``."""
    return Predicates.MAPPING_SELECTED, (mapping_id, rank)


def source_selected_fact(relation: str, rank: int) -> tuple[str, tuple]:
    """``source_selected(relation, rank)``."""
    return Predicates.SOURCE_SELECTED, (relation, rank)


def metric_fact(subject_kind: str, subject: str, criterion: str, value: float) -> tuple[str, tuple]:
    """``metric(subject_kind, subject, criterion, value)``."""
    return Predicates.METRIC, (subject_kind, subject, criterion, round(float(value), 6))


def cfd_fact(cfd_id: str, relation: str, lhs: str, rhs: str, support: float) -> tuple[str, tuple]:
    """``cfd(cfd_id, relation, lhs, rhs, support)``."""
    return Predicates.CFD, (cfd_id, relation, lhs, rhs, round(float(support), 6))


def feedback_fact(feedback_id: str, relation: str, row_key: str, attribute: str,
                  verdict: str) -> tuple[str, tuple]:
    """``feedback(feedback_id, relation, row_key, attribute, verdict)``."""
    return Predicates.FEEDBACK, (feedback_id, relation, row_key, attribute, verdict)


def preference_fact(criterion_a: str, criterion_b: str, strength: float) -> tuple[str, tuple]:
    """``preference(criterion_a, criterion_b, strength)``."""
    return Predicates.PREFERENCE, (criterion_a, criterion_b, round(float(strength), 6))


def criterion_weight_fact(criterion: str, weight: float) -> tuple[str, tuple]:
    """``criterion_weight(criterion, weight)``."""
    return Predicates.CRITERION_WEIGHT, (criterion, round(float(weight), 6))


def repair_fact(relation: str, row_key: str, attribute: str, old_value: Any,
                new_value: Any, cfd_id: str) -> tuple[str, tuple]:
    """``repair(relation, row_key, attribute, old, new, cfd_id)``."""
    return Predicates.REPAIR, (relation, row_key, attribute,
                               _render(old_value), _render(new_value), cfd_id)


def duplicate_fact(relation_a: str, key_a: str, relation_b: str, key_b: str,
                   score: float) -> tuple[str, tuple]:
    """``duplicate(relation_a, key_a, relation_b, key_b, score)``."""
    return Predicates.DUPLICATE, (relation_a, key_a, relation_b, key_b,
                                  round(float(score), 6))


def result_fact(relation: str, mapping_id: str, row_count: int) -> tuple[str, tuple]:
    """``result(relation, mapping_id, row_count)``."""
    return Predicates.RESULT, (relation, mapping_id, row_count)


def _render(value: Any) -> str:
    """Render arbitrary payload values as strings for KB storage."""
    if value is None:
        return ""
    return str(value)


@dataclass(frozen=True)
class Feedback:
    """A single user feedback annotation (paper §2.3, §3 step 3).

    ``attribute`` is ``*`` for tuple-level feedback. ``row_key`` identifies
    the annotated tuple (the wrangler uses a stable surrogate key column).
    """

    feedback_id: str
    relation: str
    row_key: str
    attribute: str
    correct: bool

    @property
    def verdict(self) -> str:
        """The KB verdict constant for this annotation."""
        return Predicates.CORRECT if self.correct else Predicates.INCORRECT

    def to_fact(self) -> tuple[str, tuple]:
        """Render as a ``feedback`` KB fact."""
        return feedback_fact(self.feedback_id, self.relation, self.row_key,
                             self.attribute, self.verdict)
