"""Transducers: the components of the wrangling process.

In the paper a transducer is "a software component with input and output
dependencies defined as Datalog queries over the knowledge base and/or the
state of the transducer"; a transducer "knows what data it needs, and
becomes available for execution when that data is available in the
knowledge base".

:class:`Transducer` captures exactly that contract:

- ``input_dependencies`` — a list of Datalog goals; the transducer is
  *satisfiable* when every goal has at least one answer over the KB
  (optionally with extra ``dependency_rules`` defining helper views).
- ``run`` — the component logic; it reads and writes the KB / catalog and
  reports what it produced.
- change tracking — the orchestrator re-runs a transducer when the
  predicates it reads have changed since its last execution, which produces
  the dynamic, feedback-driven behaviour demonstrated in the paper.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.core.errors import DependencyError, TransducerError
from repro.core.knowledge_base import KnowledgeBase
from repro.datalog.errors import DatalogError
from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.program import Program

__all__ = ["Activity", "TransducerResult", "Transducer"]


class Activity:
    """The functionality categories transducers belong to (paper §2.3–2.4).

    The generic network transducer orders activities roughly following the
    wrangling lifecycle: extraction before matching, matching before mapping
    generation, quality/repair before selection, evaluation last.
    """

    EXTRACTION = "extraction"
    MATCHING = "matching"
    MAPPING = "mapping"
    QUALITY = "quality"
    REPAIR = "repair"
    FUSION = "fusion"
    SELECTION = "selection"
    EVALUATION = "evaluation"
    CONTROL = "control"

    #: Default lifecycle ordering used by the generic network transducer.
    DEFAULT_ORDER = (
        EXTRACTION,
        MATCHING,
        MAPPING,
        QUALITY,
        REPAIR,
        FUSION,
        SELECTION,
        EVALUATION,
        CONTROL,
    )

    @classmethod
    def rank(cls, activity: str) -> int:
        """Position of ``activity`` in the default lifecycle order."""
        try:
            return cls.DEFAULT_ORDER.index(activity)
        except ValueError:
            return len(cls.DEFAULT_ORDER)


@dataclass
class TransducerResult:
    """What one transducer execution produced."""

    #: Number of new metadata facts asserted into the KB.
    facts_added: int = 0
    #: Names of catalog tables written or replaced.
    tables_written: list[str] = field(default_factory=list)
    #: Free-text notes for the browsable trace.
    notes: str = ""
    #: Arbitrary structured details (component specific).
    details: dict = field(default_factory=dict)

    def merge(self, other: "TransducerResult") -> "TransducerResult":
        """Combine two results (used by composite transducers)."""
        return TransducerResult(
            facts_added=self.facts_added + other.facts_added,
            tables_written=[*self.tables_written, *other.tables_written],
            notes="; ".join(note for note in (self.notes, other.notes) if note),
            details={**self.details, **other.details},
        )


class Transducer(abc.ABC):
    """Base class for all wrangling components.

    Subclasses set :attr:`name`, :attr:`activity`, :attr:`input_dependencies`
    (and optionally :attr:`dependency_rules` / :attr:`priority`) and
    implement :meth:`run`.
    """

    #: Unique component name (used in the trace and registry).
    name: str = ""
    #: Functionality category; one of the :class:`Activity` constants.
    activity: str = Activity.CONTROL
    #: Datalog goals that must all be answerable for this transducer to run.
    input_dependencies: tuple[str, ...] = ()
    #: Optional extra Datalog rules defining views used by the goals.
    dependency_rules: str = ""
    #: Additional KB predicates to watch for changes. They are *not*
    #: required for the transducer to be runnable, but a change in any of
    #: them makes the transducer runnable again (e.g. mapping scoring wants
    #: to re-run when CFDs or feedback appear even though it can run without
    #: them).
    watch_predicates: tuple[str, ...] = ()
    #: Local priority within an activity; smaller runs earlier.
    priority: int = 100

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__
        self._last_run_revision: int | None = None
        self._runs = 0
        # Parsed-dependency caches, keyed by the declaration strings so a
        # subclass that rewrites its dependencies after construction still
        # gets correct (re-parsed) results.
        self._dependency_program_cache: tuple[str, Program] | None = None
        self._input_predicates_cache: tuple[tuple, frozenset[str]] | None = None
        self._validate_dependencies()

    def _validate_dependencies(self) -> None:
        try:
            for goal in self.input_dependencies:
                parse_atom(goal)
            if self.dependency_rules:
                parse_program(self.dependency_rules)
        except DatalogError as exc:
            raise DependencyError(
                f"transducer {self.name!r} has malformed dependencies: {exc}") from exc

    # -- dependency evaluation --------------------------------------------------

    def dependency_program(self) -> Program:
        """The helper-rule program used when evaluating dependencies.

        The parse is cached: the orchestrator re-checks dependencies on
        every step, and re-parsing (plus re-stratifying downstream) the same
        rule text dominated dependency evaluation before the cache.
        """
        rules = self.dependency_rules
        cached = self._dependency_program_cache
        if cached is not None and cached[0] == rules:
            return cached[1]
        program = Program.parse(rules) if rules else Program()
        self._dependency_program_cache = (rules, program)
        return program

    def input_predicates(self) -> set[str]:
        """KB predicates this transducer reads (for change detection)."""
        signature = (self.input_dependencies, self.dependency_rules, self.watch_predicates)
        cached = self._input_predicates_cache
        if cached is not None and cached[0] == signature:
            return set(cached[1])
        predicates = self._compute_input_predicates()
        self._input_predicates_cache = (signature, frozenset(predicates))
        return predicates

    def _compute_input_predicates(self) -> set[str]:
        predicates: set[str] = set()
        program = self.dependency_program()
        idb = program.idb_predicates()
        for goal in self.input_dependencies:
            atom = parse_atom(goal)
            if atom.predicate in idb:
                predicates |= {
                    body for rule in program.rules_for(atom.predicate)
                    for body in rule.body_predicates()
                }
            else:
                predicates.add(atom.predicate)
        # Include every EDB predicate referenced by helper rules.
        for rule in program.rules:
            predicates |= {p for p in rule.body_predicates() if p not in idb}
        predicates |= set(self.watch_predicates)
        return predicates

    def satisfied(self, kb: KnowledgeBase) -> bool:
        """Whether every input dependency has at least one answer."""
        if not self.input_dependencies:
            return True
        program = self.dependency_program()
        return kb.satisfied(self.input_dependencies, program)

    def unsatisfied_dependencies(self, kb: KnowledgeBase) -> tuple[str, ...]:
        """The input goals that currently have no answer over ``kb``."""
        if not self.input_dependencies:
            return ()
        program = self.dependency_program()
        return tuple(goal for goal in self.input_dependencies
                     if not kb.satisfied([goal], program))

    def inputs_changed_since_last_run(self, kb: KnowledgeBase) -> bool:
        """Whether any input predicate changed after the last execution."""
        if self._last_run_revision is None:
            return True
        return kb.revision_of(self.input_predicates()) > self._last_run_revision

    def can_run(self, kb: KnowledgeBase) -> bool:
        """Runnable = dependencies satisfied and inputs changed since last run."""
        return self.satisfied(kb) and self.inputs_changed_since_last_run(kb)

    # -- execution ------------------------------------------------------------------

    @abc.abstractmethod
    def run(self, kb: KnowledgeBase) -> TransducerResult:
        """Execute the component against the knowledge base."""

    def execute(self, kb: KnowledgeBase) -> TransducerResult:
        """Run with bookkeeping (revision snapshot, run counter, timing)."""
        started = time.perf_counter()
        try:
            result = self.run(kb)
        except Exception as exc:
            raise TransducerError(f"transducer {self.name!r} failed: {exc}") from exc
        elapsed = time.perf_counter() - started
        if result is None:
            result = TransducerResult()
        result.details.setdefault("duration_seconds", elapsed)
        # Facts asserted during this execution (including by the transducer
        # itself) do not count as *new* input for it; only later changes by
        # other components make it runnable again.
        self._last_run_revision = kb.revision
        self._runs += 1
        return result

    def mark_synced(self, kb: KnowledgeBase) -> None:
        """Treat the current KB state as already processed by this transducer.

        Used by the incremental re-wrangling engine after it has performed a
        transducer's work out of band (e.g. patched the materialised result
        directly): without this, the next orchestration would re-run the
        transducer over inputs whose effects are already reflected in the KB
        — re-penalising the same feedback, re-materialising an identical
        table — instead of quiescing.
        """
        self._last_run_revision = kb.revision
        self._runs += 1

    # -- introspection ------------------------------------------------------------------

    @property
    def runs(self) -> int:
        """How many times this transducer has executed."""
        return self._runs

    @property
    def has_run(self) -> bool:
        """Whether the transducer has executed at least once."""
        return self._runs > 0

    def reset(self) -> None:
        """Forget execution history (used when a session is restarted)."""
        self._last_run_revision = None
        self._runs = 0

    def describe(self) -> dict:
        """Structured description used by the trace and by Table-1 tooling."""
        return {
            "name": self.name,
            "activity": self.activity,
            "input_dependencies": list(self.input_dependencies),
            "priority": self.priority,
            "runs": self._runs,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, activity={self.activity!r})"
