"""Registry of available transducers.

The architecture "is not tied to a specific or fixed set of transducers";
components can be added at any time, either implemented natively or by
wrapping external systems. The registry is the extension point: the
orchestrator works over whatever is registered.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.core.errors import RegistryError
from repro.core.transducer import Transducer

__all__ = ["TransducerRegistry"]


class TransducerRegistry:
    """A named collection of transducer instances."""

    def __init__(self, transducers: Iterable[Transducer] = ()):
        self._transducers: dict[str, Transducer] = {}
        for transducer in transducers:
            self.register(transducer)

    def register(self, transducer: Transducer, *, replace: bool = False) -> None:
        """Add a transducer; names must be unique unless ``replace``."""
        if transducer.name in self._transducers and not replace:
            raise RegistryError(f"a transducer named {transducer.name!r} is already registered")
        self._transducers[transducer.name] = transducer

    def register_factory(self, factory: Callable[[], Transducer], *,
                         replace: bool = False) -> Transducer:
        """Instantiate and register a transducer from a zero-argument factory."""
        transducer = factory()
        self.register(transducer, replace=replace)
        return transducer

    def deregister(self, name: str) -> Transducer:
        """Remove and return a transducer."""
        try:
            return self._transducers.pop(name)
        except KeyError:
            raise RegistryError(f"no transducer named {name!r} is registered") from None

    def get(self, name: str) -> Transducer:
        """Look up a transducer by name."""
        try:
            return self._transducers[name]
        except KeyError:
            raise RegistryError(f"no transducer named {name!r} is registered") from None

    def __contains__(self, name: object) -> bool:
        return name in self._transducers

    def __len__(self) -> int:
        return len(self._transducers)

    def __iter__(self) -> Iterator[Transducer]:
        return iter(self.all())

    def names(self) -> list[str]:
        """Sorted names of registered transducers."""
        return sorted(self._transducers)

    def all(self) -> list[Transducer]:
        """All transducers, ordered by name for determinism."""
        return [self._transducers[name] for name in self.names()]

    def by_activity(self, activity: str) -> list[Transducer]:
        """All transducers belonging to one activity."""
        return [t for t in self.all() if t.activity == activity]

    def reset_all(self) -> None:
        """Forget execution history of every transducer."""
        for transducer in self._transducers.values():
            transducer.reset()

    def describe(self) -> list[dict]:
        """Structured description of every registered transducer.

        This is the data behind the reproduction of Table 1 (transducer
        input dependencies).
        """
        return [t.describe() for t in self.all()]

    def __repr__(self) -> str:
        return f"TransducerRegistry({self.names()!r})"
