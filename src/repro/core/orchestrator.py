"""Dynamic orchestration: network transducers and the execution loop.

"As a consequence of the declarative approach to data dependencies, there
may be several transducers available for execution at the same time; it is
the responsibility of a *network transducer* to select between the
executable transducers" (paper §2.4). Network transducers "may be quite
generic (e.g., by choosing transducers for one type of functionality before
another …) or may be quite specific (e.g., prefer instance level matchers to
schema level matchers)".

:class:`Orchestrator` implements the execution loop; the selection policy is
pluggable via :class:`NetworkTransducer` subclasses.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.errors import OrchestrationError
from repro.core.knowledge_base import KnowledgeBase
from repro.core.registry import TransducerRegistry
from repro.core.trace import Trace, TraceStep
from repro.core.transducer import Activity, Transducer

__all__ = [
    "NetworkTransducer",
    "GenericNetworkTransducer",
    "PreferInstanceMatchingPolicy",
    "RoundRobinPolicy",
    "Orchestrator",
]


class NetworkTransducer:
    """Base selection policy: choose which runnable transducer executes next."""

    name = "network_transducer"

    def choose(self, runnable: Sequence[Transducer], kb: KnowledgeBase,
               trace: Trace) -> Transducer:
        """Pick one transducer among the runnable ones."""
        raise NotImplementedError


class GenericNetworkTransducer(NetworkTransducer):
    """The generic policy used in the paper's demonstration.

    Transducers are ordered by the lifecycle rank of their activity
    (extraction before matching before mapping …), then by their local
    priority, then alphabetically for determinism.
    """

    name = "generic_network_transducer"

    def __init__(self, activity_order: Sequence[str] | None = None):
        self._order = tuple(activity_order) if activity_order else Activity.DEFAULT_ORDER

    def _activity_rank(self, activity: str) -> int:
        try:
            return self._order.index(activity)
        except ValueError:
            return len(self._order)

    def choose(self, runnable: Sequence[Transducer], kb: KnowledgeBase,
               trace: Trace) -> Transducer:
        return min(runnable,
                   key=lambda t: (self._activity_rank(t.activity), t.priority, t.name))


class PreferInstanceMatchingPolicy(GenericNetworkTransducer):
    """A *specific* network transducer: prefer instance-level matchers.

    The paper gives this as an example of a more specific control policy.
    Among runnable matching transducers, those whose name mentions
    ``instance`` win regardless of their declared priority.
    """

    name = "prefer_instance_matching"

    def choose(self, runnable: Sequence[Transducer], kb: KnowledgeBase,
               trace: Trace) -> Transducer:
        matchers = [t for t in runnable if t.activity == Activity.MATCHING]
        instance_matchers = [t for t in matchers if "instance" in t.name.lower()]
        if instance_matchers:
            return min(instance_matchers, key=lambda t: (t.priority, t.name))
        return super().choose(runnable, kb, trace)


class RoundRobinPolicy(NetworkTransducer):
    """A deliberately naive policy used as an orchestration ablation baseline."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, runnable: Sequence[Transducer], kb: KnowledgeBase,
               trace: Trace) -> Transducer:
        ordered = sorted(runnable, key=lambda t: t.name)
        chosen = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return chosen


class Orchestrator:
    """Runs transducers to quiescence under a network-transducer policy.

    The loop repeatedly: (1) finds transducers whose input dependencies are
    satisfied and whose inputs changed since their last run, (2) asks the
    network transducer to pick one, (3) executes it and records a trace
    step. It stops when nothing is runnable (a fixpoint for the current KB
    contents) or when ``max_steps`` is reached.
    """

    def __init__(self, kb: KnowledgeBase, registry: TransducerRegistry | Iterable[Transducer],
                 policy: NetworkTransducer | None = None, *, max_steps: int = 200):
        self._kb = kb
        if isinstance(registry, TransducerRegistry):
            self._registry = registry
        else:
            self._registry = TransducerRegistry(registry)
        self._policy = policy if policy is not None else GenericNetworkTransducer()
        self._max_steps = max_steps
        self._trace = Trace()
        self._phase = ""

    # -- accessors ----------------------------------------------------------

    @property
    def kb(self) -> KnowledgeBase:
        """The knowledge base being orchestrated over."""
        return self._kb

    @property
    def registry(self) -> TransducerRegistry:
        """The transducer registry."""
        return self._registry

    @property
    def trace(self) -> Trace:
        """The accumulated orchestration trace."""
        return self._trace

    @property
    def policy(self) -> NetworkTransducer:
        """The active network transducer."""
        return self._policy

    def set_policy(self, policy: NetworkTransducer) -> None:
        """Switch the selection policy (takes effect on the next step)."""
        self._policy = policy

    def set_phase(self, phase: str) -> None:
        """Label subsequent trace steps with a phase name (demo steps 1–4)."""
        self._phase = phase

    # -- execution -----------------------------------------------------------

    def runnable(self) -> list[Transducer]:
        """Transducers whose dependencies are satisfied and inputs changed."""
        return [t for t in self._registry.all() if t.can_run(self._kb)]

    def pending_dependencies(self) -> dict[str, tuple[str, ...]]:
        """Unmet input goals of transducers that have never executed.

        A non-empty result together with an empty :meth:`runnable` list
        means those components are starved: nothing currently in the KB can
        satisfy their inputs.
        """
        pending = {}
        for transducer in self._registry.all():
            if transducer.has_run:
                continue
            goals = transducer.unsatisfied_dependencies(self._kb)
            if goals:
                pending[transducer.name] = goals
        return pending

    def step(self) -> TraceStep | None:
        """Execute one transducer; returns None when nothing is runnable."""
        candidates = self.runnable()
        if not candidates:
            return None
        chosen = self._policy.choose(candidates, self._kb, self._trace)
        if chosen not in candidates:
            raise OrchestrationError(
                f"policy {self._policy.name!r} chose {chosen.name!r}, which is not runnable")
        revision_before = self._kb.revision
        result = chosen.execute(self._kb)
        step = TraceStep(
            index=len(self._trace),
            transducer=chosen.name,
            activity=chosen.activity,
            runnable=tuple(sorted(t.name for t in candidates)),
            revision_before=revision_before,
            revision_after=self._kb.revision,
            facts_added=result.facts_added,
            tables_written=tuple(result.tables_written),
            duration_seconds=float(result.details.get("duration_seconds", 0.0)),
            notes=result.notes,
            phase=self._phase,
        )
        self._trace.record(step)
        return step

    def run(self, *, max_steps: int | None = None) -> Trace:
        """Execute until quiescence (or until the step budget is exhausted).

        Quiescence after at least one execution is the normal fixpoint.
        Quiescence before *anything* has ever executed, while transducers
        are still waiting on unmet input dependencies, means the session is
        misconfigured (e.g. no sources or no target schema were registered)
        and raises :class:`OrchestrationError` — carrying the trace so far —
        rather than silently returning an empty trace.
        """
        budget = max_steps if max_steps is not None else self._max_steps
        executed = 0
        while executed < budget:
            step = self.step()
            if step is None:
                if len(self._trace) == 0:
                    self._raise_if_stalled()
                return self._trace
            executed += 1
        if self.runnable():
            raise OrchestrationError(
                f"orchestration did not quiesce within {budget} steps; "
                f"still runnable: {[t.name for t in self.runnable()]}",
                trace=self._trace)
        return self._trace

    def _raise_if_stalled(self) -> None:
        """Raise when nothing has ever run and unmet dependencies remain."""
        pending = self.pending_dependencies()
        if not pending:
            return
        shown = sorted(pending.items())
        described = "; ".join(
            f"{name} waiting on {', '.join(goals)}" for name, goals in shown[:5])
        if len(shown) > 5:
            described += f"; ... and {len(shown) - 5} more"
        raise OrchestrationError(
            "orchestration stalled before any transducer could run: nothing is "
            f"runnable but {len(pending)} transducer(s) have unmet input "
            f"dependencies ({described}). Register the missing sources / target "
            "schema before running.",
            trace=self._trace)

    def reset(self) -> None:
        """Clear execution history (trace and per-transducer state)."""
        self._trace = Trace()
        self._registry.reset_all()
        self._phase = ""
