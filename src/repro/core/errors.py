"""Exceptions raised by the core architecture layer."""

from __future__ import annotations


class CoreError(Exception):
    """Base class for core-layer errors."""


class KnowledgeBaseError(CoreError):
    """The knowledge base was used inconsistently."""


class UnknownFactError(KnowledgeBaseError):
    """A fact that was expected in the knowledge base is missing."""


class TransducerError(CoreError):
    """A transducer failed to execute or is misconfigured."""


class DependencyError(TransducerError):
    """A transducer's declared input dependency is malformed."""


class OrchestrationError(CoreError):
    """The orchestrator reached an invalid state.

    Carries the orchestration ``trace`` accumulated so far (when the
    orchestrator raised it), so callers can inspect what did execute before
    the failure instead of losing the session history with the exception.
    """

    def __init__(self, message: str, *, trace=None):
        super().__init__(message)
        #: The :class:`repro.core.trace.Trace` at the time of the error
        #: (None when the error was raised outside an execution loop).
        self.trace = trace


class RegistryError(CoreError):
    """Transducer registration failed (duplicate name, unknown transducer)."""
