"""Exceptions raised by the core architecture layer."""

from __future__ import annotations


class CoreError(Exception):
    """Base class for core-layer errors."""


class KnowledgeBaseError(CoreError):
    """The knowledge base was used inconsistently."""


class UnknownFactError(KnowledgeBaseError):
    """A fact that was expected in the knowledge base is missing."""


class TransducerError(CoreError):
    """A transducer failed to execute or is misconfigured."""


class DependencyError(TransducerError):
    """A transducer's declared input dependency is malformed."""


class OrchestrationError(CoreError):
    """The orchestrator reached an invalid state."""


class RegistryError(CoreError):
    """Transducer registration failed (duplicate name, unknown transducer)."""
