"""Compact why-provenance annotations for wrangled tuples and cells.

Every tuple a mapping materialises, every fused duplicate cluster, every
repaired cell and every feedback-driven edit records *where its value came
from*: the contributing source rows (why-provenance witnesses), the mapping
that combined them, and the operator that last touched the value. The store
is deliberately compact:

- :class:`SourceRef` values are interned per store, so a source row that
  contributes to many result tuples (a joined lookup row, a fusion winner)
  is represented once;
- the ``attribute -> source relation`` map of a mapping's output is shared
  by every tuple the mapping produces (one dict per mapping, not per row);
- per-cell :class:`CellLineage` records exist only where a cell's history
  *differs* from its tuple's (fusion conflicts, repairs, feedback edits) —
  for the common case the cell lineage is derived on demand.

Why-provenance follows the usual set-of-witnesses semantics: a tuple (or
cell) is supported by a set of witnesses, each witness being the set of base
tuples that jointly produced it. A freshly mapped tuple has one witness
(its driving row plus any joined rows); a fused tuple has one witness per
merged duplicate; a constant (e.g. a NULL padded in by a union mapping) has
an empty witness set.

Tracking is guarded by the store's ``enabled`` flag (default on); a disabled
store turns every recording call into a no-op so benchmarks can measure the
pipeline without lineage overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, NamedTuple

__all__ = [
    "PROVENANCE_ARTIFACT_KEY",
    "SourceRef",
    "CellLineage",
    "TupleLineage",
    "ProvenanceStore",
    "provenance_store",
]

#: Artifact key under which the session's :class:`ProvenanceStore` lives in
#: the knowledge base.
PROVENANCE_ARTIFACT_KEY = "provenance_store"

#: Operator kinds recorded in lineage annotations.
OPERATOR_MAPPING = "mapping"
OPERATOR_FUSION = "fusion"
OPERATOR_REPAIR = "repair"
OPERATOR_FEEDBACK = "feedback"
OPERATOR_DISTINCT = "distinct"


class SourceRef(NamedTuple):
    """A reference to one base tuple: ``(source relation, row id)``.

    ``row_id`` follows the pipeline's ``source:index`` convention, so the
    underlying row can be looked up in the catalog (source tables are
    logically immutable, hence the index stays valid for the session).
    """

    relation: str
    row_id: str

    @property
    def row_index(self) -> int | None:
        """The numeric row index encoded in ``row_id`` (None if unparsable)."""
        _, _, tail = self.row_id.rpartition(":")
        if tail.isdigit():
            return int(tail)
        return None

    def __str__(self) -> str:
        return self.row_id if ":" in self.row_id else f"{self.relation}:{self.row_id}"


#: A witness: the set of base tuples that jointly produced a value.
Witness = frozenset  # frozenset[SourceRef]


@dataclass(frozen=True)
class CellLineage:
    """Lineage of one result cell where it differs from its tuple's lineage.

    ``operator`` names what produced the current value (``fusion`` when a
    conflict was resolved, ``repair`` when a CFD rewrote it, ``feedback``
    when an annotation cleared it); ``detail`` carries the operator-specific
    identifier (fusion policy, CFD id, feedback id).
    """

    operator: str
    witnesses: frozenset = frozenset()
    detail: str | None = None

    def source_relations(self) -> set[str]:
        """Relations of every base tuple in any witness."""
        return {ref.relation for witness in self.witnesses for ref in witness}


@dataclass(frozen=True)
class TupleLineage:
    """Lineage of one result tuple.

    ``witnesses`` is the why-provenance set (one witness per alternative
    derivation — mapped tuples have one, fused tuples one per duplicate).
    ``cell_sources`` maps target attributes to the source relation whose
    assignment populated them (shared across all tuples of one mapping);
    attributes absent from it were never assigned (constants / padded
    NULLs). ``cells`` holds the sparse per-cell overrides.
    """

    operator: str
    mapping_id: str | None
    witnesses: frozenset
    cell_sources: Mapping[str, str] | None = None
    cells: Mapping[str, CellLineage] = field(default_factory=dict)

    def cell(self, attribute: str) -> CellLineage:
        """Effective lineage of one cell (override or derived from the tuple).

        Without an override the cell's witnesses are the tuple's witnesses
        restricted to the relation that populated the attribute; an
        attribute with no assignment yields an empty witness set (a
        constant, in why-provenance terms).
        """
        override = self.cells.get(attribute)
        if override is not None:
            return override
        if self.cell_sources is not None:
            source = self.cell_sources.get(attribute)
            if source is None:
                return CellLineage(operator=self.operator, witnesses=frozenset())
            witnesses = frozenset(
                frozenset(ref for ref in witness if ref.relation == source)
                for witness in self.witnesses
            )
            witnesses = frozenset(w for w in witnesses if w)
            return CellLineage(operator=self.operator, witnesses=witnesses)
        return CellLineage(operator=self.operator, witnesses=self.witnesses)

    def source_relations(self, attribute: str | None = None) -> set[str]:
        """Contributing source relations (of one cell, or the whole tuple)."""
        if attribute is not None:
            return self.cell(attribute).source_relations()
        return {ref.relation for witness in self.witnesses for ref in witness}

    def all_refs(self) -> set[SourceRef]:
        """Every base tuple appearing in any witness."""
        return {ref for witness in self.witnesses for ref in witness}


class ProvenanceStore:
    """Per-session lineage registry, keyed by ``(relation, row key)``.

    Row keys are the values of the pipeline's ``_row_id`` bookkeeping
    column, which survive fusion (the cluster keeps its first member's key)
    and re-materialisation (keys are deterministic per source row). The
    store is a knowledge-base artifact so every transducer can reach it; it
    is picklable, so batch workers can ship lineage summaries home.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        #: relation -> row key -> lineage
        self._tuples: dict[str, dict[str, TupleLineage]] = {}
        #: relation -> row key -> human-readable drop reason
        self._dropped: dict[str, dict[str, str]] = {}
        self._ref_cache: dict[tuple[str, str], SourceRef] = {}
        self._cell_source_cache: dict[tuple[tuple[str, str], ...], Mapping[str, str]] = {}

    # -- interning -------------------------------------------------------------

    def ref(self, relation: str, row_id: str) -> SourceRef:
        """An interned :class:`SourceRef`."""
        key = (relation, row_id)
        cached = self._ref_cache.get(key)
        if cached is None:
            cached = SourceRef(relation, row_id)
            self._ref_cache[key] = cached
        return cached

    def intern_cell_sources(self, cell_sources: Mapping[str, str]) -> Mapping[str, str]:
        """One shared ``attribute -> source relation`` map per mapping shape."""
        key = tuple(sorted(cell_sources.items()))
        cached = self._cell_source_cache.get(key)
        if cached is None:
            cached = dict(cell_sources)
            self._cell_source_cache[key] = cached
        return cached

    # -- recording ---------------------------------------------------------------

    def clear_relation(self, relation: str) -> None:
        """Forget all lineage of ``relation`` (before re-materialisation)."""
        self._tuples.pop(relation, None)
        self._dropped.pop(relation, None)

    def record_tuple(
        self,
        relation: str,
        row_key: str,
        *,
        operator: str,
        witnesses: Iterable[frozenset],
        mapping_id: str | None = None,
        cell_sources: Mapping[str, str] | None = None,
        cells: Mapping[str, CellLineage] | None = None,
    ) -> None:
        """Record (or replace) the lineage of one tuple.

        Recording revives a previously dropped key: patched rows *replace*
        their old annotations (witness sets, drop markers) rather than
        accumulating them, so repeated incremental re-materialisations keep
        the store size stable.
        """
        if not self.enabled:
            return
        self._dropped.get(relation, {}).pop(str(row_key), None)
        shared = self.intern_cell_sources(cell_sources) if cell_sources is not None else None
        self._tuples.setdefault(relation, {})[str(row_key)] = TupleLineage(
            operator=operator,
            mapping_id=mapping_id,
            witnesses=frozenset(witnesses),
            cell_sources=shared,
            cells=dict(cells) if cells else {},
        )

    def record_cell(
        self,
        relation: str,
        row_key: str,
        attribute: str,
        *,
        operator: str,
        witnesses: Iterable[frozenset] = (),
        detail: str | None = None,
    ) -> None:
        """Record a per-cell override (fusion conflict, repair, feedback edit)."""
        if not self.enabled:
            return
        lineage = self._tuples.get(relation, {}).get(str(row_key))
        override = CellLineage(operator=operator, witnesses=frozenset(witnesses), detail=detail)
        if lineage is None:
            self.record_tuple(
                relation,
                row_key,
                operator=operator,
                witnesses=(),
                cells={attribute: override},
            )
            return
        cells = dict(lineage.cells)
        cells[attribute] = override
        self._tuples[relation][str(row_key)] = TupleLineage(
            operator=lineage.operator,
            mapping_id=lineage.mapping_id,
            witnesses=lineage.witnesses,
            cell_sources=lineage.cell_sources,
            cells=cells,
        )

    def merge_tuples(
        self,
        relation: str,
        kept_key: str,
        merged_keys: Iterable[str],
        *,
        operator: str = OPERATOR_FUSION,
        detail: str | None = None,
    ) -> None:
        """Union the witnesses of ``merged_keys`` into ``kept_key``.

        This is the why-provenance of fusion (and of ``distinct``): the
        surviving tuple is supported by every duplicate that was collapsed
        into it. Merged tuples' lineage is removed and their keys recorded
        as dropped (with the kept key as the reason).
        """
        if not self.enabled:
            return
        relation_tuples = self._tuples.setdefault(relation, {})
        kept = relation_tuples.get(str(kept_key))
        witnesses: set = set(kept.witnesses) if kept is not None else set()
        mapping_id = kept.mapping_id if kept is not None else None
        cell_sources = kept.cell_sources if kept is not None else None
        cells = dict(kept.cells) if kept is not None else {}
        for merged_key in merged_keys:
            merged_key = str(merged_key)
            if merged_key == str(kept_key):
                continue
            merged = relation_tuples.pop(merged_key, None)
            if merged is not None:
                witnesses.update(merged.witnesses)
                if mapping_id is None:
                    mapping_id = merged.mapping_id
            self._dropped.setdefault(relation, {})[merged_key] = (
                f"{operator}: merged into {kept_key}"
            )
        relation_tuples[str(kept_key)] = TupleLineage(
            operator=operator,
            mapping_id=mapping_id,
            witnesses=frozenset(witnesses),
            cell_sources=cell_sources,
            cells=cells,
        )

    def record_drop(self, relation: str, row_key: str, *, reason: str) -> None:
        """Record that a tuple was removed (e.g. by negative tuple feedback)."""
        if not self.enabled:
            return
        self._tuples.get(relation, {}).pop(str(row_key), None)
        self._dropped.setdefault(relation, {})[str(row_key)] = reason

    # -- queries -----------------------------------------------------------------

    def relations(self) -> list[str]:
        """Relations with any recorded lineage."""
        return sorted(self._tuples)

    def iter_tuples(self, relation: str) -> Iterable[tuple[str, TupleLineage]]:
        """Iterate ``(row key, lineage)`` pairs of one relation.

        This is the bulk-read API the impact index uses to invert the store
        (source ref → downstream row keys) without touching internals.
        """
        return self._tuples.get(relation, {}).items()

    def tuple_lineage(self, relation: str, row_key: str) -> TupleLineage | None:
        """Lineage of one tuple (None when untracked)."""
        return self._tuples.get(relation, {}).get(str(row_key))

    def cell_lineage(self, relation: str, row_key: str, attribute: str) -> CellLineage | None:
        """Effective lineage of one cell (None when the tuple is untracked)."""
        lineage = self.tuple_lineage(relation, row_key)
        if lineage is None:
            return None
        return lineage.cell(attribute)

    def why(self, relation: str, row_key: str, attribute: str | None = None) -> frozenset:
        """The why-provenance witness set of a tuple or cell (may be empty)."""
        lineage = self.tuple_lineage(relation, row_key)
        if lineage is None:
            return frozenset()
        if attribute is None:
            return lineage.witnesses
        return lineage.cell(attribute).witnesses

    def contributing_sources(
        self, relation: str, row_key: str, attribute: str | None = None
    ) -> set[str]:
        """Source relations supporting a tuple or cell."""
        lineage = self.tuple_lineage(relation, row_key)
        if lineage is None:
            return set()
        return lineage.source_relations(attribute)

    def dropped(self, relation: str) -> dict[str, str]:
        """Row keys removed from ``relation`` and why."""
        return dict(self._dropped.get(relation, {}))

    def tracked_count(self, relation: str | None = None) -> int:
        """Number of tracked tuples (of one relation, or overall)."""
        if relation is not None:
            return len(self._tuples.get(relation, {}))
        return sum(len(rows) for rows in self._tuples.values())

    def stats(self, relation: str | None = None) -> dict[str, Any]:
        """Compact, picklable summary of what the store tracked."""
        relations = [relation] if relation is not None else self.relations()
        tuples = 0
        cell_overrides = 0
        operators: dict[str, int] = {}
        sources: set[str] = set()
        dropped = 0
        for name in relations:
            rows = self._tuples.get(name, {})
            tuples += len(rows)
            dropped += len(self._dropped.get(name, {}))
            for lineage in rows.values():
                cell_overrides += len(lineage.cells)
                operators[lineage.operator] = operators.get(lineage.operator, 0) + 1
                sources.update(lineage.source_relations())
        return {
            "enabled": self.enabled,
            "tuples": tuples,
            "cell_overrides": cell_overrides,
            "dropped": dropped,
            "operators": {name: operators[name] for name in sorted(operators)},
            "sources": sorted(sources),
        }

    def __repr__(self) -> str:
        return (
            f"ProvenanceStore(enabled={self.enabled}, relations={len(self._tuples)}, "
            f"tuples={self.tracked_count()})"
        )


def provenance_store(kb, *, create: bool = True, enabled: bool = True) -> ProvenanceStore | None:
    """The knowledge base's provenance store (created on first use).

    Transducers call this to reach the session store; the wrangler seeds it
    with the configured ``track_provenance`` flag, and components running
    outside a wrangler session (unit tests, ad-hoc scripts) get an enabled
    store by default. With ``create=False`` the function returns None when
    no store exists yet.
    """
    store = kb.get_artifact(PROVENANCE_ARTIFACT_KEY)
    if store is None and create:
        store = ProvenanceStore(enabled=enabled)
        kb.store_artifact(PROVENANCE_ARTIFACT_KEY, store)
    return store
