"""End-to-end provenance: lineage annotations, explanations and feedback.

The provenance subsystem threads why-provenance through the wrangling
pipeline: mapping execution records which source rows produced each result
tuple, fusion merges the lineage of collapsed duplicates, repair and
feedback edits annotate the cells they rewrite. On top of the recorded
lineage sit the explanation API (:func:`~repro.provenance.explain.explain`)
and lineage-targeted feedback propagation
(:class:`~repro.provenance.feedback.LineageFeedbackPropagator`).
"""

from repro.provenance.explain import LineageTree, explain, explain_result, render_lineage
from repro.provenance.feedback import (
    LINEAGE_PENALTIES_ARTIFACT_KEY,
    LineageEvidence,
    LineageFeedbackPropagator,
    LineagePropagation,
)
from repro.provenance.model import (
    PROVENANCE_ARTIFACT_KEY,
    CellLineage,
    ProvenanceStore,
    SourceRef,
    TupleLineage,
    provenance_store,
)

__all__ = [
    "PROVENANCE_ARTIFACT_KEY",
    "LINEAGE_PENALTIES_ARTIFACT_KEY",
    "CellLineage",
    "LineageEvidence",
    "LineageFeedbackPropagator",
    "LineagePropagation",
    "LineageTree",
    "ProvenanceStore",
    "SourceRef",
    "TupleLineage",
    "explain",
    "explain_result",
    "provenance_store",
    "render_lineage",
]
