"""Turning lineage annotations into explanations a user can read.

``explain(table, row, column)`` resolves the recorded lineage of one result
cell (or whole tuple) into a :class:`LineageTree`: the annotated value at
the root, one branch per why-provenance witness, and the contributing
source *rows* (fetched from the catalog) at the leaves. ``render_lineage``
produces the human-readable form the wrangler surfaces — the textual answer
to "why does this cell say 36?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.provenance.model import ProvenanceStore, SourceRef, TupleLineage
from repro.relational.table import Table

__all__ = ["LineageTree", "explain", "explain_result", "render_lineage"]


@dataclass
class LineageTree:
    """One node of an explanation tree.

    ``kind`` is ``cell`` or ``tuple`` at the root, ``witness`` for each
    why-provenance witness, and ``source`` at the leaves (one per
    contributing base tuple, with its values when the catalog can supply
    them). ``events`` lists the operator applications that shaped the value
    (mapping, fusion, repair, feedback), oldest first.
    """

    kind: str
    label: str
    relation: str | None = None
    row_key: str | None = None
    attribute: str | None = None
    value: Any = None
    operator: str | None = None
    mapping_id: str | None = None
    detail: str | None = None
    source_row: dict[str, Any] | None = None
    events: list[str] = field(default_factory=list)
    children: list["LineageTree"] = field(default_factory=list)

    def source_refs(self) -> list[SourceRef]:
        """Every contributing base tuple in the tree (deterministic order)."""
        refs: list[SourceRef] = []
        for node in self.walk():
            if node.kind == "source" and node.relation is not None:
                refs.append(SourceRef(node.relation, node.row_key or ""))
        return refs

    def source_relations(self) -> set[str]:
        """Relations of every contributing base tuple."""
        return {ref.relation for ref in self.source_refs()}

    def walk(self):
        """Depth-first iteration over the tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly rendering of the tree (service/HTTP responses).

        Values are stringified only where they may not be JSON types
        (``value``, source-row cells); structure and labels round-trip
        losslessly enough for a client to display the explanation.
        """
        payload: dict[str, Any] = {"kind": self.kind, "label": self.label}
        for name in ("relation", "row_key", "attribute", "operator", "mapping_id", "detail"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.value is not None:
            payload["value"] = self.value if isinstance(
                self.value, (str, int, float, bool)) else str(self.value)
        if self.source_row is not None:
            payload["source_row"] = {
                key: value if isinstance(value, (str, int, float, bool)) or value is None
                else str(value)
                for key, value in self.source_row.items()
            }
        if self.events:
            payload["events"] = list(self.events)
        if self.children:
            payload["children"] = [child.as_dict() for child in self.children]
        return payload


def explain(
    table: Table,
    row: int | str,
    column: str | None = None,
    *,
    store: ProvenanceStore,
    catalog=None,
) -> LineageTree:
    """Explain one result cell (or tuple when ``column`` is None).

    ``row`` is a row index into ``table`` or a row key (the ``_row_id``
    value shown to the user). The returned tree's leaves carry the
    contributing source rows, looked up in ``catalog`` when one is given.
    Raises ``KeyError`` when the row is unknown, and ``LookupError`` when no
    lineage was recorded for it (e.g. tracking was disabled).
    """
    row_key, values = _locate_row(table, row)
    lineage = store.tuple_lineage(table.name, row_key)
    if lineage is None:
        dropped = store.dropped(table.name).get(row_key)
        if dropped is not None:
            raise LookupError(f"row {row_key!r} of {table.name!r} was removed ({dropped})")
        raise LookupError(
            f"no lineage recorded for row {row_key!r} of {table.name!r} "
            f"(was provenance tracking enabled?)"
        )

    if column is None:
        root = LineageTree(
            kind="tuple",
            label=f"{table.name}[{row_key}]",
            relation=table.name,
            row_key=row_key,
            operator=lineage.operator,
            mapping_id=lineage.mapping_id,
        )
        witnesses = lineage.witnesses
        events = _tuple_events(lineage)
    else:
        if column not in table.schema:
            raise KeyError(f"unknown attribute {column!r} in {table.name!r}")
        cell = lineage.cell(column)
        root = LineageTree(
            kind="cell",
            label=f"{table.name}[{row_key}].{column}",
            relation=table.name,
            row_key=row_key,
            attribute=column,
            value=values.get(column),
            operator=cell.operator,
            mapping_id=lineage.mapping_id,
            detail=cell.detail,
        )
        witnesses = cell.witnesses
        events = _cell_events(lineage, column)
    root.events = events
    for witness in sorted(witnesses, key=_witness_sort_key):
        witness_node = LineageTree(
            kind="witness",
            label=" + ".join(str(ref) for ref in sorted(witness)) or "(constant)",
        )
        for ref in sorted(witness):
            witness_node.children.append(_source_leaf(ref, catalog))
        root.children.append(witness_node)
    return root


def explain_result(
    table: Table | None,
    store: ProvenanceStore | None,
    row: int | str,
    column: str | None = None,
    *,
    catalog=None,
) -> LineageTree:
    """The one shared explain implementation behind every public surface.

    :meth:`repro.wrangler.pipeline.Wrangler.explain`,
    :meth:`repro.wrangler.result.WranglingResult.explain` and the service's
    explain endpoint all route here, so their signatures, errors and return
    values cannot drift apart. Raises ``LookupError`` when there is no
    result table yet or provenance tracking is disabled.
    """
    if table is None:
        raise LookupError("no materialised result to explain yet; run() first")
    if store is None or not store.enabled:
        raise LookupError(
            "provenance tracking is disabled for this session "
            "(WranglerConfig.track_provenance=False)")
    return explain(table, row, column, store=store, catalog=catalog)


def render_lineage(tree: LineageTree, *, indent: str = "") -> str:
    """A human-readable, multi-line rendering of an explanation tree."""
    lines = [f"{indent}{_describe_node(tree)}"]
    for event in tree.events:
        lines.append(f"{indent}  * {event}")
    for index, child in enumerate(tree.children):
        last = index == len(tree.children) - 1
        connector = "`-" if last else "|-"
        child_indent = indent + ("   " if last else "|  ")
        child_lines = render_lineage(child, indent=child_indent).splitlines()
        first = child_lines[0].removeprefix(child_indent)
        lines.append(f"{indent}{connector} {first}")
        lines.extend(child_lines[1:])
    return "\n".join(lines)


# -- internals ----------------------------------------------------------------


def _witness_sort_key(witness) -> tuple:
    return tuple(sorted(witness))


def _locate_row(table: Table, row: int | str) -> tuple[str, dict[str, Any]]:
    keys = table.row_keys()
    if isinstance(row, int):
        if not -len(table) <= row < len(table):
            raise KeyError(f"row index {row} out of range for {table.name!r}")
        return keys[row], table[row].to_dict()
    row_key = str(row)
    for index, key in enumerate(keys):
        if key == row_key:
            return row_key, table[index].to_dict()
    raise KeyError(f"no row with key {row_key!r} in {table.name!r}")


def _tuple_events(lineage: TupleLineage) -> list[str]:
    events = []
    if lineage.mapping_id is not None:
        events.append(f"materialised by mapping {lineage.mapping_id}")
    if lineage.operator != "mapping":
        events.append(f"last derived by {lineage.operator}")
    return events


def _cell_events(lineage: TupleLineage, attribute: str) -> list[str]:
    events = []
    if lineage.mapping_id is not None:
        source = (lineage.cell_sources or {}).get(attribute)
        if source is not None:
            events.append(f"assigned from {source} by mapping {lineage.mapping_id}")
        else:
            events.append(f"not assigned by mapping {lineage.mapping_id} (constant NULL)")
    override = lineage.cells.get(attribute)
    if override is not None:
        detail = f" ({override.detail})" if override.detail else ""
        events.append(f"rewritten by {override.operator}{detail}")
    return events


def _source_leaf(ref: SourceRef, catalog) -> LineageTree:
    source_row = None
    if catalog is not None and ref.relation in catalog:
        index = ref.row_index
        source_table = catalog.get(ref.relation)
        if index is not None and 0 <= index < len(source_table):
            source_row = source_table[index].to_dict()
    return LineageTree(
        kind="source",
        label=str(ref),
        relation=ref.relation,
        row_key=ref.row_id,
        source_row=source_row,
    )


def _describe_node(tree: LineageTree) -> str:
    if tree.kind in ("cell", "tuple"):
        head = tree.label
        if tree.kind == "cell":
            head += f" = {tree.value!r}"
        parts = []
        if tree.operator:
            parts.append(f"operator={tree.operator}")
        if tree.detail:
            parts.append(f"detail={tree.detail}")
        suffix = f"  [{', '.join(parts)}]" if parts else ""
        return f"{head}{suffix}"
    if tree.kind == "witness":
        return f"witness: {tree.label}"
    if tree.source_row is not None:
        rendered = ", ".join(f"{k}={v!r}" for k, v in tree.source_row.items())
        return f"{tree.label} {{{rendered}}}"
    return tree.label
