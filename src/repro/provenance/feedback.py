"""Lineage-targeted feedback propagation.

When a user marks a result value wrong, the why-provenance of that cell
names exactly the source rows, assignments and mappings that produced it.
This module turns feedback facts into:

- **per-assignment evidence** — ``(source relation, target attribute)``
  tallies attributed through the recorded lineage rather than through the
  coarse ``_source`` bookkeeping column. The difference matters for joined
  attributes (a wrong ``crimerank`` is attributed to the joined-in lookup
  source, not the driving portal) and for fused cells (the sources whose
  value actually won the conflict are blamed, not the cluster's first
  member);
- **implicated mappings** — the candidate mappings containing a blamed
  assignment, published as the ``lineage_penalties`` artifact. Mapping
  scoring decrements the confidence of exactly these mappings, which is
  what triggers *selective* re-selection instead of a global score update.

Cells whose current value was produced by a repair are attributed to the
repairing CFD (pseudo-source ``cfd:<id>``) rather than to the mapping — the
mapping did not produce the wrong value, the repair did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.facts import Predicates
from repro.provenance.model import OPERATOR_REPAIR, ProvenanceStore

__all__ = [
    "LINEAGE_PENALTIES_ARTIFACT_KEY",
    "LineageEvidence",
    "LineagePropagation",
    "LineageFeedbackPropagator",
]

#: Artifact key for per-mapping feedback penalties derived from lineage.
LINEAGE_PENALTIES_ARTIFACT_KEY = "lineage_penalties"


@dataclass
class LineageEvidence:
    """Feedback tallies for one ``(source relation, target attribute)`` pair."""

    source_relation: str
    target_attribute: str
    correct: int = 0
    incorrect: int = 0
    #: Feedback ids that contributed (diagnostics / explanations).
    feedback_ids: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of annotations attributed to this assignment."""
        return self.correct + self.incorrect

    @property
    def error_rate(self) -> float:
        """Fraction of attributed annotations that were negative."""
        if self.total == 0:
            return 0.0
        return self.incorrect / self.total


@dataclass
class LineagePropagation:
    """What one propagation pass derived from the feedback facts."""

    #: (source relation, target attribute) -> evidence.
    evidence: dict[tuple[str, str], LineageEvidence]
    #: mapping id -> {"correct", "incorrect", "error_rate"}.
    mapping_penalties: dict[str, dict[str, float]]
    #: Feedback fact rows that could not be attributed through lineage
    #: (no recorded lineage for their tuple) — callers may fall back to the
    #: coarse ``_source``-column attribution for these.
    unattributed: list[tuple] = field(default_factory=list)

    def implicated_mappings(self) -> list[str]:
        """Mappings with at least one negatively annotated assignment."""
        return sorted(
            mapping_id
            for mapping_id, entry in self.mapping_penalties.items()
            if entry["incorrect"] > 0
        )


class LineageFeedbackPropagator:
    """Attributes feedback facts through recorded lineage."""

    def emit_deltas(self, kb, *, seen: Iterable[str] = ()) -> "ChangeSet":
        """The feedback facts as a typed change set for incremental re-wrangling.

        ``seen`` names feedback ids whose table effects are already
        materialised (tracked by the incremental state); they are skipped, so
        the emitted change set describes exactly the *new* revisions. This is
        the bridge from the feedback loop into
        :mod:`repro.incremental`: annotations become
        :class:`~repro.incremental.delta.FeedbackDelta` objects whose row
        keys the impact index closes over the recorded lineage.
        """
        from repro.incremental.delta import ChangeSet, FeedbackDelta

        seen_ids = set(seen)
        deltas = []
        for fid, relation, row_key, attribute, verdict in kb.facts(Predicates.FEEDBACK):
            if str(fid) in seen_ids:
                continue
            deltas.append(
                FeedbackDelta(
                    relation=str(relation),
                    row_key=str(row_key),
                    attribute=None if attribute == Predicates.ANY_ATTRIBUTE else str(attribute),
                    correct=verdict == Predicates.CORRECT,
                    feedback_id=str(fid),
                )
            )
        return ChangeSet(deltas=tuple(deltas), origin="feedback facts")

    def collect(
        self,
        kb,
        store: ProvenanceStore | None,
        candidates: Mapping[str, object] | None = None,
    ) -> LineagePropagation:
        """Attribute every feedback fact via lineage.

        ``candidates`` is the candidate-mapping artifact (id ->
        :class:`~repro.mapping.model.SchemaMapping`); when given, the
        per-assignment evidence is folded into per-mapping penalties for
        every candidate containing a blamed assignment.
        """
        evidence: dict[tuple[str, str], LineageEvidence] = {}
        unattributed: list[tuple] = []
        feedback_rows = kb.facts(Predicates.FEEDBACK)
        attribute_cache: dict[str, list[str]] = {}
        for row in feedback_rows:
            fid, relation, row_key, attribute, verdict = row
            attributed = False
            if store is not None:
                relation = str(relation)
                if relation not in attribute_cache:
                    attribute_cache[relation] = self._result_attributes(kb, relation)
                attributed = self._attribute_one(
                    store,
                    evidence,
                    str(fid),
                    relation,
                    str(row_key),
                    str(attribute),
                    verdict == Predicates.CORRECT,
                    attribute_cache[relation],
                )
            if not attributed:
                unattributed.append(row)
        penalties = self._mapping_penalties(evidence, candidates or {})
        return LineagePropagation(
            evidence=evidence,
            mapping_penalties=penalties,
            unattributed=unattributed,
        )

    # -- internals ------------------------------------------------------------

    def _attribute_one(
        self,
        store: ProvenanceStore,
        evidence: dict[tuple[str, str], LineageEvidence],
        feedback_id: str,
        relation: str,
        row_key: str,
        attribute: str,
        correct: bool,
        tuple_attributes: Iterable[str],
    ) -> bool:
        lineage = store.tuple_lineage(relation, row_key)
        if lineage is None:
            return False
        if attribute == Predicates.ANY_ATTRIBUTE:
            attributes = list(tuple_attributes)
        else:
            attributes = [attribute]
        attributed = False
        for target_attribute in attributes:
            cell = lineage.cell(target_attribute)
            if cell.operator == OPERATOR_REPAIR:
                # The repair, not the mapping, produced the current value.
                sources = {f"cfd:{cell.detail}" if cell.detail else "cfd:?"}
            else:
                sources = cell.source_relations()
            for source in sorted(sources):
                entry = evidence.setdefault(
                    (source, target_attribute),
                    LineageEvidence(source, target_attribute),
                )
                if correct:
                    entry.correct += 1
                else:
                    entry.incorrect += 1
                entry.feedback_ids.append(feedback_id)
                attributed = True
        return attributed

    @staticmethod
    def _result_attributes(kb, relation: str) -> list[str]:
        if not kb.has_table(relation):
            return []
        table = kb.get_table(relation)
        return [name for name in table.schema.attribute_names if not name.startswith("_")]

    @staticmethod
    def _mapping_penalties(
        evidence: Mapping[tuple[str, str], LineageEvidence],
        candidates: Mapping[str, object],
    ) -> dict[str, dict[str, float]]:
        penalties: dict[str, dict[str, float]] = {}
        for mapping_id, mapping in candidates.items():
            correct = 0
            incorrect = 0
            for leaf in mapping.leaf_mappings():
                for assignment in leaf.assignments:
                    entry = evidence.get((assignment.source_relation, assignment.target_attribute))
                    if entry is None:
                        continue
                    correct += entry.correct
                    incorrect += entry.incorrect
            if correct or incorrect:
                total = correct + incorrect
                penalties[mapping_id] = {
                    "correct": float(correct),
                    "incorrect": float(incorrect),
                    "error_rate": incorrect / total,
                }
        return penalties
