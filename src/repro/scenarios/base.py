"""The generic, family-agnostic scenario contract.

A :class:`Scenario` bundles everything one wrangling workload needs —
sources, target schema, data context (reference/master tables) and the
ground truth used for evaluation and simulated feedback — without being
tied to any particular domain. The real-estate demonstration of the paper
is one instance; the parametric generator in :mod:`repro.scenarios.synth`
produces arbitrarily many others.

The contract is exactly what :class:`repro.wrangler.Wrangler` consumes, so
any scenario (hand-written or generated) can be wrangled, evaluated and
batch-executed through the same pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.relational.schema import Schema
from repro.relational.table import Table

__all__ = ["Scenario"]


@dataclass
class Scenario:
    """One self-contained wrangling workload.

    Attributes mirror the ingredients of the paper's demonstration
    (Figure 2): noisy ``sources`` to be integrated into ``target``,
    optional data context (``reference`` and ``master``) and the
    ``ground_truth`` the harness scores against (never visible to the
    wrangling process itself).
    """

    #: Human-readable scenario label, unique within a batch.
    name: str
    #: Name of the family that generated this scenario.
    family: str
    #: Seed the scenario was generated from (experiments are reproducible).
    seed: int
    #: The target schema the user declares.
    target: Schema
    #: The noisy source tables to be wrangled.
    sources: list[Table]
    #: Ground truth in the target schema (evaluation / simulated feedback).
    ground_truth: Table
    #: Attributes that (approximately) key the ground truth; used to align
    #: result rows with ground-truth rows for evaluation and feedback.
    evaluation_key: tuple[str, ...]
    #: Reference data bound as data context (None when the family has none).
    reference: Table | None = None
    #: Master data bound as data context (None when the family has none).
    master: Table | None = None
    #: The generator configuration this scenario was built from.
    config: Any = None
    #: Free-form extras (family-specific diagnostics, directories, ...).
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def source_count(self) -> int:
        """Number of source tables."""
        return len(self.sources)

    @property
    def total_source_rows(self) -> int:
        """Total tuple volume across all sources."""
        return sum(len(table) for table in self.sources)

    def source_names(self) -> list[str]:
        """Relation names of the sources, in registration order."""
        return [table.name for table in self.sources]

    def install(self, wrangler) -> None:
        """Register sources and the target schema on a wrangler session.

        Data context is *not* asserted here: binding reference/master data is
        a separate pay-as-you-go step (Figure 3(b)) that callers trigger
        explicitly — see :mod:`repro.wrangler.batch`.
        """
        wrangler.add_sources(self.sources)
        wrangler.set_target_schema(self.target)

    def describe(self) -> dict[str, Any]:
        """A compact, JSON-friendly description of the scenario."""
        return {
            "name": self.name,
            "family": self.family,
            "seed": self.seed,
            "target": self.target.name,
            "sources": self.source_names(),
            "source_rows": self.total_source_rows,
            "ground_truth_rows": len(self.ground_truth),
            "evaluation_key": list(self.evaluation_key),
            "has_reference": self.reference is not None,
            "has_master": self.master is not None,
        }
