"""The real-estate demonstration scenario (paper §2.1, Figure 2).

The scenario brings together:

- two web-extracted property sources, **Rightmove** and **Onthemarket**
  (produced by DIADEM in the paper; generated synthetically here, with the
  extraction-error model of :mod:`repro.extraction.noise`);
- one open-government source, **Deprivation** (postcode → crime rank);
- a **target schema** ``property(type, description, street, postcode,
  bedrooms, price, crimerank)``;
- **data context**: an Address reference list (street, city, postcode) and
  optionally master/example data;
- ground truth used by the benchmark harness to evaluate result quality and
  to simulate user feedback.

Everything is generated from an explicit seed so experiments are exactly
reproducible; sizes, overlap and noise rates are configurable so the
benchmarks can sweep them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.extraction.noise import NoiseInjector, NoiseProfile
from repro.extraction.pages import ResultPage, SiteTemplate, SyntheticSite
from repro.relational.schema import Attribute, Schema
from repro.relational.table import Table
from repro.relational.types import DataType

__all__ = [
    "ScenarioConfig",
    "RealEstateScenario",
    "generate_scenario",
    "target_schema",
    "RIGHTMOVE_TEMPLATE",
    "ONTHEMARKET_TEMPLATE",
]

#: Street-name building blocks (UK flavoured, like the paper's Manchester data).
_STREET_STEMS = (
    "Oak Elm Birch Cedar Willow Maple Ash Holly Rowan Hawthorn "
    "Victoria Albert Church Mill Station Park Chapel School Bridge "
    "Market King Queen Castle Garden Meadow Orchard River Spring "
    "Granville Clarence Wellington Nelson Portland Cambridge Oxford"
).split()
_STREET_SUFFIXES = ("Street", "Road", "Avenue", "Lane", "Close", "Drive", "Grove", "Way")
_CITIES = ("Manchester", "Salford", "Stockport", "Oldham", "Bury", "Rochdale", "Bolton")
_PROPERTY_TYPES = ("detached", "semi-detached", "terraced", "flat", "bungalow")
_TYPE_BASE_PRICE = {
    "detached": 420_000.0,
    "semi-detached": 280_000.0,
    "terraced": 190_000.0,
    "flat": 150_000.0,
    "bungalow": 260_000.0,
}
_DESCRIPTION_FEATURES = (
    "recently refurbished",
    "with a south-facing garden",
    "close to local schools",
    "with off-road parking",
    "near the tram stop",
    "with a modern kitchen",
    "offering spacious living accommodation",
    "in a quiet cul-de-sac",
    "with original period features",
    "ideal for first-time buyers",
)


def target_schema(name: str = "property") -> Schema:
    """The target schema of Figure 2(b)."""
    return Schema(
        name,
        [
            Attribute("type", DataType.STRING, description="property type"),
            Attribute("description", DataType.STRING, description="free-text description"),
            Attribute("street", DataType.STRING, description="street of the property"),
            Attribute("postcode", DataType.STRING, description="UK postcode"),
            Attribute("bedrooms", DataType.INTEGER, description="number of bedrooms"),
            Attribute("price", DataType.FLOAT, description="asking price in GBP"),
            Attribute("crimerank", DataType.INTEGER, description="crime rank of the area"),
        ],
    )


#: Site templates used when the scenario is generated as web pages.
RIGHTMOVE_TEMPLATE = SiteTemplate(
    name="rightmove",
    field_labels={
        "price": "Price",
        "street": "Street",
        "postcode": "Postcode",
        "bedrooms": "Bedrooms",
        "type": "Property type",
        "description": "Description",
    },
    price_format="currency",
)

ONTHEMARKET_TEMPLATE = SiteTemplate(
    name="onthemarket",
    field_labels={
        "price": "Asking price",
        "street": "Address line",
        "postcode": "Post code",
        "bedrooms": "Beds",
        "type": "Style",
        "description": "Summary",
    },
    price_format="plain",
)


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of the generated scenario."""

    seed: int = 7
    #: Number of ground-truth properties.
    properties: int = 1000
    #: Number of distinct postcodes (each postcode belongs to one street).
    postcodes: int = 150
    #: Fraction of ground-truth properties listed on each portal.
    rightmove_coverage: float = 0.75
    onthemarket_coverage: float = 0.65
    #: Fraction of postcodes covered by the Deprivation open-government data.
    deprivation_coverage: float = 0.95
    #: Fraction of addresses present in the reference Address list.
    address_coverage: float = 1.0
    #: Fraction of ground-truth properties present in the master list.
    master_coverage: float = 0.3
    #: Noise applied to the Rightmove extraction.
    rightmove_noise: NoiseProfile = field(
        default_factory=lambda: NoiseProfile(
            missing_rates={"description": 0.10, "bedrooms": 0.05, "postcode": 0.03, "type": 0.05},
            bedroom_area_rate=0.15,
            street_typo_rate=0.05,
            postcode_format_rate=0.10,
            type_variation_rate=0.20,
        )
    )
    #: Noise applied to the Onthemarket extraction.
    onthemarket_noise: NoiseProfile = field(
        default_factory=lambda: NoiseProfile(
            missing_rates={
                "description": 0.20,
                "bedrooms": 0.10,
                "postcode": 0.08,
                "street": 0.05,
                "type": 0.10,
            },
            bedroom_area_rate=0.02,
            street_typo_rate=0.10,
            postcode_format_rate=0.05,
            type_variation_rate=0.10,
        )
    )

    def with_noise_scale(self, scale: float) -> "ScenarioConfig":
        """A copy with every noise rate multiplied by ``scale`` (capped at 0.95)."""

        def scaled(profile: NoiseProfile) -> NoiseProfile:
            return NoiseProfile(
                missing_rates={k: min(0.95, v * scale) for k, v in profile.missing_rates.items()},
                bedroom_area_rate=min(0.95, profile.bedroom_area_rate * scale),
                street_typo_rate=min(0.95, profile.street_typo_rate * scale),
                postcode_format_rate=min(0.95, profile.postcode_format_rate * scale),
                type_variation_rate=min(0.95, profile.type_variation_rate * scale),
            )

        return replace(
            self,
            rightmove_noise=scaled(self.rightmove_noise),
            onthemarket_noise=scaled(self.onthemarket_noise),
        )


@dataclass
class RealEstateScenario:
    """Everything the demonstration (and the benchmarks) need."""

    config: ScenarioConfig
    target: Schema
    #: The web-extracted property sources plus the open-government source.
    rightmove: Table
    onthemarket: Table
    deprivation: Table
    #: Data context: the Address reference list (street, city, postcode).
    address_reference: Table
    #: Optional master data: the properties the user is interested in.
    master: Table
    #: Ground truth in the target schema (used for evaluation and simulated
    #: feedback; not available to the wrangling process itself).
    ground_truth: Table

    def sources(self) -> list[Table]:
        """The source tables in the order of Figure 2(a)."""
        return [self.rightmove, self.onthemarket, self.deprivation]

    def web_pages(self) -> dict[str, list[ResultPage]]:
        """The property sources rendered as deep-web result pages.

        The rendered pages contain exactly the same (noisy) records as the
        :attr:`rightmove` / :attr:`onthemarket` tables, so the extraction
        path and the direct-table path are interchangeable in experiments.
        """
        pages = {}
        for table, template in (
            (self.rightmove, RIGHTMOVE_TEMPLATE),
            (self.onthemarket, ONTHEMARKET_TEMPLATE),
        ):
            records = []
            for row in table.rows():
                record = row.to_dict()
                # Render under canonical attribute names: the site template
                # maps them to its own labels.
                records.append(
                    {
                        "price": record.get(_source_attr(table.name, "price")),
                        "street": record.get(_source_attr(table.name, "street")),
                        "postcode": record.get(_source_attr(table.name, "postcode")),
                        "bedrooms": record.get(_source_attr(table.name, "bedrooms")),
                        "type": record.get(_source_attr(table.name, "type")),
                        "description": record.get(_source_attr(table.name, "description")),
                    }
                )
            pages[table.name] = SyntheticSite(template).render_pages(records)
        return pages


#: Attribute naming used by each source (Onthemarket deliberately uses
#: different names so schema matching has real work to do).
_RIGHTMOVE_ATTRS = {
    "price": "price",
    "street": "street",
    "postcode": "postcode",
    "bedrooms": "bedrooms",
    "type": "type",
    "description": "description",
}
_ONTHEMARKET_ATTRS = {
    "price": "asking_price",
    "street": "address_street",
    "postcode": "post_code",
    "bedrooms": "beds",
    "type": "property_type",
    "description": "summary",
}


def _source_attr(source_name: str, canonical: str) -> str:
    if source_name == "onthemarket":
        return _ONTHEMARKET_ATTRS[canonical]
    return _RIGHTMOVE_ATTRS[canonical]


def generate_scenario(config: ScenarioConfig | None = None) -> RealEstateScenario:
    """Generate the full scenario deterministically from ``config``."""
    config = config or ScenarioConfig()
    rng = random.Random(config.seed)

    streets = _generate_streets(rng)
    postcode_directory = _generate_postcodes(rng, config.postcodes, streets)
    properties = _generate_properties(rng, config.properties, postcode_directory)

    deprivation = _deprivation_table(rng, config, postcode_directory)
    crime_by_postcode = {row[0]: row[1] for row in deprivation.tuples()}
    ground_truth = _ground_truth_table(properties, crime_by_postcode)
    address_reference = _address_table(rng, config, postcode_directory)
    master = _master_table(rng, config, properties)
    rightmove = _portal_table(rng, config, properties, "rightmove")
    onthemarket = _portal_table(rng, config, properties, "onthemarket")

    return RealEstateScenario(
        config=config,
        target=target_schema(),
        rightmove=rightmove,
        onthemarket=onthemarket,
        deprivation=deprivation,
        address_reference=address_reference,
        master=master,
        ground_truth=ground_truth,
    )


# -- generation internals -----------------------------------------------------


def _generate_streets(rng: random.Random) -> list[tuple[str, str]]:
    """(street, city) pairs; unique street names."""
    streets = []
    seen = set()
    for stem in _STREET_STEMS:
        for suffix in _STREET_SUFFIXES:
            name = f"{stem} {suffix}"
            if name in seen:
                continue
            seen.add(name)
            streets.append((name, rng.choice(_CITIES)))
    rng.shuffle(streets)
    return streets


def _generate_postcodes(
    rng: random.Random, count: int, streets: list[tuple[str, str]]
) -> list[dict]:
    """Postcode directory entries: postcode → (street, city).

    Each postcode belongs to exactly one street (so ``postcode → street`` and
    ``postcode → city`` are exact FDs in the reference data, which is what
    CFD learning exploits); a street may have several postcodes.
    """
    directory = []
    seen = set()
    areas = (
        "M1 M2 M3 M4 M5 M6 M7 M8 M9 M11 M12 M13 "
        "M14 M15 M16 M19 M20 M21 M22 M23 M25 M27 M28"
    ).split()
    letters = "ABCDEFGHJLNPQRSTUWXYZ"
    attempts = 0
    while len(directory) < count and attempts < count * 50:
        attempts += 1
        area = rng.choice(areas)
        suffix = f"{rng.randint(1, 9)}{rng.choice(letters)}{rng.choice(letters)}"
        postcode = f"{area} {suffix}"
        if postcode in seen:
            continue
        seen.add(postcode)
        street, city = streets[len(directory) % len(streets)]
        directory.append({"postcode": postcode, "street": street, "city": city})
    return directory


def _generate_properties(
    rng: random.Random, count: int, postcode_directory: list[dict]
) -> list[dict]:
    properties = []
    for index in range(count):
        entry = rng.choice(postcode_directory)
        property_type = rng.choice(_PROPERTY_TYPES)
        bedrooms = max(1, min(6, int(rng.gauss(3, 1.2))))
        base = _TYPE_BASE_PRICE[property_type]
        price = round(max(60_000.0, base * (0.75 + 0.18 * bedrooms) * rng.uniform(0.85, 1.15)), -3)
        description = (
            f"A {bedrooms} bedroom {property_type} property on "
            f"{entry['street']} {rng.choice(_DESCRIPTION_FEATURES)}"
        )
        properties.append(
            {
                "property_id": f"p{index:05d}",
                "type": property_type,
                "description": description,
                "street": entry["street"],
                "city": entry["city"],
                "postcode": entry["postcode"],
                "bedrooms": bedrooms,
                "price": price,
            }
        )
    return properties


def _deprivation_table(
    rng: random.Random, config: ScenarioConfig, postcode_directory: list[dict]
) -> Table:
    schema = Schema(
        "deprivation",
        [
            Attribute("postcode", DataType.STRING),
            Attribute("crime", DataType.INTEGER, description="crime rank (1 = worst)"),
        ],
    )
    covered = [entry for entry in postcode_directory if rng.random() < config.deprivation_coverage]
    ranks = list(range(1, len(covered) + 1))
    rng.shuffle(ranks)
    rows = [(entry["postcode"], rank) for entry, rank in zip(covered, ranks)]
    return Table(schema, rows)


def _ground_truth_table(properties: list[dict], crime_by_postcode: dict) -> Table:
    schema = target_schema("property_ground_truth")
    rows = []
    for record in properties:
        rows.append(
            (
                record["type"],
                record["description"],
                record["street"],
                record["postcode"],
                record["bedrooms"],
                record["price"],
                crime_by_postcode.get(record["postcode"]),
            )
        )
    return Table(schema, rows)


def _address_table(
    rng: random.Random, config: ScenarioConfig, postcode_directory: list[dict]
) -> Table:
    schema = Schema(
        "address",
        [
            Attribute("street", DataType.STRING),
            Attribute("city", DataType.STRING),
            Attribute("postcode", DataType.STRING),
        ],
    )
    rows = [
        (entry["street"], entry["city"], entry["postcode"])
        for entry in postcode_directory
        if rng.random() < config.address_coverage
    ]
    return Table(schema, rows)


def _master_table(rng: random.Random, config: ScenarioConfig, properties: list[dict]) -> Table:
    schema = Schema(
        "master_properties",
        [
            Attribute("street", DataType.STRING),
            Attribute("postcode", DataType.STRING),
            Attribute("price", DataType.FLOAT),
        ],
    )
    rows = [
        (record["street"], record["postcode"], record["price"])
        for record in properties
        if rng.random() < config.master_coverage
    ]
    return Table(schema, rows)


def _portal_table(
    rng: random.Random, config: ScenarioConfig, properties: list[dict], portal: str
) -> Table:
    coverage = config.rightmove_coverage if portal == "rightmove" else config.onthemarket_coverage
    noise = config.rightmove_noise if portal == "rightmove" else config.onthemarket_noise
    listed = [record for record in properties if rng.random() < coverage]
    injector = NoiseInjector(noise, seed=rng.randrange(1 << 30))
    clean_records = [
        {
            "price": record["price"],
            "street": record["street"],
            "postcode": record["postcode"],
            "bedrooms": record["bedrooms"],
            "type": record["type"],
            "description": record["description"],
        }
        for record in listed
    ]
    noisy_records = injector.corrupt_records(clean_records)

    attrs = _RIGHTMOVE_ATTRS if portal == "rightmove" else _ONTHEMARKET_ATTRS
    schema = Schema(
        portal,
        [
            Attribute(attrs["price"], DataType.FLOAT),
            Attribute(attrs["street"], DataType.STRING),
            Attribute(attrs["postcode"], DataType.STRING),
            Attribute(attrs["bedrooms"], DataType.INTEGER),
            Attribute(attrs["type"], DataType.STRING),
            Attribute(attrs["description"], DataType.STRING),
        ],
    )
    rows = []
    for record in noisy_records:
        rows.append(
            (
                record["price"],
                record["street"],
                record["postcode"],
                record["bedrooms"],
                record["type"],
                record["description"],
            )
        )
    return Table(schema, rows)
