"""Parametric scenario generation: families of wrangling workloads.

The paper's evaluation demonstrates cost-effectiveness on a single
real-estate scenario; the CQA literature (Koutris & Wijsen; Lopatenko &
Bertossi) stresses that repair and quality behaviour only becomes visible
across *families* of inconsistent instances. This module generates such
families parametrically:

- **tuple volume** — ``SynthConfig.entities`` scales from 10² to 10⁵;
- **source count** — any number of overlapping, noisy source tables;
- **noise / conflict rate** — per-cell corruption that makes sources
  disagree (typos, perturbed numbers), driving repair and fusion;
- **missing-value patterns** — uniform, column-concentrated or
  tail-heavy nulls;
- **schema drift** — per-source attribute renaming from per-field synonym
  pools, so schema matching has real work to do;
- **reference-data size** — how much of the domain directory is available
  as data context (the FD-bearing reference table CFD learning mines).

Three synthetic families ship out of the box — ``product_catalog``,
``sensor_log`` and ``org_directory`` — plus a ``real_estate`` family that
adapts the paper's hand-written scenario to the same generic
:class:`~repro.scenarios.base.Scenario` contract. New families register via
:func:`register_family`.

Every scenario is generated deterministically from ``SynthConfig.seed``;
equal configs produce byte-identical scenarios in any process.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.relational.schema import Attribute, Schema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.scenarios.base import Scenario

__all__ = [
    "MISSING_PATTERNS",
    "FieldSpec",
    "ScenarioFamily",
    "SynthConfig",
    "family_names",
    "generate_synthetic",
    "register_family",
    "scenario_suite",
]

#: Supported missing-value patterns (see :func:`_missing_probability`).
MISSING_PATTERNS = ("random", "column", "tail")


@dataclass(frozen=True)
class SynthConfig:
    """Parameters of one generated scenario (all knobs of the generator)."""

    #: Which registered family to generate (see :func:`family_names`).
    family: str = "product_catalog"
    #: Seed of the scenario; equal configs generate identical scenarios.
    seed: int = 0
    #: Number of ground-truth entities (tuple volume, 10²–10⁵).
    entities: int = 300
    #: Number of generated source tables.
    sources: int = 2
    #: Fraction of entities listed in each source.
    source_coverage: float = 0.75
    #: Per-cell probability of a corrupted (conflicting) value.
    noise: float = 0.08
    #: Per-cell probability of a missing value (shaped by the pattern).
    missing: float = 0.08
    #: How nulls are distributed: ``random`` (uniform), ``column``
    #: (concentrated on half the attributes) or ``tail`` (later rows).
    missing_pattern: str = "random"
    #: Per-source probability that an attribute is renamed to a synonym.
    schema_drift: float = 0.5
    #: Fraction of the domain directory exposed as reference data.
    reference_size: float = 1.0
    #: Fraction of entities present in the master-data table.
    master_coverage: float = 0.25
    #: Cross-family source mixing: extra *distractor* sources generated from
    #: these other families' schemas are registered alongside the scenario's
    #: own sources. They describe unrelated entities in unrelated schemas,
    #: so matching/selection must keep them out of the result — the
    #: robustness workload of heterogeneous source lakes.
    mix_families: tuple[str, ...] = ()
    #: Entities per mixed-in distractor source (0 → entities // 10).
    mix_entities: int = 0
    #: Number of conjunctive queries to generate alongside the scenario
    #: (``details["query_workload"]``), each with its ground-truth certain
    #: answers — the CQA evaluation workload. 0 → no workload.
    query_workload: int = 0
    #: Scenario label; defaults to ``{family}-s{seed}``.
    name: str | None = None

    def label(self) -> str:
        """The scenario label this config generates under."""
        return self.name or f"{self.family}-s{self.seed}"

    def validate(self) -> None:
        """Raise ``ValueError`` when any knob is out of range."""
        if self.family not in _FAMILIES:
            raise ValueError(
                f"unknown scenario family {self.family!r}; "
                f"registered families: {', '.join(family_names())}"
            )
        if self.entities < 1:
            raise ValueError(f"entities must be >= 1, got {self.entities}")
        if self.sources < 1:
            raise ValueError(f"sources must be >= 1, got {self.sources}")
        if self.missing_pattern not in MISSING_PATTERNS:
            raise ValueError(
                f"unknown missing pattern {self.missing_pattern!r}; "
                f"expected one of {', '.join(MISSING_PATTERNS)}"
            )
        for knob in (
            "source_coverage",
            "noise",
            "missing",
            "schema_drift",
            "reference_size",
            "master_coverage",
        ):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{knob} must be within [0, 1], got {value}")
        for mixed in self.mix_families:
            if mixed not in _FAMILIES:
                raise ValueError(
                    f"unknown mix family {mixed!r}; "
                    f"registered families: {', '.join(family_names())}"
                )
        if self.mix_entities < 0:
            raise ValueError(f"mix_entities must be >= 0, got {self.mix_entities}")
        if self.query_workload < 0:
            raise ValueError(
                f"query_workload must be >= 0, got {self.query_workload}")


@dataclass(frozen=True)
class FieldSpec:
    """One target attribute of a family: type, drift synonyms, description."""

    name: str
    dtype: DataType
    #: Alternative names sources may use for this attribute (schema drift).
    synonyms: tuple[str, ...] = ()
    description: str = ""

    def attribute(self, name: str | None = None) -> Attribute:
        """The relational attribute (optionally under a drifted name)."""
        return Attribute(name or self.name, self.dtype, description=self.description)


@dataclass(frozen=True)
class ScenarioFamily:
    """A named domain: what entities look like and how sources drift.

    ``make_vocab(rng, config)`` builds the domain vocabulary, including a
    ``"directory"`` — a list of records carrying the family's functional
    dependencies (every entity copies its dependent attributes from one
    directory entry, so the FDs hold exactly in the reference data).
    ``make_entity(rng, index, vocab)`` produces one ground-truth entity as a
    dict over all field names.
    """

    name: str
    #: Name of the target relation (``product``, ``reading``, ...).
    target_relation: str
    fields: tuple[FieldSpec, ...]
    #: Attributes that (approximately) key an entity; excluded from noise
    #: and nulls so evaluation and feedback can align rows.
    evaluation_key: tuple[str, ...]
    #: Directory attributes exposed as the reference table (FD key first).
    reference_fields: tuple[str, ...]
    #: Relation name of the reference table.
    reference_relation: str
    #: Ground-truth attributes exposed as master data.
    master_fields: tuple[str, ...]
    #: Prefix for generated source relation names (``feed`` → ``feed1``...).
    source_prefix: str
    make_vocab: Callable[[random.Random, SynthConfig], dict]
    make_entity: Callable[[random.Random, int, dict], dict[str, Any]]
    #: Join-shaped families: target attributes listed here are *never*
    #: carried by the per-entity sources — they are only reachable by
    #: joining the ``lookup_relation`` source on ``lookup_key`` (like the
    #: paper's real-estate Deprivation table, which contributes the crime
    #: rank only via a postcode join). Empty tuple → no lookup source.
    lookup_fields: tuple[str, ...] = ()
    #: The target attribute the lookup source joins on.
    lookup_key: str = ""
    #: Relation name of the generated lookup source.
    lookup_relation: str = ""

    def target_schema(self) -> Schema:
        """The family's target schema."""
        return Schema(self.target_relation, [spec.attribute() for spec in self.fields])

    def build(self, config: SynthConfig) -> Scenario:
        """Generate one scenario of this family."""
        return _generate_from_family(self, config)


# -- registry -----------------------------------------------------------------

_FAMILIES: dict[str, Callable[[SynthConfig], Scenario]] = {}


def register_family(
    name: str,
    builder: Callable[[SynthConfig], Scenario] | ScenarioFamily,
    *,
    replace_existing: bool = False,
) -> None:
    """Register a scenario family under ``name``.

    ``builder`` is either a :class:`ScenarioFamily` or any callable mapping a
    :class:`SynthConfig` to a :class:`~repro.scenarios.base.Scenario`.

    The registry is per-process. The batch runner's process pool forks where
    the platform allows it, so runtime registrations carry over to workers;
    on spawn-only platforms (e.g. Windows) a custom family must be
    registered at import time of its defining module to be visible there.
    """
    if name in _FAMILIES and not replace_existing:
        raise ValueError(f"a scenario family named {name!r} is already registered")
    if isinstance(builder, ScenarioFamily):
        _FAMILIES[name] = builder.build
    else:
        _FAMILIES[name] = builder


def family_names() -> list[str]:
    """Sorted names of all registered scenario families."""
    return sorted(_FAMILIES)


def generate_synthetic(config: SynthConfig | None = None) -> Scenario:
    """Generate the scenario described by ``config`` (deterministic)."""
    config = config or SynthConfig()
    config.validate()
    return _FAMILIES[config.family](config)


def scenario_suite(
    families: Iterable[str] | None = None,
    *,
    per_family: int = 2,
    seed: int = 0,
    **overrides: Any,
) -> list[SynthConfig]:
    """A deterministic batch of configs spanning ``families``.

    With the defaults this yields ``per_family`` variants (distinct seeds) of
    every registered family; ``overrides`` are applied to every config
    (e.g. ``entities=1000, noise=0.15``).
    """
    chosen = list(families) if families is not None else family_names()
    configs = []
    for family_index, family in enumerate(chosen):
        if family not in _FAMILIES:
            raise ValueError(
                f"unknown scenario family {family!r}; "
                f"registered families: {', '.join(family_names())}"
            )
        for variant in range(per_family):
            derived = seed + 7919 * family_index + 104729 * variant
            configs.append(SynthConfig(family=family, seed=derived, **overrides))
    return configs


# -- generic generation internals ---------------------------------------------


def _family_rng(config: SynthConfig, family_name: str) -> random.Random:
    """Seeded RNG mixed with the family name (process-independent)."""
    return random.Random(config.seed * 2654435761 + zlib.crc32(family_name.encode("utf-8")))


def _directory_size(entities: int) -> int:
    """How many directory entries a domain of ``entities`` rows gets."""
    return max(6, min(500, entities // 10))


def _generate_from_family(family: ScenarioFamily, config: SynthConfig) -> Scenario:
    rng = _family_rng(config, family.name)
    vocab = family.make_vocab(rng, config)
    entities = [family.make_entity(rng, index, vocab) for index in range(config.entities)]

    target = family.target_schema()
    truth_schema = Schema(
        f"{family.target_relation}_ground_truth",
        [spec.attribute() for spec in family.fields],
    )
    ground_truth = Table(
        truth_schema,
        [tuple(entity[spec.name] for spec in family.fields) for entity in entities],
    )
    # Join-shaped families: lookup-only attributes are stripped from the
    # per-entity sources, so the wrangle can only populate them by joining
    # the lookup source.
    source_fields = tuple(
        spec for spec in family.fields if spec.name not in set(family.lookup_fields)
    )
    sources = [
        _source_table(rng, family, config, entities, index, fields=source_fields)
        for index in range(config.sources)
    ]
    if family.lookup_fields and family.lookup_relation:
        sources.append(_lookup_table(family, vocab))
    sources.extend(_mixed_sources(config))
    reference = _reference_table(rng, family, config, vocab)
    master = _master_table(rng, family, config, entities)

    details: dict[str, Any] = {"directory_size": len(vocab.get("directory", ()))}
    if config.query_workload > 0:
        details["query_workload"] = _query_workload(family, config, entities, vocab)

    return Scenario(
        name=config.label(),
        family=family.name,
        seed=config.seed,
        target=target,
        sources=sources,
        ground_truth=ground_truth,
        evaluation_key=family.evaluation_key,
        reference=reference,
        master=master,
        config=config,
        details=details,
    )


def _quote(value: Any) -> str:
    """Render one constant in the compact query text form."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if '"' in text:
        raise ValueError(f"cannot quote constant {text!r} in a query")
    return f'"{text}"'


def _query_workload(
    family: ScenarioFamily,
    config: SynthConfig,
    entities: Sequence[Mapping[str, Any]],
    vocab: Mapping[str, Any],
) -> list[dict[str, Any]]:
    """``config.query_workload`` conjunctive queries with ground-truth answers.

    The suite cycles through shapes that exercise both sides of the
    rewriting frontier: key lookups, scans, constant filters and (for
    join-shaped families) key joins through the lookup registry are
    first-order rewritable under the evaluation key; a sharing self-join is
    generated as the enumeration-fallback specimen. Every query is
    evaluated over the clean ground-truth instance — its certain answers
    under *any* repair semantics, the oracle the benchmarks assert against.
    """
    from repro.cqa import parse_query, query_answers

    target = family.target_relation
    key_attr = family.evaluation_key[0]
    schemas: dict[str, tuple[str, ...]] = {
        target: tuple(spec.name for spec in family.fields)
    }
    tables: dict[str, list[tuple]] = {
        target: [
            tuple(entity[spec.name] for spec in family.fields) for entity in entities
        ]
    }
    if family.lookup_fields and family.lookup_relation:
        lookup = _lookup_table(family, vocab)
        schemas[family.lookup_relation] = tuple(lookup.schema.attribute_names)
        tables[family.lookup_relation] = lookup.tuples()

    lookup_only = set(family.lookup_fields)
    value_attr = next(
        spec.name
        for spec in family.fields
        if spec.name != key_attr and spec.name not in lookup_only
    )
    # The filter attribute is the lowest-cardinality string field — selective
    # enough to be interesting, common enough that filters return rows.
    string_fields = [
        spec.name
        for spec in family.fields
        if spec.dtype is DataType.STRING
        and spec.name != key_attr
        and spec.name not in lookup_only
    ]
    cardinality = {
        name: len({entity[name] for entity in entities}) for name in string_fields
    }
    eligible = [name for name in string_fields if cardinality[name] > 1]
    filter_attr = (
        min(eligible, key=lambda name: (cardinality[name], name))
        if eligible
        else value_attr
    )

    rng = _family_rng(config, family.name + "/query_workload")

    def lookup_query(index: int) -> tuple[str, str, bool]:
        entity = entities[rng.randrange(len(entities))]
        text = (
            f"q{index}(V) :- {target}({key_attr}={_quote(entity[key_attr])}, "
            f"{value_attr}=V)."
        )
        return text, "lookup", True

    def scan_query(index: int) -> tuple[str, str, bool]:
        return (
            f"q{index}(K, V) :- {target}({key_attr}=K, {value_attr}=V).",
            "scan",
            True,
        )

    def filter_query(index: int) -> tuple[str, str, bool]:
        entity = entities[rng.randrange(len(entities))]
        text = (
            f"q{index}(K) :- {target}({key_attr}=K, "
            f"{filter_attr}={_quote(entity[filter_attr])})."
        )
        return text, "filter", True

    def join_query(index: int) -> tuple[str, str, bool]:
        join_attr = family.lookup_key
        carried = family.lookup_fields[-1]
        text = (
            f"q{index}(K, M) :- {target}({key_attr}=K, {join_attr}=D), "
            f"{family.lookup_relation}({join_attr}=D, {carried}=M)."
        )
        return text, "join", True

    def self_join_query(index: int) -> tuple[str, str, bool]:
        entity = entities[rng.randrange(len(entities))]
        text = (
            f"q{index}(K) :- {target}({key_attr}=K, {filter_attr}=F), "
            f"{target}({key_attr}={_quote(entity[key_attr])}, {filter_attr}=F)."
        )
        return text, "self_join", False

    shapes = [lookup_query, scan_query, filter_query]
    if family.lookup_fields and family.lookup_relation:
        shapes.append(join_query)
    shapes.append(self_join_query)

    workload = []
    for index in range(config.query_workload):
        text, kind, rewritable = shapes[index % len(shapes)](index)
        parsed = parse_query(text)
        answers = query_answers(parsed, schemas, tables)
        workload.append(
            {
                "query": text,
                "kind": kind,
                "rewritable": rewritable,
                "answers": [list(row) for row in answers],
            }
        )
    return workload


def _lookup_table(family: ScenarioFamily, vocab: Mapping[str, Any]) -> Table:
    """The join-only lookup source (one clean row per directory entry).

    Lookup sources model curated registries (the Deprivation table, a depot
    register): complete, noise-free, keyed by ``lookup_key``. Everything the
    per-entity sources lack about the lookup attributes must come from here,
    through a generated join mapping.
    """
    specs = {spec.name: spec for spec in family.fields}
    columns = (family.lookup_key, *family.lookup_fields)
    schema = Schema(family.lookup_relation, [specs[name].attribute() for name in columns])
    seen: set[Any] = set()
    rows = []
    for entry in vocab["directory"]:
        key = entry[family.lookup_key]
        if key in seen:
            continue
        seen.add(key)
        rows.append(tuple(entry[name] for name in columns))
    return Table(schema, rows)


def _mixed_sources(config: SynthConfig) -> list[Table]:
    """Distractor sources from other families (cross-family source mixing)."""
    mixed: list[Table] = []
    for position, family_name in enumerate(config.mix_families):
        entities = config.mix_entities or max(10, config.entities // 10)
        distractor = generate_synthetic(
            SynthConfig(
                family=family_name,
                seed=config.seed + 7207 * (position + 1),
                entities=entities,
                sources=1,
                noise=config.noise,
                missing=config.missing,
                schema_drift=config.schema_drift,
            )
        )
        for table in distractor.sources:
            mixed.append(table.rename(f"{table.name}_mix{position + 1}"))
    return mixed


def _source_table(
    rng: random.Random,
    family: ScenarioFamily,
    config: SynthConfig,
    entities: Sequence[Mapping[str, Any]],
    index: int,
    *,
    fields: tuple[FieldSpec, ...] | None = None,
) -> Table:
    """One noisy, schema-drifted source covering a subset of the entities."""
    listed = [entity for entity in entities if rng.random() < config.source_coverage]
    # Per-source column order and attribute names drift independently.
    ordered = list(fields if fields is not None else family.fields)
    rng.shuffle(ordered)
    drifted: dict[str, str] = {}
    for spec in ordered:
        if spec.synonyms and rng.random() < config.schema_drift:
            drifted[spec.name] = rng.choice(spec.synonyms)
        else:
            drifted[spec.name] = spec.name

    key = set(family.evaluation_key)
    positions = {spec.name: position for position, spec in enumerate(family.fields)}
    total = len(listed)
    rows = []
    for row_index, entity in enumerate(listed):
        values = []
        for spec in ordered:
            value = entity[spec.name]
            if spec.name not in key:
                if rng.random() < _missing_probability(
                    config, row_index, total, positions[spec.name]
                ):
                    values.append(None)
                    continue
                if rng.random() < config.noise:
                    value = _corrupt_value(rng, value, spec.dtype)
            values.append(value)
        rows.append(tuple(values))

    schema = Schema(
        f"{family.source_prefix}{index + 1}",
        [spec.attribute(drifted[spec.name]) for spec in ordered],
    )
    return Table(schema, rows)


def _missing_probability(
    config: SynthConfig, row_index: int, total_rows: int, position: int
) -> float:
    """Per-cell null probability under the configured missing pattern."""
    rate = config.missing
    if rate <= 0.0:
        return 0.0
    if config.missing_pattern == "column":
        # Concentrate nulls on every other attribute; overall rate preserved.
        return min(0.95, 2.0 * rate) if position % 2 == 0 else 0.0
    if config.missing_pattern == "tail":
        # Later rows degrade, as when an extractor drifts off a template.
        return min(0.95, 2.0 * rate * row_index / max(total_rows - 1, 1))
    return rate


def _corrupt_value(rng: random.Random, value: Any, dtype: DataType) -> Any:
    """A plausible corruption of ``value`` (the conflict channel)."""
    if value is None:
        return None
    if dtype is DataType.INTEGER and isinstance(value, int):
        if rng.random() < 0.1:
            return value * 10
        return max(0, value + rng.choice((-2, -1, 1, 2)))
    if dtype is DataType.FLOAT and isinstance(value, (int, float)):
        return round(float(value) * rng.uniform(0.8, 1.25), 2)
    text = str(value)
    if len(text) < 2:
        return text
    position = rng.randrange(len(text) - 1)
    kind = rng.random()
    if kind < 0.35:
        return text[:position] + text[position + 1 :]
    if kind < 0.60:
        return text[:position] + text[position + 1] + text[position] + text[position + 2 :]
    if kind < 0.80:
        return text[:position] + text[position] + text[position:]
    return text.swapcase()


def _reference_table(
    rng: random.Random,
    family: ScenarioFamily,
    config: SynthConfig,
    vocab: Mapping[str, Any],
) -> Table | None:
    """The FD-bearing reference table (a subset of the domain directory)."""
    if not family.reference_fields or config.reference_size <= 0.0:
        return None
    specs = {spec.name: spec for spec in family.fields}
    schema = Schema(
        family.reference_relation,
        [specs[name].attribute() for name in family.reference_fields],
    )
    rows = [
        tuple(entry[name] for name in family.reference_fields)
        for entry in vocab["directory"]
        if rng.random() < config.reference_size
    ]
    return Table(schema, rows)


def _master_table(
    rng: random.Random,
    family: ScenarioFamily,
    config: SynthConfig,
    entities: Sequence[Mapping[str, Any]],
) -> Table | None:
    """Master data: a trusted subset of the ground truth."""
    if not family.master_fields or config.master_coverage <= 0.0:
        return None
    specs = {spec.name: spec for spec in family.fields}
    schema = Schema(
        f"{family.target_relation}_master",
        [specs[name].attribute() for name in family.master_fields],
    )
    rows = [
        tuple(entity[name] for name in family.master_fields)
        for entity in entities
        if rng.random() < config.master_coverage
    ]
    return Table(schema, rows)


# -- family: product_catalog --------------------------------------------------

_BRANDS = (
    "Acme Globex Initech Umbrella Stark Wayne "
    "Tyrell Cyberdyne Wonka Hooli Aperture Vandelay"
).split()
_CATEGORY_BASE_PRICE = {
    "audio": 90.0,
    "kitchen": 45.0,
    "outdoor": 60.0,
    "toys": 20.0,
    "office": 30.0,
    "lighting": 25.0,
    "fitness": 55.0,
    "storage": 15.0,
}
_PRODUCT_ADJECTIVES = "compact deluxe eco pro ultra classic smart mini max prime".split()
_PRODUCT_NOUNS = (
    "speaker kettle lamp desk tent blender "
    "monitor chair rack bottle mat router"
).split()


def _product_vocab(rng: random.Random, config: SynthConfig) -> dict:
    directory = []
    for index in range(_directory_size(config.entities)):
        entry = {
            "line": f"PL-{index:04d}",
            "brand": rng.choice(_BRANDS),
            "category": rng.choice(sorted(_CATEGORY_BASE_PRICE)),
        }
        directory.append(entry)
    return {"directory": directory}


def _product_entity(rng: random.Random, index: int, vocab: Mapping[str, Any]) -> dict:
    entry = rng.choice(vocab["directory"])
    base = _CATEGORY_BASE_PRICE[entry["category"]]
    return {
        "sku": f"SKU-{index:06d}",
        "name": (
            f"{rng.choice(_PRODUCT_ADJECTIVES)} {rng.choice(_PRODUCT_NOUNS)} "
            f"{rng.randint(100, 999)}"
        ),
        "brand": entry["brand"],
        "category": entry["category"],
        "line": entry["line"],
        "price": round(base * rng.uniform(0.6, 2.4), 2),
        "stock": rng.randint(0, 500),
        "rating": round(rng.uniform(1.0, 5.0), 1),
    }


PRODUCT_CATALOG = ScenarioFamily(
    name="product_catalog",
    target_relation="product",
    fields=(
        FieldSpec("sku", DataType.STRING, ("product_code", "item_sku"), "stock keeping unit"),
        FieldSpec("name", DataType.STRING, ("product_name", "title"), "display name"),
        FieldSpec("brand", DataType.STRING, ("brand_name", "manufacturer"), "brand"),
        FieldSpec("category", DataType.STRING, ("product_category", "dept"), "category"),
        FieldSpec("line", DataType.STRING, ("product_line", "line_code"), "product line"),
        FieldSpec("price", DataType.FLOAT, ("unit_price", "price_gbp"), "unit price in GBP"),
        FieldSpec("stock", DataType.INTEGER, ("stock_level", "qty_in_stock"), "units in stock"),
        FieldSpec("rating", DataType.FLOAT, ("avg_rating", "review_score"), "mean review score"),
    ),
    evaluation_key=("sku",),
    reference_fields=("line", "brand", "category"),
    reference_relation="product_lines",
    master_fields=("sku", "name", "price"),
    source_prefix="catalog",
    make_vocab=_product_vocab,
    make_entity=_product_entity,
)


# -- family: sensor_log -------------------------------------------------------

_SENSOR_SITES = (
    "manchester-north manchester-south salford-quays "
    "trafford-park stockport-hub bolton-yard"
).split()
_SENSOR_KINDS = {
    "temperature": ("C", 21.0, 4.0),
    "humidity": ("pct", 55.0, 12.0),
    "pressure": ("hPa", 1013.0, 9.0),
    "vibration": ("mm_s", 4.0, 1.5),
    "flow": ("l_min", 30.0, 8.0),
}


def _sensor_vocab(rng: random.Random, config: SynthConfig) -> dict:
    directory = []
    kinds = sorted(_SENSOR_KINDS)
    for index in range(_directory_size(config.entities)):
        kind = rng.choice(kinds)
        unit, mean, spread = _SENSOR_KINDS[kind]
        entry = {
            "sensor": f"{kind[:4].upper()}-{index:04d}",
            "site": rng.choice(_SENSOR_SITES),
            "unit": unit,
            "_mean": mean,
            "_spread": spread,
        }
        directory.append(entry)
    return {"directory": directory}


def _sensor_entity(rng: random.Random, index: int, vocab: Mapping[str, Any]) -> dict:
    entry = rng.choice(vocab["directory"])
    status = rng.random()
    return {
        "reading_id": f"r{index:07d}",
        "sensor": entry["sensor"],
        "site": entry["site"],
        "unit": entry["unit"],
        "day": f"2026-{rng.randint(1, 6):02d}-{rng.randint(1, 28):02d}",
        "value": round(rng.gauss(entry["_mean"], entry["_spread"]), 2),
        "status": "ok" if status < 0.90 else ("warn" if status < 0.97 else "error"),
    }


SENSOR_LOG = ScenarioFamily(
    name="sensor_log",
    target_relation="reading",
    fields=(
        FieldSpec("reading_id", DataType.STRING, ("reading_ref", "record_id"), "reading key"),
        FieldSpec("sensor", DataType.STRING, ("sensor_id", "device"), "sensor identifier"),
        FieldSpec("site", DataType.STRING, ("location_site", "plant_site"), "deployment site"),
        FieldSpec("unit", DataType.STRING, ("measure_unit", "uom"), "unit of measure"),
        FieldSpec("day", DataType.STRING, ("reading_day", "logged_day"), "reading date"),
        FieldSpec("value", DataType.FLOAT, ("reading_value", "measurement"), "measured value"),
        FieldSpec("status", DataType.STRING, ("state_flag", "quality_flag"), "reading status"),
    ),
    evaluation_key=("reading_id",),
    reference_fields=("sensor", "site", "unit"),
    reference_relation="sensors",
    master_fields=("reading_id", "sensor", "value"),
    source_prefix="feed",
    make_vocab=_sensor_vocab,
    make_entity=_sensor_entity,
)


# -- family: org_directory ----------------------------------------------------

_ORG_SITES = "manchester leeds london edinburgh bristol remote".split()
_ORG_DEPARTMENTS = (
    "engineering finance sales support operations "
    "research marketing legal people security"
).split()
_FIRST_NAMES = (
    "alice bhavna carlos dana emeka freya gustav hana "
    "ivan jia kwame lena marco nadia omar priya"
).split()
_LAST_NAMES = (
    "smith patel garcia novak okafor larsen weber kim "
    "petrov chen mensah fischer rossi haddad tanaka kaur"
).split()


def _org_vocab(rng: random.Random, config: SynthConfig) -> dict:
    directory = [
        {"department": department, "site": rng.choice(_ORG_SITES)}
        for department in _ORG_DEPARTMENTS
    ]
    return {"directory": directory}


def _org_entity(rng: random.Random, index: int, vocab: Mapping[str, Any]) -> dict:
    entry = rng.choice(vocab["directory"])
    first = rng.choice(_FIRST_NAMES)
    last = rng.choice(_LAST_NAMES)
    grade = rng.randint(1, 9)
    return {
        "employee_id": f"E{index:06d}",
        "full_name": f"{first.title()} {last.title()}",
        "department": entry["department"],
        "site": entry["site"],
        "grade": f"G{grade}",
        "email": f"{first}.{last}.{index % 997}@example.org",
        "salary": round((24_000 + grade * 4_500) * rng.uniform(0.9, 1.15), 2),
    }


ORG_DIRECTORY = ScenarioFamily(
    name="org_directory",
    target_relation="employee",
    fields=(
        FieldSpec("employee_id", DataType.STRING, ("staff_id", "emp_no"), "employee key"),
        FieldSpec("full_name", DataType.STRING, ("employee_name", "display_name"), "full name"),
        FieldSpec("department", DataType.STRING, ("dept", "org_unit"), "department"),
        FieldSpec("site", DataType.STRING, ("office_site", "work_site"), "home office"),
        FieldSpec("grade", DataType.STRING, ("pay_grade", "level"), "pay grade"),
        FieldSpec("email", DataType.STRING, ("email_address", "work_email"), "work email"),
        FieldSpec("salary", DataType.FLOAT, ("annual_salary", "base_pay"), "annual salary"),
    ),
    evaluation_key=("employee_id",),
    reference_fields=("department", "site"),
    reference_relation="departments",
    master_fields=("employee_id", "full_name", "salary"),
    source_prefix="hrfeed",
    make_vocab=_org_vocab,
    make_entity=_org_entity,
)


# -- family: shipment_tracking (join-shaped: depot attributes only via join) --

_SHIPMENT_REGIONS = "north-west yorkshire midlands south-east scotland wales".split()
_SHIPMENT_CITIES = (
    "manchester leeds birmingham london glasgow cardiff "
    "liverpool sheffield newcastle bristol nottingham"
).split()
_SHIPMENT_CARRIERS = "swiftline roadrunner parcelforge bluecrate duskfreight".split()
_SHIPMENT_MANAGERS = (
    "o.adeyemi l.kowalski m.fernandez r.macleod t.nguyen "
    "s.okonkwo a.lindqvist d.murphy"
).split()


def _shipment_vocab(rng: random.Random, config: SynthConfig) -> dict:
    directory = []
    for index in range(_directory_size(config.entities)):
        directory.append(
            {
                "origin_depot": f"DEP-{index:04d}",
                "region": rng.choice(_SHIPMENT_REGIONS),
                "depot_manager": rng.choice(_SHIPMENT_MANAGERS),
            }
        )
    return {"directory": directory}


def _shipment_entity(rng: random.Random, index: int, vocab: Mapping[str, Any]) -> dict:
    entry = rng.choice(vocab["directory"])
    status = rng.random()
    return {
        "tracking_id": f"TRK{index:08d}",
        "origin_depot": entry["origin_depot"],
        "region": entry["region"],
        "depot_manager": entry["depot_manager"],
        "dest_city": rng.choice(_SHIPMENT_CITIES),
        "weight_kg": round(rng.uniform(0.2, 120.0), 2),
        "carrier": rng.choice(_SHIPMENT_CARRIERS),
        "status": "delivered" if status < 0.7 else ("in_transit" if status < 0.95 else "lost"),
    }


#: A join-heavy workload: the shipping feeds know nothing about depots
#: beyond their code, so ``region`` and ``depot_manager`` can only be
#: populated by joining the ``depots`` registry on ``origin_depot`` — the
#: synthetic analogue of the paper's real-estate Deprivation table.
SHIPMENT_TRACKING = ScenarioFamily(
    name="shipment_tracking",
    target_relation="shipment",
    fields=(
        FieldSpec("tracking_id", DataType.STRING, ("shipment_ref", "parcel_id"), "tracking key"),
        FieldSpec("origin_depot", DataType.STRING, ("depot_code", "from_depot"), "origin depot"),
        FieldSpec("region", DataType.STRING, ("depot_region", "area"), "depot region"),
        FieldSpec("depot_manager", DataType.STRING, ("site_manager", "manager"), "depot manager"),
        FieldSpec("dest_city", DataType.STRING, ("destination", "to_city"), "destination city"),
        FieldSpec("weight_kg", DataType.FLOAT, ("weight", "parcel_kg"), "parcel weight"),
        FieldSpec("carrier", DataType.STRING, ("courier", "carrier_name"), "carrier"),
        FieldSpec("status", DataType.STRING, ("shipment_status", "state"), "delivery status"),
    ),
    evaluation_key=("tracking_id",),
    reference_fields=("origin_depot", "region"),
    reference_relation="depot_directory",
    master_fields=("tracking_id", "dest_city", "weight_kg"),
    source_prefix="shipfeed",
    make_vocab=_shipment_vocab,
    make_entity=_shipment_entity,
    lookup_fields=("region", "depot_manager"),
    lookup_key="origin_depot",
    lookup_relation="depots",
)


# -- family: real_estate (adapter over the hand-written scenario) -------------

#: The noise knob maps onto the real-estate noise profiles relative to their
#: hand-tuned defaults (which correspond to ``noise = 0.08``).
_REAL_ESTATE_BASE_NOISE = 0.08


def _real_estate_builder(config: SynthConfig) -> Scenario:
    """Adapt the paper's real-estate scenario to the generic contract.

    The source count is fixed at three (two portals plus the deprivation
    open-government table); the remaining knobs map onto the hand-written
    generator's parameters.
    """
    from repro.scenarios.realestate import ScenarioConfig, generate_scenario

    base = ScenarioConfig(
        seed=config.seed,
        properties=config.entities,
        postcodes=max(10, config.entities // 6),
        rightmove_coverage=config.source_coverage,
        onthemarket_coverage=max(0.05, config.source_coverage - 0.10),
        address_coverage=config.reference_size,
        master_coverage=config.master_coverage,
    ).with_noise_scale(config.noise / _REAL_ESTATE_BASE_NOISE)
    generated = generate_scenario(base)
    return Scenario(
        name=config.label(),
        family="real_estate",
        seed=config.seed,
        target=generated.target,
        sources=generated.sources() + _mixed_sources(config),
        ground_truth=generated.ground_truth,
        evaluation_key=("postcode", "price"),
        reference=generated.address_reference,
        master=generated.master,
        config=config,
    )


register_family(PRODUCT_CATALOG.name, PRODUCT_CATALOG)
register_family(SENSOR_LOG.name, SENSOR_LOG)
register_family(ORG_DIRECTORY.name, ORG_DIRECTORY)
register_family(SHIPMENT_TRACKING.name, SHIPMENT_TRACKING)
register_family("real_estate", _real_estate_builder)
