"""Demonstration scenarios: the paper's real-estate workload plus the
parametric generator (:mod:`repro.scenarios.synth`) and the generic
:class:`~repro.scenarios.base.Scenario` contract they share."""

from repro.scenarios.base import Scenario
from repro.scenarios.realestate import (
    ONTHEMARKET_TEMPLATE,
    RIGHTMOVE_TEMPLATE,
    RealEstateScenario,
    ScenarioConfig,
    generate_scenario,
    target_schema,
)
from repro.scenarios.synth import (
    MISSING_PATTERNS,
    FieldSpec,
    ScenarioFamily,
    SynthConfig,
    family_names,
    generate_synthetic,
    register_family,
    scenario_suite,
)

__all__ = [
    "ScenarioConfig",
    "RealEstateScenario",
    "generate_scenario",
    "target_schema",
    "RIGHTMOVE_TEMPLATE",
    "ONTHEMARKET_TEMPLATE",
    "Scenario",
    "SynthConfig",
    "ScenarioFamily",
    "FieldSpec",
    "MISSING_PATTERNS",
    "family_names",
    "generate_synthetic",
    "register_family",
    "scenario_suite",
]
