"""Demonstration scenarios (currently: the real-estate scenario of §2.1)."""

from repro.scenarios.realestate import (
    ONTHEMARKET_TEMPLATE,
    RIGHTMOVE_TEMPLATE,
    RealEstateScenario,
    ScenarioConfig,
    generate_scenario,
    target_schema,
)

__all__ = [
    "ScenarioConfig",
    "RealEstateScenario",
    "generate_scenario",
    "target_schema",
    "RIGHTMOVE_TEMPLATE",
    "ONTHEMARKET_TEMPLATE",
]
