"""Persistent wrangling sessions: the session-first public surface.

A :class:`WranglingSession` is one long-lived data context — the unit the
paper's user-in-the-loop architecture actually revolves around: create it,
run it to a best-effort result, then keep feeding it feedback, source
appends, explain and evaluate requests for as long as the data lives. Every
interaction is a typed request from :mod:`repro.service.api`, and the same
session object sits behind the in-process API, the CLI and the HTTP
service, so the three entry points cannot diverge.

Sessions survive process death: :meth:`WranglingSession.checkpoint`
serialises the *entire* live state (knowledge base, catalog, provenance
store, incremental snapshots, transducer watermarks) to disk, and
:meth:`WranglingSession.restore` brings it back bit-identically — a
restored session serves the next feedback round with exactly the tables
and metrics an uninterrupted session would have produced (property-tested
in ``tests/test_service.py`` and enforced by
``repro.incremental.validate.check_restored``).

:class:`SessionStore` manages the set of live sessions (and their
checkpoint files) for the job queue and the HTTP front end.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
import uuid
from typing import Any, Iterable, Mapping

from repro.core.facts import Feedback
from repro.scenarios.base import Scenario
from repro.scenarios.synth import SynthConfig, generate_synthetic
from repro.service.api import (
    AppendRequest,
    CellAnnotation,
    CheckpointRequest,
    EvaluateRequest,
    ExplainRequest,
    ExplainResponse,
    FeedbackRequest,
    QueryRequest,
    QueryResponse,
    RunRequest,
    SessionMetrics,
    SimulateRequest,
    rows_from_table,
)
from repro.wrangler.config import WranglerConfig

__all__ = ["CHECKPOINT_FORMAT", "SessionStore", "WranglingSession"]

#: Version tag of the checkpoint container; bump on incompatible layout.
CHECKPOINT_FORMAT = 1


def _new_session_id() -> str:
    return uuid.uuid4().hex[:12]


class WranglingSession:
    """One persistent data context, driven by typed requests.

    Wraps a :class:`~repro.wrangler.pipeline.Wrangler` (whose pre-session
    methods remain as deprecation shims) and is what
    :meth:`Wrangler.session() <repro.wrangler.pipeline.Wrangler.session>`
    returns.
    """

    def __init__(self, wrangler, *, session_id: str | None = None,
                 name: str | None = None, scenario: Scenario | None = None):
        self._wrangler = wrangler
        self.session_id = session_id or _new_session_id()
        self.name = name or self.session_id
        self.created_at = time.time()
        self.requests_served = 0
        self.last_phase = ""
        #: The generating scenario, when the session is scenario-backed —
        #: carries the ground truth that ``simulate`` annotates against.
        self.scenario = scenario
        self._simulated_rounds = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_scenario(cls, scenario: Scenario | SynthConfig | Mapping[str, Any], *,
                      config: WranglerConfig | None = None,
                      session_id: str | None = None,
                      name: str | None = None) -> "WranglingSession":
        """A fresh session over a (generated) scenario's sources and target.

        Accepts a :class:`Scenario`, a :class:`SynthConfig`, or a mapping of
        ``SynthConfig`` fields (the HTTP create payload). The session is
        installed but not yet run — submit a :class:`RunRequest` (phase
        ``bootstrap``) to materialise the first result.
        """
        from repro.wrangler.pipeline import Wrangler

        if isinstance(scenario, Mapping):
            scenario = SynthConfig(**scenario)
        if isinstance(scenario, SynthConfig):
            scenario = generate_synthetic(scenario)
        wrangler = Wrangler(config=config)
        scenario.install(wrangler)
        if scenario.reference is not None:
            wrangler.add_reference_data(scenario.reference)
        if scenario.master is not None:
            wrangler.add_master_data(scenario.master)
        return cls(wrangler, session_id=session_id,
                   name=name or scenario.name, scenario=scenario)

    # -- accessors ------------------------------------------------------------

    @property
    def wrangler(self):
        """The wrapped wrangler (escape hatch for in-process callers)."""
        return self._wrangler

    def result(self):
        """The current materialised result table (None before the first run)."""
        return self._wrangler.result()

    def result_rows(self, *, limit: int | None = None) -> dict[str, Any]:
        """A JSON rendering of the current result (browse endpoint)."""
        return rows_from_table(self.result(), limit=limit)

    def fingerprint(self) -> str:
        """Order-independent fingerprint of the current result table."""
        from repro.wrangler.batch import table_fingerprint

        return table_fingerprint(self.result())

    def info(self) -> dict[str, Any]:
        """A compact description of the session (list/status endpoints)."""
        table = self.result()
        return {
            "session_id": self.session_id,
            "name": self.name,
            "created_at": self.created_at,
            "requests_served": self.requests_served,
            "last_phase": self.last_phase,
            "rows": len(table) if table is not None else 0,
            "relation": table.name if table is not None else None,
            "scenario": self.scenario.name if self.scenario is not None else None,
        }

    # -- request dispatch -----------------------------------------------------

    def handle(self, request) -> SessionMetrics | ExplainResponse | dict[str, Any]:
        """Serve one typed request (the job queue's single entry point)."""
        handlers = {
            RunRequest: self.run,
            FeedbackRequest: self.feedback,
            AppendRequest: self.append,
            ExplainRequest: self.explain,
            EvaluateRequest: self.evaluate,
            SimulateRequest: self.simulate,
            QueryRequest: self.query,
            CheckpointRequest: self._checkpoint_request,
        }
        try:
            handler = handlers[type(request)]
        except KeyError:
            raise TypeError(f"unsupported request type {type(request).__name__}") from None
        return handler(request)

    def run(self, request: RunRequest | None = None) -> SessionMetrics:
        """Orchestrate to quiescence (bootstrap / data_context / feedback…)."""
        request = request or RunRequest()
        started = time.perf_counter()
        result = self._wrangler.run(request.phase, evaluate=request.evaluate)
        return self._metrics(result, time.perf_counter() - started)

    def feedback(self, request: FeedbackRequest) -> SessionMetrics:
        """Assert the request's annotations and bring the result up to date."""
        started = time.perf_counter()
        self._assert_annotations(request.annotations)
        result = self._wrangler._apply_feedback(
            None, incremental=request.incremental, evaluate=request.evaluate)
        return self._metrics(result, time.perf_counter() - started)

    def append(self, request: AppendRequest) -> SessionMetrics:
        """Append rows to a registered source and update the result."""
        started = time.perf_counter()
        result = self._wrangler._append_source_rows(
            request.relation, request.rows, incremental=request.incremental,
            evaluate=request.evaluate)
        return self._metrics(result, time.perf_counter() - started)

    def apply(self, change_set, *, phase: str = "revision",
              evaluate: bool = True) -> SessionMetrics:
        """Apply an arbitrary typed change set (in-process callers only)."""
        started = time.perf_counter()
        result = self._wrangler._apply_change_set(
            change_set, phase=phase, evaluate=evaluate)
        return self._metrics(result, time.perf_counter() - started)

    def explain(self, request: ExplainRequest) -> ExplainResponse:
        """Why-provenance of one result cell, served from the live store."""
        tree = self._wrangler.explain(request.row, request.column)
        from repro.provenance.explain import render_lineage

        self.requests_served += 1
        return ExplainResponse(
            session_id=self.session_id,
            tree=tree.as_dict(),
            text=render_lineage(tree) if request.render else "",
        )

    def evaluate(self, request: EvaluateRequest | None = None) -> SessionMetrics:
        """Quality of the current result (no re-wrangling)."""
        request = request or EvaluateRequest()
        started = time.perf_counter()
        report = self._wrangler.evaluate(use_stats=request.use_stats)
        table = self.result()
        self.requests_served += 1
        self.last_phase = "evaluate"
        return SessionMetrics(
            session_id=self.session_id,
            phase="evaluate",
            rows=len(table) if table is not None else 0,
            fingerprint=self.fingerprint(),
            quality=dict(report.as_dict()) if report is not None else None,
            overall=report.overall() if report is not None else None,
            kb_facts=self._wrangler.kb.count(),
            kb_revision=self._wrangler.kb.revision,
            seconds=time.perf_counter() - started,
        )

    def simulate(self, request: SimulateRequest) -> SessionMetrics:
        """One simulated feedback round against the scenario's ground truth."""
        if self.scenario is None:
            raise ValueError(
                "session is not scenario-backed: no ground truth to simulate against")
        table = self.result()
        if table is None:
            raise LookupError("no materialised result yet; run bootstrap first")
        from repro.feedback.annotations import simulate_feedback

        seed = request.seed
        if seed is None:
            # Deterministic but fresh per round (the counter is checkpointed,
            # so a restored session simulates exactly what the live one would).
            seed = self._wrangler._config.seed * 7919 + self._simulated_rounds
        annotations = simulate_feedback(
            table,
            self.scenario.ground_truth,
            self.scenario.evaluation_key,
            budget=request.budget,
            seed=seed,
            strategy=request.strategy,
            id_prefix=f"svc{self._simulated_rounds}",
        )
        self._simulated_rounds += 1
        return self.feedback(
            FeedbackRequest(
                annotations=tuple(annotations),
                incremental=request.incremental,
                evaluate=request.evaluate,
            )
        )

    def query(self, request: QueryRequest) -> QueryResponse:
        """Answer a conjunctive query over the session's result.

        Key resolution order: explicit request keys, else keys derived from
        the learned exact CFDs, else — for scenario-backed sessions — the
        scenario's evaluation key on the target relation.
        """
        from repro.cqa import EnumerationConfig

        keys = request.keys
        if keys is None:
            keys = self._default_query_keys()
        enumeration = None
        if request.max_repairs is not None or request.timeout_seconds is not None:
            enumeration = EnumerationConfig(
                max_repairs=request.max_repairs
                if request.max_repairs is not None
                else EnumerationConfig.max_repairs,
                timeout_seconds=request.timeout_seconds,
            )
        outcome = self._wrangler.query(
            request.query, mode=request.mode, keys=keys, enumeration=enumeration)
        self.requests_served += 1
        self.last_phase = "query"
        payload = outcome.as_dict()
        return QueryResponse(session_id=self.session_id, **payload)

    def _default_query_keys(self) -> dict[str, tuple[str, ...]] | None:
        """Scenario evaluation key as the key default, when CFDs offer none.

        Returns None (let the wrangler derive keys from learned CFDs) unless
        no exact CFDs exist, in which case a scenario-backed session falls
        back to its evaluation key on the target relation.
        """
        from repro.quality.transducers import CFD_ARTIFACT_KEY

        learned = self._wrangler.kb.get_artifact(CFD_ARTIFACT_KEY)
        if learned is not None and learned.cfds:
            return None
        if self.scenario is None:
            return None
        target = self._wrangler.target_relation
        if target is None:
            return None
        key = self.scenario.evaluation_key
        key = (key,) if isinstance(key, str) else tuple(key)
        return {target: key} if key else None

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint(self, path: str) -> dict[str, Any]:
        """Serialise the whole session to ``path`` (atomic replace).

        The blob contains everything the next process needs to continue the
        loop exactly where it stopped: knowledge base (facts, catalog,
        artifacts — provenance store, incremental snapshots, quality
        stats), transducer registry watermarks and the orchestration trace.
        """
        payload = pickle.dumps(
            {"format": CHECKPOINT_FORMAT, "session": self},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(payload).hexdigest()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        temporary = f"{path}.tmp.{os.getpid()}"
        with open(temporary, "wb") as handle:
            handle.write(digest.encode("ascii") + b"\n")
            handle.write(payload)
        os.replace(temporary, path)
        return {
            "session_id": self.session_id,
            "path": os.path.abspath(path),
            "bytes": len(payload),
            "sha256": digest,
        }

    @classmethod
    def restore(cls, path: str) -> "WranglingSession":
        """Rebuild a session from a checkpoint file.

        Raises ``ValueError`` on a corrupt or incompatible checkpoint — a
        truncated file must fail loudly, never resurrect partial state.
        """
        with open(path, "rb") as handle:
            header = handle.readline().strip()
            payload = handle.read()
        if hashlib.sha256(payload).hexdigest().encode("ascii") != header:
            raise ValueError(f"checkpoint {path!r} is corrupt (digest mismatch)")
        container = pickle.loads(payload)
        if not isinstance(container, dict) or "session" not in container:
            raise ValueError(f"checkpoint {path!r} has no session payload")
        if container.get("format") != CHECKPOINT_FORMAT:
            raise ValueError(
                f"checkpoint {path!r} has format {container.get('format')!r}; "
                f"this build reads format {CHECKPOINT_FORMAT}")
        session = container["session"]
        if not isinstance(session, cls):
            raise ValueError(f"checkpoint {path!r} does not contain a WranglingSession")
        return session

    def _checkpoint_request(self, request: CheckpointRequest) -> dict[str, Any]:
        if request.path is None:
            raise ValueError("CheckpointRequest.path is required outside a SessionStore")
        return self.checkpoint(request.path)

    # -- internals ------------------------------------------------------------

    def _assert_annotations(
        self, annotations: Iterable[CellAnnotation | Feedback]
    ) -> int:
        asserted = 0
        prebuilt = []
        for annotation in annotations:
            if isinstance(annotation, Feedback):
                prebuilt.append(annotation)
                continue
            if annotation.attribute is None:
                self._wrangler.feedback_on_tuple(
                    annotation.row_key, correct=annotation.correct)
            else:
                self._wrangler.feedback_on_attribute(
                    annotation.row_key, annotation.attribute, correct=annotation.correct)
            asserted += 1
        if prebuilt:
            asserted += self._wrangler.add_feedback(prebuilt)
        return asserted

    def _metrics(self, result, seconds: float) -> SessionMetrics:
        self.requests_served += 1
        self.last_phase = result.phase
        quality = result.quality.as_dict() if result.quality is not None else None
        return SessionMetrics(
            session_id=self.session_id,
            phase=result.phase,
            rows=result.row_count,
            fingerprint=self.fingerprint(),
            quality=dict(quality) if quality is not None else None,
            overall=result.quality.overall() if result.quality is not None else None,
            incremental=result.details.get("incremental"),
            kb_facts=self._wrangler.kb.count(),
            kb_revision=self._wrangler.kb.revision,
            steps=result.steps_executed,
            seconds=seconds,
        )

    def __repr__(self) -> str:
        return (f"WranglingSession(id={self.session_id!r}, name={self.name!r}, "
                f"served={self.requests_served})")


class SessionStore:
    """The set of live sessions (and their checkpoints on disk).

    Thread-safe: the job queue executes session work on worker threads and
    the HTTP front end creates/lists sessions from the event loop.
    """

    def __init__(self, directory: str | None = None):
        #: Where checkpoints live; None keeps the store memory-only.
        self.directory = directory
        self._sessions: dict[str, WranglingSession] = {}
        self._lock = threading.RLock()

    def create(self, scenario=None, *, config: WranglerConfig | None = None,
               name: str | None = None,
               session_id: str | None = None) -> WranglingSession:
        """Create (and register) a new session.

        ``scenario`` follows :meth:`WranglingSession.from_scenario`; with
        ``scenario=None`` an empty session is created for callers that
        register sources by hand (in-process use).
        """
        if scenario is None:
            from repro.wrangler.pipeline import Wrangler

            session = WranglingSession(
                Wrangler(config=config), session_id=session_id, name=name)
        else:
            session = WranglingSession.from_scenario(
                scenario, config=config, session_id=session_id, name=name)
        self.add(session)
        return session

    def add(self, session: WranglingSession) -> WranglingSession:
        """Register an externally built session (e.g. ``wrangler.session()``)."""
        with self._lock:
            if session.session_id in self._sessions:
                raise ValueError(f"session {session.session_id!r} already exists")
            self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str) -> WranglingSession:
        """The live session (KeyError names the unknown id)."""
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise KeyError(f"unknown session {session_id!r}") from None

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def list(self) -> list[dict[str, Any]]:
        """Session infos, sorted by creation time."""
        with self._lock:
            sessions = list(self._sessions.values())
        return [s.info() for s in sorted(sessions, key=lambda s: (s.created_at, s.session_id))]

    def checkpoint_path(self, session_id: str) -> str:
        """Default checkpoint location for one session."""
        if self.directory is None:
            raise ValueError("SessionStore has no directory; pass an explicit path")
        return os.path.join(self.directory, f"{session_id}.ckpt")

    def checkpoint(self, session_id: str, path: str | None = None) -> dict[str, Any]:
        """Persist one session (default path: ``<directory>/<id>.ckpt``)."""
        session = self.get(session_id)
        return session.checkpoint(path or self.checkpoint_path(session_id))

    def restore(self, session_id: str, path: str | None = None) -> WranglingSession:
        """Load a checkpoint and make it the live session for its id."""
        session = WranglingSession.restore(path or self.checkpoint_path(session_id))
        with self._lock:
            self._sessions[session.session_id] = session
        return session

    def drop(self, session_id: str) -> None:
        """Forget a live session (its checkpoint files are kept)."""
        with self._lock:
            self._sessions.pop(session_id, None)
