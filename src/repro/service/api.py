"""The typed request/response surface shared by every wrangling entry point.

The pay-as-you-go loop used to be spread across ``Wrangler`` methods grown
by accretion (``run`` / ``apply_feedback`` / ``append_source_rows`` /
``evaluate(use_stats=...)`` — each with its own kwargs). This module re-cuts
that surface into request and response dataclasses that are the *same
objects* whether a round arrives in process
(:class:`~repro.service.session.WranglingSession`), over the CLI
(:mod:`repro.service.cli`) or over HTTP (:mod:`repro.service.server`):

- requests: :class:`RunRequest`, :class:`FeedbackRequest`,
  :class:`AppendRequest`, :class:`ExplainRequest`, :class:`EvaluateRequest`,
  :class:`SimulateRequest`, :class:`CheckpointRequest`;
- responses: :class:`SessionMetrics`, :class:`ExplainResponse`;
- job plumbing: :class:`JobRecord` with :class:`JobStatus` states.

Everything round-trips through ``as_dict`` / ``from_dict`` (plain JSON
types), so the HTTP layer is a codec, not a second API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.facts import Feedback

__all__ = [
    "AppendRequest",
    "CellAnnotation",
    "CheckpointRequest",
    "EvaluateRequest",
    "ExplainRequest",
    "ExplainResponse",
    "FeedbackRequest",
    "JobRecord",
    "JobStatus",
    "QueryRequest",
    "QueryResponse",
    "REQUEST_KINDS",
    "RunRequest",
    "SessionMetrics",
    "SimulateRequest",
    "request_from_dict",
]


@dataclass(frozen=True)
class CellAnnotation:
    """One user verdict on a result cell (or whole tuple when no attribute).

    The service-side counterpart of :class:`repro.core.facts.Feedback`:
    clients do not assign feedback ids — the session's collector does.
    """

    row_key: str
    correct: bool
    attribute: str | None = None

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"row_key": self.row_key, "correct": self.correct}
        if self.attribute is not None:
            payload["attribute"] = self.attribute
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellAnnotation | Feedback":
        """An annotation; entries carrying a ``feedback_id`` rebuild as
        pre-minted :class:`Feedback` facts (in-process round trips)."""
        if payload.get("feedback_id"):
            return Feedback(
                feedback_id=str(payload["feedback_id"]),
                relation=str(payload.get("relation", "")),
                row_key=str(payload["row_key"]),
                attribute=str(payload.get("attribute", "*")),
                correct=bool(payload["correct"]),
            )
        attribute = payload.get("attribute")
        return cls(
            row_key=str(payload["row_key"]),
            correct=bool(payload["correct"]),
            attribute=None if attribute in (None, "*") else str(attribute),
        )


def _annotation_dict(annotation: "CellAnnotation | Feedback") -> dict[str, Any]:
    if isinstance(annotation, Feedback):
        return {
            "feedback_id": annotation.feedback_id,
            "relation": annotation.relation,
            "row_key": annotation.row_key,
            "attribute": annotation.attribute,
            "correct": annotation.correct,
        }
    return annotation.as_dict()


@dataclass(frozen=True)
class RunRequest:
    """Orchestrate to quiescence (one pay-as-you-go stage)."""

    kind = "run"
    phase: str = ""
    evaluate: bool = True

    def as_dict(self) -> dict[str, Any]:
        return {"phase": self.phase, "evaluate": self.evaluate}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRequest":
        return cls(
            phase=str(payload.get("phase", "")),
            evaluate=bool(payload.get("evaluate", True)),
        )


@dataclass(frozen=True)
class FeedbackRequest:
    """Assert annotations and bring the result up to date.

    ``incremental=None`` defers to the session's configured default; the
    outcome is identical either way (the incremental engine's equality
    contract), only the cost differs.
    """

    kind = "feedback"
    annotations: tuple["CellAnnotation | Feedback", ...] = ()
    incremental: bool | None = None
    evaluate: bool = True

    def as_dict(self) -> dict[str, Any]:
        return {
            "annotations": [_annotation_dict(a) for a in self.annotations],
            "incremental": self.incremental,
            "evaluate": self.evaluate,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FeedbackRequest":
        raw = payload.get("annotations", ())
        annotations = tuple(CellAnnotation.from_dict(entry) for entry in raw)
        return cls(
            annotations=annotations,
            incremental=payload.get("incremental"),
            evaluate=bool(payload.get("evaluate", True)),
        )


@dataclass(frozen=True)
class AppendRequest:
    """Append rows to a registered source and update the result."""

    kind = "append"
    relation: str = ""
    rows: tuple[tuple, ...] = ()
    incremental: bool | None = None
    evaluate: bool = True

    def as_dict(self) -> dict[str, Any]:
        return {
            "relation": self.relation,
            "rows": [list(row) for row in self.rows],
            "incremental": self.incremental,
            "evaluate": self.evaluate,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AppendRequest":
        return cls(
            relation=str(payload["relation"]),
            rows=tuple(tuple(row) for row in payload.get("rows", ())),
            incremental=payload.get("incremental"),
            evaluate=bool(payload.get("evaluate", True)),
        )


@dataclass(frozen=True)
class ExplainRequest:
    """Why-provenance of one result cell (or tuple when ``column`` is None)."""

    kind = "explain"
    row: int | str = 0
    column: str | None = None
    #: Whether the response also carries the human-readable rendering.
    render: bool = True

    def as_dict(self) -> dict[str, Any]:
        return {"row": self.row, "column": self.column, "render": self.render}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExplainRequest":
        row = payload.get("row", 0)
        return cls(
            row=row if isinstance(row, int) else str(row),
            column=payload.get("column"),
            render=bool(payload.get("render", True)),
        )


@dataclass(frozen=True)
class EvaluateRequest:
    """Quality of the current result (maintained stats unless disabled)."""

    kind = "evaluate"
    use_stats: bool | None = None

    def as_dict(self) -> dict[str, Any]:
        return {"use_stats": self.use_stats}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EvaluateRequest":
        return cls(use_stats=payload.get("use_stats"))


@dataclass(frozen=True)
class SimulateRequest:
    """Simulate a user annotating ``budget`` cells against the session's
    ground truth (scenario-backed sessions only) and apply the feedback."""

    kind = "simulate"
    budget: int = 10
    seed: int | None = None
    strategy: str = "targeted"
    incremental: bool | None = None
    evaluate: bool = True

    def as_dict(self) -> dict[str, Any]:
        return {
            "budget": self.budget,
            "seed": self.seed,
            "strategy": self.strategy,
            "incremental": self.incremental,
            "evaluate": self.evaluate,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulateRequest":
        seed = payload.get("seed")
        return cls(
            budget=int(payload.get("budget", 10)),
            seed=None if seed is None else int(seed),
            strategy=str(payload.get("strategy", "targeted")),
            incremental=payload.get("incremental"),
            evaluate=bool(payload.get("evaluate", True)),
        )


@dataclass(frozen=True)
class QueryRequest:
    """Answer a conjunctive query over the session's result.

    ``mode="certain"`` computes the certain answers over the *unrepaired*
    base tables under the session's primary keys (explicit ``keys``, else
    learned exact CFDs, else the scenario's evaluation key);
    ``mode="repaired"`` answers over the current result; ``mode="both"``
    does both and records their agreement as a quality signal.
    """

    kind = "query"
    query: str = ""
    mode: str = "certain"
    #: Primary keys per relation; None defers to the session's defaults.
    keys: dict[str, tuple[str, ...]] | None = None
    #: Repair-enumeration budget for non-rewritable queries.
    max_repairs: int | None = None
    timeout_seconds: float | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "mode": self.mode,
            "keys": None if self.keys is None
            else {relation: list(attrs) for relation, attrs in self.keys.items()},
            "max_repairs": self.max_repairs,
            "timeout_seconds": self.timeout_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryRequest":
        raw_keys = payload.get("keys")
        keys = None
        if raw_keys is not None:
            keys = {
                str(relation): (attrs,) if isinstance(attrs, str) else tuple(attrs)
                for relation, attrs in raw_keys.items()
            }
        max_repairs = payload.get("max_repairs")
        timeout = payload.get("timeout_seconds")
        return cls(
            query=str(payload.get("query", "")),
            mode=str(payload.get("mode", "certain")),
            keys=keys,
            max_repairs=None if max_repairs is None else int(max_repairs),
            timeout_seconds=None if timeout is None else float(timeout),
        )


@dataclass(frozen=True)
class CheckpointRequest:
    """Persist the session's full state to disk (see ``SessionStore``)."""

    kind = "checkpoint"
    path: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {"path": self.path}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CheckpointRequest":
        path = payload.get("path")
        return cls(path=None if path is None else str(path))


#: Request kind → request class (the HTTP/CLI codec registry).
REQUEST_KINDS = {
    request_class.kind: request_class
    for request_class in (
        RunRequest,
        FeedbackRequest,
        AppendRequest,
        ExplainRequest,
        EvaluateRequest,
        SimulateRequest,
        QueryRequest,
        CheckpointRequest,
    )
}


def request_from_dict(kind: str, payload: Mapping[str, Any]):
    """Decode one request from its ``kind`` and JSON payload."""
    try:
        request_class = REQUEST_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown request kind {kind!r}; expected one of {', '.join(sorted(REQUEST_KINDS))}"
        ) from None
    return request_class.from_dict(payload)


# -- responses ----------------------------------------------------------------


@dataclass(frozen=True)
class SessionMetrics:
    """What one session round produced — the service's standard response."""

    session_id: str
    phase: str
    rows: int
    #: Order-independent fingerprint of the result table (equality checks).
    fingerprint: str
    #: Quality criteria of the current result (None when not evaluated).
    quality: dict[str, float] | None = None
    overall: float | None = None
    #: The incremental engine's report for this round (None on full runs).
    incremental: dict[str, Any] | None = None
    kb_facts: int = 0
    kb_revision: int = 0
    steps: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "session_id": self.session_id,
            "phase": self.phase,
            "rows": self.rows,
            "fingerprint": self.fingerprint,
            "quality": dict(self.quality) if self.quality is not None else None,
            "overall": self.overall,
            "incremental": dict(self.incremental) if self.incremental is not None else None,
            "kb_facts": self.kb_facts,
            "kb_revision": self.kb_revision,
            "steps": self.steps,
            "seconds": round(self.seconds, 6),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SessionMetrics":
        quality = payload.get("quality")
        incremental = payload.get("incremental")
        overall = payload.get("overall")
        return cls(
            session_id=str(payload["session_id"]),
            phase=str(payload.get("phase", "")),
            rows=int(payload.get("rows", 0)),
            fingerprint=str(payload.get("fingerprint", "")),
            quality=None if quality is None else {str(k): float(v) for k, v in quality.items()},
            overall=None if overall is None else float(overall),
            incremental=None if incremental is None else dict(incremental),
            kb_facts=int(payload.get("kb_facts", 0)),
            kb_revision=int(payload.get("kb_revision", 0)),
            steps=int(payload.get("steps", 0)),
            seconds=float(payload.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class ExplainResponse:
    """A lineage explanation, JSON-shaped (tree) and human-shaped (text)."""

    session_id: str
    tree: dict[str, Any]
    text: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {"session_id": self.session_id, "tree": self.tree, "text": self.text}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExplainResponse":
        return cls(
            session_id=str(payload["session_id"]),
            tree=dict(payload.get("tree", {})),
            text=str(payload.get("text", "")),
        )


@dataclass(frozen=True)
class QueryResponse:
    """The answers of one query round, JSON-shaped.

    Mirrors :class:`repro.wrangler.pipeline.QueryOutcome`: ``certain`` and
    ``repaired`` are answer-row lists (None when the mode skipped them),
    boolean queries use ``[[]]`` for *certainly true* and ``[]`` for *not
    certain*.
    """

    session_id: str
    query: str
    mode: str
    certain: list[list] | None = None
    repaired: list[list] | None = None
    method: str | None = None
    rewritable: bool | None = None
    reason: str = ""
    keys: dict[str, list[str]] = field(default_factory=dict)
    agreement: float | None = None
    exact: bool = True
    details: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "session_id": self.session_id,
            "query": self.query,
            "mode": self.mode,
            "certain": self.certain,
            "repaired": self.repaired,
            "method": self.method,
            "rewritable": self.rewritable,
            "reason": self.reason,
            "keys": {relation: list(attrs) for relation, attrs in self.keys.items()},
            "agreement": self.agreement,
            "exact": self.exact,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryResponse":
        certain = payload.get("certain")
        repaired = payload.get("repaired")
        agreement = payload.get("agreement")
        return cls(
            session_id=str(payload["session_id"]),
            query=str(payload.get("query", "")),
            mode=str(payload.get("mode", "certain")),
            certain=None if certain is None else [list(row) for row in certain],
            repaired=None if repaired is None else [list(row) for row in repaired],
            method=payload.get("method"),
            rewritable=payload.get("rewritable"),
            reason=str(payload.get("reason", "")),
            keys={str(k): list(v) for k, v in payload.get("keys", {}).items()},
            agreement=None if agreement is None else float(agreement),
            exact=bool(payload.get("exact", True)),
            details=dict(payload.get("details", {})),
        )


# -- jobs ---------------------------------------------------------------------


class JobStatus:
    """Lifecycle states of an async job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can never leave.
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class JobRecord:
    """One enqueued request: identity, lifecycle timestamps and outcome."""

    job_id: str
    session_id: str
    kind: str
    tenant: str = "public"
    status: str = JobStatus.PENDING
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: The response payload (``as_dict`` of the typed response) when done.
    result: dict[str, Any] | None = None
    error: str | None = None
    #: The decoded request (not serialised; server-side bookkeeping).
    request: Any = field(default=None, repr=False, compare=False)

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.status in JobStatus.TERMINAL

    def as_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "session_id": self.session_id,
            "kind": self.kind,
            "tenant": self.tenant,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobRecord":
        result = payload.get("result")
        return cls(
            job_id=str(payload["job_id"]),
            session_id=str(payload.get("session_id", "")),
            kind=str(payload.get("kind", "")),
            tenant=str(payload.get("tenant", "public")),
            status=str(payload.get("status", JobStatus.PENDING)),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            result=None if result is None else dict(result),
            error=payload.get("error"),
        )


def rows_from_table(table, *, limit: int | None = None) -> dict[str, Any]:
    """A JSON rendering of a result table (keys + rows), for browsing."""
    if table is None:
        return {"relation": None, "attributes": [], "rows": [], "total": 0}
    keys = table.row_keys()
    attributes = list(table.schema.attribute_names)
    count = len(table) if limit is None else min(limit, len(table))
    all_rows = table.tuples()
    rows = []
    for index in range(count):
        values = all_rows[index]
        rows.append(
            {
                "row_key": keys[index],
                "values": {
                    name: value if isinstance(value, (str, int, float, bool)) or value is None
                    else str(value)
                    for name, value in zip(attributes, values)
                },
            }
        )
    return {
        "relation": table.name,
        "attributes": attributes,
        "rows": rows,
        "total": len(table),
    }
