"""Wrangling as a service: persistent sessions behind an async job API.

The paper's architecture is inherently a *service*: a user opens a data
context once and then pays incrementally — feedback, appends, context —
over days, not within one process lifetime. This package supplies that
missing deployment shape on top of the existing engines:

- :mod:`repro.service.api` — the typed request/response surface shared by
  every entry point (in-process, CLI, HTTP);
- :mod:`repro.service.session` — :class:`WranglingSession` (persistent,
  checkpoint/restorable) and :class:`SessionStore`;
- :mod:`repro.service.jobs` — the asyncio job queue: per-session FIFO,
  cross-session parallelism, per-tenant rate limiting, cancellation;
- :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib-only JSON-over-HTTP front end and its client;
- :mod:`repro.service.cli` — ``python -m repro.service`` commands.
"""

from repro.service.api import (
    AppendRequest,
    CellAnnotation,
    CheckpointRequest,
    EvaluateRequest,
    ExplainRequest,
    ExplainResponse,
    FeedbackRequest,
    JobRecord,
    JobStatus,
    QueryRequest,
    QueryResponse,
    RunRequest,
    SessionMetrics,
    SimulateRequest,
    request_from_dict,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import BackgroundService, JobQueue, RateLimiter, RateLimitExceeded
from repro.service.server import WranglingServer, run_server
from repro.service.session import SessionStore, WranglingSession

__all__ = [
    "AppendRequest",
    "BackgroundService",
    "CellAnnotation",
    "CheckpointRequest",
    "EvaluateRequest",
    "ExplainRequest",
    "ExplainResponse",
    "FeedbackRequest",
    "JobQueue",
    "JobRecord",
    "JobStatus",
    "QueryRequest",
    "QueryResponse",
    "RateLimitExceeded",
    "RateLimiter",
    "RunRequest",
    "ServiceClient",
    "ServiceError",
    "SessionMetrics",
    "SessionStore",
    "SimulateRequest",
    "WranglingServer",
    "WranglingSession",
    "request_from_dict",
    "run_server",
]
