"""A stdlib HTTP client for the wrangling service.

Speaks the same typed objects as the in-process API: requests go out as
their ``as_dict`` payloads, job records come back as
:class:`~repro.service.api.JobRecord` — so moving a driver loop from
in-process to over-the-wire is a one-line change (``session.feedback(req)``
becomes ``client.perform(session_id, req)``).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.service.api import JobRecord, JobStatus

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """An HTTP-level failure, carrying the status and decoded payload."""

    def __init__(self, status: int, payload: dict[str, Any]):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload

    @property
    def retry_after(self) -> float | None:
        """Backoff hint on 429 responses (None otherwise)."""
        value = self.payload.get("retry_after")
        return None if value is None else float(value)


class ServiceClient:
    """One tenant's view of a running wrangling service."""

    def __init__(self, base_url: str, *, tenant: str = "public",
                 timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- transport ------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: dict[str, Any] | None = None) -> dict[str, Any]:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json", "X-Tenant": self.tenant},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except Exception:  # non-JSON error body
                body = {"error": str(exc)}
            raise ServiceError(exc.code, body) from None

    # -- sessions -------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def create_session(self, scenario: dict[str, Any] | None = None, *,
                       name: str | None = None,
                       config: dict[str, Any] | None = None,
                       session_id: str | None = None) -> dict[str, Any]:
        """Create a session; ``scenario`` holds SynthConfig fields."""
        return self._request("POST", "/sessions", {
            "scenario": scenario, "name": name,
            "config": config, "session_id": session_id,
        })

    def sessions(self) -> list[dict[str, Any]]:
        return self._request("GET", "/sessions")["sessions"]

    def session(self, session_id: str) -> dict[str, Any]:
        return self._request("GET", f"/sessions/{session_id}")

    def drop(self, session_id: str) -> None:
        self._request("DELETE", f"/sessions/{session_id}")

    def result(self, session_id: str, *, limit: int | None = None) -> dict[str, Any]:
        suffix = "" if limit is None else f"?limit={limit}"
        return self._request("GET", f"/sessions/{session_id}/result{suffix}")

    # -- jobs -----------------------------------------------------------------

    def submit(self, session_id: str, request) -> JobRecord:
        """Enqueue a typed request (``202``); returns the pending record."""
        payload = {"kind": request.kind, "request": request.as_dict()}
        return JobRecord.from_dict(
            self._request("POST", f"/sessions/{session_id}/jobs", payload))

    def job(self, job_id: str) -> JobRecord:
        return JobRecord.from_dict(self._request("GET", f"/jobs/{job_id}"))

    def jobs(self, session_id: str | None = None) -> list[JobRecord]:
        suffix = "" if session_id is None else f"?session_id={session_id}"
        return [JobRecord.from_dict(entry)
                for entry in self._request("GET", f"/jobs{suffix}")["jobs"]]

    def cancel(self, job_id: str) -> bool:
        return bool(self._request("POST", f"/jobs/{job_id}/cancel")["cancelled"])

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll_interval: float = 0.05) -> JobRecord:
        """Poll until the job is terminal (``TimeoutError`` otherwise)."""
        deadline = time.monotonic() + timeout
        interval = poll_interval
        while True:
            record = self.job(job_id)
            if record.finished:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {record.status} after {timeout}s")
            time.sleep(interval)
            interval = min(interval * 1.5, 1.0)

    def perform(self, session_id: str, request, *,
                timeout: float = 300.0) -> dict[str, Any] | None:
        """Submit, wait, and return the result payload (raises on failure)."""
        record = self.wait(self.submit(session_id, request).job_id, timeout=timeout)
        if record.status == JobStatus.FAILED:
            raise RuntimeError(f"job {record.job_id} failed: {record.error}")
        if record.status == JobStatus.CANCELLED:
            raise RuntimeError(f"job {record.job_id} was cancelled")
        return record.result

    # -- persistence ----------------------------------------------------------

    def checkpoint(self, session_id: str, *, path: str | None = None,
                   timeout: float = 300.0) -> dict[str, Any] | None:
        """Checkpoint through the job queue (ordered after in-flight rounds)."""
        payload = {"path": path}
        record = JobRecord.from_dict(
            self._request("POST", f"/sessions/{session_id}/checkpoint", payload))
        finished = self.wait(record.job_id, timeout=timeout)
        if finished.status != JobStatus.DONE:
            raise RuntimeError(
                f"checkpoint job {finished.job_id} {finished.status}: {finished.error}")
        return finished.result

    def restore(self, session_id: str, *, path: str | None = None) -> dict[str, Any]:
        """Replace the live session with its checkpointed state."""
        return self._request("POST", f"/sessions/{session_id}/restore", {"path": path})
