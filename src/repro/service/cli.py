"""Command-line front end of the wrangling service.

``serve`` runs the HTTP server; every other command is a thin
:class:`~repro.service.client.ServiceClient` call, so the CLI exercises
exactly the payloads a programmatic client would send::

    python -m repro.service serve --port 8765 --checkpoint-dir /tmp/wrangle &
    python -m repro.service create --url http://127.0.0.1:8765 --entities 120
    python -m repro.service run --url ... SESSION --phase bootstrap
    python -m repro.service feedback --url ... SESSION --simulate 20
    python -m repro.service feedback --url ... SESSION --annotate 'r42:price=false'
    python -m repro.service explain --url ... SESSION 3 --column price
    python -m repro.service checkpoint --url ... SESSION
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.service.api import (
    AppendRequest,
    CellAnnotation,
    EvaluateRequest,
    ExplainRequest,
    FeedbackRequest,
    QueryRequest,
    RunRequest,
    SimulateRequest,
)
from repro.service.client import ServiceClient
from repro.service.jobs import RateLimiter
from repro.service.server import run_server
from repro.service.session import SessionStore

__all__ = ["main"]


def _emit(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))


def _parse_annotation(spec: str) -> CellAnnotation:
    """``row[:attribute]=true|false`` → :class:`CellAnnotation`."""
    cell, _, verdict = spec.partition("=")
    if verdict.lower() not in ("true", "false"):
        raise argparse.ArgumentTypeError(
            f"annotation {spec!r} must end in =true or =false")
    row_key, _, attribute = cell.partition(":")
    if not row_key:
        raise argparse.ArgumentTypeError(f"annotation {spec!r} has no row key")
    return CellAnnotation(
        row_key=row_key,
        correct=verdict.lower() == "true",
        attribute=attribute or None,
    )


def _client(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient(args.url, tenant=args.tenant)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Wrangling-as-a-service: sessions behind an async job API.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent wrangling jobs (default: 2)")
    serve.add_argument("--checkpoint-dir", default=None,
                       help="directory for session checkpoints (default: none)")
    serve.add_argument("--rate", type=float, default=None,
                       help="per-tenant requests/second (default: unlimited)")
    serve.add_argument("--burst", type=int, default=20,
                       help="per-tenant burst capacity (default: 20)")

    def remote(name: str, help_text: str) -> argparse.ArgumentParser:
        command = commands.add_parser(name, help=help_text)
        command.add_argument("--url", default="http://127.0.0.1:8765",
                             help="service base URL")
        command.add_argument("--tenant", default="public",
                             help="tenant name for rate limiting")
        return command

    status = remote("status", "service health and session list")
    _ = status

    create = remote("create", "create a synthetic-scenario session")
    create.add_argument("--family", default=None, help="scenario family name")
    create.add_argument("--entities", type=int, default=100)
    create.add_argument("--sources", type=int, default=None)
    create.add_argument("--seed", type=int, default=0)
    create.add_argument("--name", default=None)

    run = remote("run", "orchestrate one pay-as-you-go stage")
    run.add_argument("session")
    run.add_argument("--phase", default="bootstrap")
    run.add_argument("--evaluate", default=True,
                     action=argparse.BooleanOptionalAction,
                     help="compute the quality report (default: on)")

    feedback = remote("feedback", "apply (or simulate) a feedback round")
    feedback.add_argument("session")
    feedback.add_argument("--annotate", action="append", default=[],
                          type=_parse_annotation, metavar="ROW[:ATTR]=BOOL",
                          help="explicit cell verdict; repeatable")
    feedback.add_argument("--simulate", type=int, default=None, metavar="BUDGET",
                          help="simulate BUDGET annotations against ground truth")
    feedback.add_argument("--seed", type=int, default=None)
    feedback.add_argument("--strategy", default="targeted")
    feedback.add_argument("--incremental", default=None,
                          action=argparse.BooleanOptionalAction,
                          help="force the incremental engine on/off "
                               "(default: session config)")

    append = remote("append", "append rows to a registered source")
    append.add_argument("session")
    append.add_argument("relation")
    append.add_argument("--rows", required=True,
                        help="JSON list of rows, e.g. '[[\"a\",1],[\"b\",2]]'")
    append.add_argument("--incremental", default=None,
                        action=argparse.BooleanOptionalAction)

    explain = remote("explain", "why-provenance of one result cell")
    explain.add_argument("session")
    explain.add_argument("row")
    explain.add_argument("--column", default=None)
    explain.add_argument("--text", default=True,
                         action=argparse.BooleanOptionalAction,
                         help="print the rendering instead of the JSON tree")

    evaluate = remote("evaluate", "quality of the current result")
    evaluate.add_argument("session")
    evaluate.add_argument("--use-stats", default=None,
                          action=argparse.BooleanOptionalAction,
                          help="force maintained statistics on/off")

    result = remote("result", "browse the current result rows")
    result.add_argument("session")
    result.add_argument("--limit", type=int, default=10)

    query = remote("query", "answer a conjunctive query (certain/repaired)")
    query.add_argument("session")
    query.add_argument("query",
                       help="compact query text, e.g. "
                            "'q(P, X) :- property(postcode=P, price=X).'")
    query.add_argument("--mode", default="certain",
                       choices=("certain", "repaired", "both"))
    query.add_argument("--key", action="append", default=[],
                       metavar="RELATION=ATTR[,ATTR...]",
                       help="primary key override; repeatable "
                            "(default: learned CFDs / scenario key)")
    query.add_argument("--max-repairs", type=int, default=None,
                       help="repair-enumeration budget for non-rewritable queries")
    query.add_argument("--timeout", type=float, default=None,
                       help="enumeration wall-clock budget in seconds")

    checkpoint = remote("checkpoint", "persist a session to disk")
    checkpoint.add_argument("session")
    checkpoint.add_argument("--path", default=None)

    restore = remote("restore", "restore a session from its checkpoint")
    restore.add_argument("session")
    restore.add_argument("--path", default=None)

    jobs = remote("jobs", "list job records")
    jobs.add_argument("--session", default=None)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        limiter = None if args.rate is None else RateLimiter(args.rate, args.burst)
        run_server(SessionStore(args.checkpoint_dir), host=args.host,
                   port=args.port, workers=args.workers, rate_limiter=limiter)
        return 0

    client = _client(args)
    if args.command == "status":
        _emit({"health": client.health(), "sessions": client.sessions()})
    elif args.command == "create":
        scenario: dict[str, Any] = {"entities": args.entities, "seed": args.seed}
        if args.family is not None:
            scenario["family"] = args.family
        if args.sources is not None:
            scenario["sources"] = args.sources
        _emit(client.create_session(scenario, name=args.name))
    elif args.command == "run":
        _emit(client.perform(args.session,
                             RunRequest(phase=args.phase, evaluate=args.evaluate)))
    elif args.command == "feedback":
        if args.simulate is not None:
            request = SimulateRequest(budget=args.simulate, seed=args.seed,
                                      strategy=args.strategy,
                                      incremental=args.incremental)
        elif args.annotate:
            request = FeedbackRequest(annotations=tuple(args.annotate),
                                      incremental=args.incremental)
        else:
            print("feedback needs --annotate and/or --simulate", file=sys.stderr)
            return 2
        _emit(client.perform(args.session, request))
    elif args.command == "append":
        rows = tuple(tuple(row) for row in json.loads(args.rows))
        _emit(client.perform(args.session,
                             AppendRequest(relation=args.relation, rows=rows,
                                           incremental=args.incremental)))
    elif args.command == "explain":
        row: int | str = int(args.row) if args.row.isdigit() else args.row
        payload = client.perform(
            args.session, ExplainRequest(row=row, column=args.column))
        if args.text and payload is not None:
            print(payload.get("text", ""))
        else:
            _emit(payload)
    elif args.command == "evaluate":
        _emit(client.perform(args.session, EvaluateRequest(use_stats=args.use_stats)))
    elif args.command == "result":
        _emit(client.result(args.session, limit=args.limit))
    elif args.command == "query":
        keys = None
        if args.key:
            keys = {}
            for spec in args.key:
                relation, _, attrs = spec.partition("=")
                if not relation or not attrs:
                    print(f"bad --key {spec!r}; use RELATION=ATTR[,ATTR...]",
                          file=sys.stderr)
                    return 2
                keys[relation] = tuple(a for a in attrs.split(",") if a)
        _emit(client.perform(args.session,
                             QueryRequest(query=args.query, mode=args.mode,
                                          keys=keys, max_repairs=args.max_repairs,
                                          timeout_seconds=args.timeout)))
    elif args.command == "checkpoint":
        _emit(client.checkpoint(args.session, path=args.path))
    elif args.command == "restore":
        _emit(client.restore(args.session, path=args.path))
    elif args.command == "jobs":
        _emit([job.as_dict() for job in client.jobs(args.session)])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
