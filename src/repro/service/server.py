"""The HTTP front end of the wrangling service (stdlib only).

A deliberately small JSON-over-HTTP/1.1 layer on ``asyncio.start_server``
— no web framework, because the container bakes in nothing beyond the
standard library and the service API is already fully typed: every handler
is a codec between HTTP and :mod:`repro.service.api` objects, with the
actual work running on the :class:`~repro.service.jobs.JobQueue`.

Routes
------
- ``GET    /health``                        liveness + session/job counts
- ``GET    /sessions``                      list sessions
- ``POST   /sessions``                      create a (scenario-backed) session
- ``GET    /sessions/{id}``                 session info
- ``DELETE /sessions/{id}``                 drop a session
- ``GET    /sessions/{id}/result``          browse the result (``?limit=N``)
- ``POST   /sessions/{id}/jobs``            submit a typed request (``202``)
- ``POST   /sessions/{id}/checkpoint``      enqueue a checkpoint job
- ``POST   /sessions/{id}/restore``         restore from the checkpoint file
- ``GET    /jobs``                          list jobs (``?session_id=``)
- ``GET    /jobs/{id}``                     poll one job
- ``POST   /jobs/{id}/cancel``              cancel a pending job

Tenancy for rate limiting comes from the ``X-Tenant`` header (default
``public``). Rate-limited submissions answer ``429`` with ``Retry-After``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.service.api import CheckpointRequest, request_from_dict
from repro.service.jobs import JobQueue, RateLimiter, RateLimitExceeded
from repro.service.session import SessionStore
from repro.wrangler.config import WranglerConfig

__all__ = ["WranglingServer", "run_server"]

_MAX_BODY = 32 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str, *, headers: dict[str, str] | None = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


def _wrangler_config(payload: dict[str, Any] | None) -> WranglerConfig | None:
    """A WranglerConfig from the scalar fields of a JSON payload.

    Component sub-configs are not exposed over HTTP (they carry callables
    and domain objects); the session-level knobs are.
    """
    if not payload:
        return None
    scalars = {
        f.name for f in dataclasses.fields(WranglerConfig) if f.type in ("int", "bool")
    }
    unknown = set(payload) - scalars
    if unknown:
        raise _HttpError(
            400, f"unknown config fields: {', '.join(sorted(unknown))}; "
                 f"supported: {', '.join(sorted(scalars))}")
    return WranglerConfig(**payload)


class WranglingServer:
    """One listening socket, one :class:`SessionStore`, one job queue."""

    def __init__(self, store: SessionStore | None = None, *,
                 host: str = "127.0.0.1", port: int = 8765, workers: int = 2,
                 rate_limiter: RateLimiter | None = None):
        self.store = store if store is not None else SessionStore()
        self.host = host
        self.port = port
        self.queue = JobQueue(self.store, workers=workers, rate_limiter=rate_limiter)
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        if self._server is None:
            return (self.host, self.port)
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def start(self) -> tuple[str, int]:
        """Bind the socket and spawn the worker pool."""
        await self.queue.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        return self.address

    async def stop(self) -> None:
        """Close the socket and drain the workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.queue.stop()

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's ``serve`` command)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- HTTP plumbing --------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._write_response(
                        writer, exc.status, {"error": str(exc)}, exc.headers)
                    break
                if request is None:
                    break
                method, target, body = request
                status, payload, headers = self._dispatch(method, target, body)
                await self._write_response(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionError):
            return None
        if not request_line.strip():
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(400, f"body too large ({length} bytes)")
        raw = await reader.readexactly(length) if length else b""
        body: dict[str, Any] = {}
        if raw:
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, f"invalid JSON body: {exc}") from None
            if not isinstance(body, dict):
                raise _HttpError(400, "JSON body must be an object")
        body.setdefault("_tenant", headers.get("x-tenant", "public"))
        return method.upper(), target, body

    async def _write_response(self, writer: asyncio.StreamWriter, status: int,
                              payload: Any, headers: dict[str, str]) -> None:
        data = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}",
            "Content-Type: application/json",
            f"Content-Length: {len(data)}",
            "Connection: keep-alive",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + data)
        await writer.drain()

    # -- routing --------------------------------------------------------------

    def _dispatch(self, method: str, target: str, body: dict[str, Any]):
        try:
            status, payload = self._route(method, target, body)
            return status, payload, {}
        except _HttpError as exc:
            return exc.status, {"error": str(exc)}, exc.headers
        except RateLimitExceeded as exc:
            return (429, {"error": str(exc), "retry_after": exc.retry_after},
                    {"Retry-After": f"{exc.retry_after:.3f}"})
        except KeyError as exc:
            return 404, {"error": str(exc.args[0]) if exc.args else "not found"}, {}
        except FileNotFoundError as exc:
            return 404, {"error": str(exc)}, {}
        except (ValueError, TypeError) as exc:
            return 400, {"error": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 — the server must answer
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}

    def _route(self, method: str, target: str, body: dict[str, Any]):
        split = urlsplit(target)
        parts = [part for part in split.path.split("/") if part]
        query = {name: values[-1] for name, values in parse_qs(split.query).items()}
        tenant = str(body.pop("_tenant", "public"))

        if parts == ["health"]:
            self._expect(method, "GET")
            return 200, {"status": "ok", "sessions": len(self.store),
                         "jobs": len(self.queue.list())}

        if parts == ["sessions"]:
            if method == "GET":
                return 200, {"sessions": self.store.list()}
            self._expect(method, "POST")
            return 200, self._create_session(body)

        if len(parts) >= 2 and parts[0] == "sessions":
            session_id = parts[1]
            rest = parts[2:]
            if not rest:
                if method == "DELETE":
                    self.store.get(session_id)
                    self.store.drop(session_id)
                    return 200, {"dropped": session_id}
                self._expect(method, "GET")
                return 200, self.store.get(session_id).info()
            if rest == ["result"]:
                self._expect(method, "GET")
                limit = int(query["limit"]) if "limit" in query else None
                return 200, self.store.get(session_id).result_rows(limit=limit)
            if rest == ["jobs"]:
                self._expect(method, "POST")
                return 202, self._submit(session_id, body, tenant)
            if rest == ["query"]:
                self._expect(method, "POST")
                body = {"kind": "query", "request": body}
                return 202, self._submit(session_id, body, tenant)
            if rest == ["checkpoint"]:
                self._expect(method, "POST")
                body = {"kind": "checkpoint", "request": {"path": body.get("path")}}
                return 202, self._submit(session_id, body, tenant)
            if rest == ["restore"]:
                self._expect(method, "POST")
                session = self.store.restore(session_id, body.get("path"))
                return 200, session.info()

        if parts == ["jobs"]:
            self._expect(method, "GET")
            jobs = self.queue.list(query.get("session_id"))
            return 200, {"jobs": [job.as_dict() for job in jobs]}

        if len(parts) == 2 and parts[0] == "jobs":
            self._expect(method, "GET")
            return 200, self.queue.get(parts[1]).as_dict()

        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            self._expect(method, "POST")
            return 200, {"job_id": parts[1], "cancelled": self.queue.cancel(parts[1])}

        raise _HttpError(404, f"no route for {method} {split.path}")

    @staticmethod
    def _expect(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"method {method} not allowed (use {expected})")

    # -- handlers -------------------------------------------------------------

    def _create_session(self, body: dict[str, Any]) -> dict[str, Any]:
        scenario = body.get("scenario")
        if scenario is not None and not isinstance(scenario, dict):
            raise _HttpError(400, "scenario must be an object of SynthConfig fields")
        session = self.store.create(
            scenario,
            config=_wrangler_config(body.get("config")),
            name=body.get("name"),
            session_id=body.get("session_id"),
        )
        return session.info()

    def _submit(self, session_id: str, body: dict[str, Any],
                tenant: str) -> dict[str, Any]:
        kind = body.get("kind")
        if not kind:
            raise _HttpError(400, "job submission needs a request 'kind'")
        request = request_from_dict(str(kind), body.get("request", {}))
        if isinstance(request, CheckpointRequest) and request.path is None:
            request = CheckpointRequest(path=self.store.checkpoint_path(session_id))
        job = self.queue.submit(session_id, request, tenant=tenant)
        return job.as_dict()


def run_server(store: SessionStore | None = None, *, host: str = "127.0.0.1",
               port: int = 8765, workers: int = 2,
               rate_limiter: RateLimiter | None = None) -> None:
    """Blocking entry point (the CLI's ``serve`` command)."""

    async def _main() -> None:
        server = WranglingServer(store, host=host, port=port, workers=workers,
                                 rate_limiter=rate_limiter)
        bound_host, bound_port = await server.start()
        print(f"wrangling service listening on http://{bound_host}:{bound_port}")
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
