"""The async job queue behind the wrangling service.

Wrangling rounds are CPU-bound and seconds-long, so the service never runs
them on the request path: every typed request becomes a
:class:`~repro.service.api.JobRecord`, clients poll (or wait on) its
status, and a small worker pool executes jobs off the event loop.

Ordering contract: jobs of one session execute **in submission order, one
at a time** (a per-session lock — feedback rounds are stateful), while
jobs of different sessions run concurrently up to the worker count.

Fairness: a token-bucket :class:`RateLimiter` throttles per tenant at
submission time, so one chatty client cannot monopolise the pool.

:class:`BackgroundService` wraps the queue plus its event loop in a daemon
thread for synchronous callers (the CLI, tests, notebooks); the HTTP front
end in :mod:`repro.service.server` drives the queue on its own loop.
"""

from __future__ import annotations

import asyncio
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.service.api import JobRecord, JobStatus
from repro.service.session import SessionStore

__all__ = [
    "BackgroundService",
    "JobQueue",
    "RateLimitExceeded",
    "RateLimiter",
]


class RateLimitExceeded(Exception):
    """A tenant exhausted its token bucket; retry after a short backoff."""

    def __init__(self, tenant: str, retry_after: float):
        super().__init__(
            f"tenant {tenant!r} exceeded its request rate; "
            f"retry in {retry_after:.2f}s")
        self.tenant = tenant
        self.retry_after = retry_after


class RateLimiter:
    """A per-tenant token bucket (``rate`` tokens/s, capacity ``burst``).

    The clock is injectable so tests can drive time deterministically.
    """

    def __init__(self, rate: float = 10.0, burst: int = 20, *,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, tuple[float, float]] = {}  # tenant → (tokens, stamp)
        self._lock = threading.Lock()

    def try_acquire(self, tenant: str) -> float:
        """Consume one token; returns 0.0, or the seconds until one frees up."""
        now = self._clock()
        with self._lock:
            tokens, stamp = self._buckets.get(tenant, (self.burst, now))
            tokens = min(self.burst, tokens + (now - stamp) * self.rate)
            if tokens >= 1.0:
                self._buckets[tenant] = (tokens - 1.0, now)
                return 0.0
            self._buckets[tenant] = (tokens, now)
            return (1.0 - tokens) / self.rate

    def check(self, tenant: str) -> None:
        """:meth:`try_acquire` that raises :class:`RateLimitExceeded`."""
        retry_after = self.try_acquire(tenant)
        if retry_after > 0:
            raise RateLimitExceeded(tenant, retry_after)


class JobQueue:
    """Typed requests in, :class:`JobRecord` lifecycles out.

    Must be created and driven from one asyncio event loop; the wrangling
    work itself runs on a :class:`ThreadPoolExecutor` so the loop stays
    responsive for polling and submission.
    """

    def __init__(self, store: SessionStore, *, workers: int = 2,
                 rate_limiter: RateLimiter | None = None,
                 keep_records: int = 1000):
        self.store = store
        self.workers = max(1, workers)
        self.rate_limiter = rate_limiter
        self._keep_records = keep_records
        self._queue: asyncio.Queue[str] = asyncio.Queue()
        self._jobs: dict[str, JobRecord] = {}
        self._events: dict[str, asyncio.Event] = {}
        self._session_locks: dict[str, asyncio.Lock] = {}
        self._worker_tasks: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._started:
            return
        self._started = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="wrangle-job")
        loop = asyncio.get_running_loop()
        self._worker_tasks = [
            loop.create_task(self._worker(index)) for index in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel workers and release the executor; running jobs finish."""
        if not self._started:
            return
        self._started = False
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- submission / inspection ----------------------------------------------

    def submit(self, session_id: str, request, *, tenant: str = "public") -> JobRecord:
        """Enqueue one typed request for a live session.

        Raises ``KeyError`` for unknown sessions and
        :class:`RateLimitExceeded` when the tenant is over budget.
        """
        self.store.get(session_id)  # fail fast on unknown sessions
        if self.rate_limiter is not None:
            self.rate_limiter.check(tenant)
        job = JobRecord(
            job_id=uuid.uuid4().hex[:16],
            session_id=session_id,
            kind=getattr(request, "kind", type(request).__name__),
            tenant=tenant,
            submitted_at=time.time(),
            request=request,
        )
        self._jobs[job.job_id] = job
        self._events[job.job_id] = asyncio.Event()
        self._queue.put_nowait(job.job_id)
        self._trim_records()
        return job

    def get(self, job_id: str) -> JobRecord:
        """The job record (KeyError names the unknown id)."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def list(self, session_id: str | None = None) -> list[JobRecord]:
        """All retained jobs (optionally of one session), oldest first."""
        jobs = [job for job in self._jobs.values()
                if session_id is None or job.session_id == session_id]
        return sorted(jobs, key=lambda job: (job.submitted_at, job.job_id))

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started yet.

        Returns True when the job moved to ``cancelled``; False when it is
        already running or finished (wrangling rounds are not preemptible —
        killing one mid-patch would corrupt session state).
        """
        job = self.get(job_id)
        if job.status != JobStatus.PENDING:
            return False
        job.status = JobStatus.CANCELLED
        job.finished_at = time.time()
        self._events[job_id].set()
        return True

    async def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until the job is terminal (asyncio.TimeoutError otherwise)."""
        job = self.get(job_id)
        if not job.finished:
            await asyncio.wait_for(self._events[job_id].wait(), timeout)
        return job

    # -- execution ------------------------------------------------------------

    async def _worker(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            try:
                job = self._jobs.get(job_id)
                if job is None or job.status != JobStatus.PENDING:
                    continue  # cancelled (or trimmed) while queued
                lock = self._session_locks.setdefault(job.session_id, asyncio.Lock())
                async with lock:
                    if job.status != JobStatus.PENDING:
                        continue
                    job.status = JobStatus.RUNNING
                    job.started_at = time.time()
                    try:
                        session = self.store.get(job.session_id)
                        response = await loop.run_in_executor(
                            self._executor, session.handle, job.request)
                        job.result = (response.as_dict()
                                      if hasattr(response, "as_dict") else response)
                        job.status = JobStatus.DONE
                    except Exception as exc:  # job failure is data, not a crash
                        job.error = f"{type(exc).__name__}: {exc}"
                        job.status = JobStatus.FAILED
                    finally:
                        job.finished_at = time.time()
                        self._events[job.job_id].set()
            finally:
                self._queue.task_done()

    def _trim_records(self) -> None:
        """Drop the oldest finished jobs beyond the retention cap."""
        if len(self._jobs) <= self._keep_records:
            return
        finished = [job for job in self.list() if job.finished]
        excess = len(self._jobs) - self._keep_records
        for job in finished[:excess]:
            self._jobs.pop(job.job_id, None)
            self._events.pop(job.job_id, None)


class BackgroundService:
    """A synchronous facade: the job queue on a daemon event-loop thread.

    This is what the CLI and in-process callers use::

        service = BackgroundService(SessionStore())
        session = service.store.create(SynthConfig(entities=100))
        service.perform(session.session_id, RunRequest(phase="bootstrap"))
        service.close()
    """

    def __init__(self, store: SessionStore | None = None, *, workers: int = 2,
                 rate_limiter: RateLimiter | None = None):
        self.store = store if store is not None else SessionStore()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="wrangle-service", daemon=True)
        self._thread.start()
        self.queue: JobQueue = self._call(self._make_queue(workers, rate_limiter))
        self._closed = False

    async def _make_queue(self, workers: int, rate_limiter) -> JobQueue:
        queue = JobQueue(self.store, workers=workers, rate_limiter=rate_limiter)
        await queue.start()
        return queue

    def _call(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    # -- the synchronous surface ----------------------------------------------

    def submit(self, session_id: str, request, *, tenant: str = "public") -> JobRecord:
        """Enqueue a request; returns immediately with the pending record."""

        async def _submit():
            return self.queue.submit(session_id, request, tenant=tenant)

        return self._call(_submit())

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until the job finishes."""
        return self._call(self.queue.wait(job_id, timeout))

    def perform(self, session_id: str, request, *, tenant: str = "public",
                timeout: float | None = None) -> dict[str, Any] | None:
        """Submit, wait, and return the job's result payload.

        Raises ``RuntimeError`` carrying the job's error when it failed.
        """
        job = self.wait(self.submit(session_id, request, tenant=tenant).job_id, timeout)
        if job.status == JobStatus.FAILED:
            raise RuntimeError(f"job {job.job_id} failed: {job.error}")
        if job.status == JobStatus.CANCELLED:
            raise RuntimeError(f"job {job.job_id} was cancelled")
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a pending job."""

        async def _cancel():
            return self.queue.cancel(job_id)

        return self._call(_cancel())

    def jobs(self, session_id: str | None = None) -> list[JobRecord]:
        """Retained job records (optionally of one session)."""

        async def _list():
            return self.queue.list(session_id)

        return self._call(_list())

    def close(self) -> None:
        """Stop workers and the loop thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._call(self.queue.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __enter__(self) -> "BackgroundService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
