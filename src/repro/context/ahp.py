"""Analytic Hierarchy Process (AHP) weight derivation.

The paper's user context is "a pairwise comparison approach, which has been
shown to be effective in a range of multi-criteria decision analysis
methodologies"; the comparisons "are used to derive weights that inform the
selection of mappings based on multi-dimensional optimization" (§3 step 4).

This module implements the standard AHP machinery: a reciprocal pairwise
comparison matrix on Saaty's 1–9 scale, principal-eigenvector weight
extraction, and the consistency ratio that flags contradictory preference
sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "VERBAL_SCALE",
    "verbal_strength",
    "PairwiseMatrix",
    "derive_weights",
    "consistency_ratio",
    "RANDOM_INDEX",
]

#: Saaty's verbal scale: how much more important the first item is than the second.
VERBAL_SCALE: dict[str, float] = {
    "equally important": 1.0,
    "slightly more important": 2.0,
    "moderately more important": 3.0,
    "moderately to strongly more important": 4.0,
    "strongly more important": 5.0,
    "strongly to very strongly more important": 6.0,
    "very strongly more important": 7.0,
    "very to extremely more important": 8.0,
    "extremely more important": 9.0,
}

#: The paper's Figure 2(d) uses the phrase "very strongly" with "strongly"
#: and "moderately"; this alias table accepts those shorter spellings.
_SCALE_ALIASES: dict[str, float] = {
    "equal": 1.0,
    "equally": 1.0,
    "slightly": 2.0,
    "moderately": 3.0,
    "strongly": 5.0,
    "very strongly": 7.0,
    "extremely": 9.0,
}

#: Saaty's random consistency index by matrix order (0- and 1-indexed orders
#: are trivially consistent).
RANDOM_INDEX: dict[int, float] = {
    1: 0.0, 2: 0.0, 3: 0.58, 4: 0.90, 5: 1.12, 6: 1.24, 7: 1.32, 8: 1.41,
    9: 1.45, 10: 1.49, 11: 1.51, 12: 1.48, 13: 1.56, 14: 1.57, 15: 1.59,
}


def verbal_strength(phrase: str) -> float:
    """Convert a verbal comparison phrase to a numeric strength (1–9).

    Accepts both the full Saaty phrases and the short forms used in the
    paper ("very strongly more important than" → 7).
    """
    text = phrase.strip().lower()
    text = text.removesuffix("than").strip()
    text = text.removesuffix("more important").strip()
    if not text:
        return 1.0
    if text in _SCALE_ALIASES:
        return _SCALE_ALIASES[text]
    for full, value in VERBAL_SCALE.items():
        if full.startswith(text) or text in full:
            return value
    raise ValueError(f"unrecognised comparison phrase {phrase!r}")


@dataclass
class PairwiseMatrix:
    """A reciprocal pairwise comparison matrix over named items."""

    items: tuple[str, ...]
    values: np.ndarray

    @classmethod
    def identity(cls, items: Sequence[str]) -> "PairwiseMatrix":
        """A matrix expressing no preference (all comparisons equal)."""
        size = len(items)
        return cls(tuple(items), np.ones((size, size), dtype=float))

    @classmethod
    def from_comparisons(
        cls, items: Sequence[str], comparisons: Mapping[tuple[str, str], float]
    ) -> "PairwiseMatrix":
        """Build a matrix from ``{(more_important, less_important): strength}``.

        Unspecified pairs default to 1 (equal importance); reciprocals are
        filled in automatically. A strength may also be below 1 to express
        the inverse direction.
        """
        matrix = cls.identity(items)
        index = {item: i for i, item in enumerate(matrix.items)}
        for (first, second), strength in comparisons.items():
            if first not in index:
                raise KeyError(f"unknown item {first!r}")
            if second not in index:
                raise KeyError(f"unknown item {second!r}")
            if strength <= 0:
                raise ValueError(f"comparison strength must be positive, got {strength}")
            i, j = index[first], index[second]
            matrix.values[i, j] = float(strength)
            matrix.values[j, i] = 1.0 / float(strength)
        return matrix

    @property
    def order(self) -> int:
        """Number of items being compared."""
        return len(self.items)

    def weight_vector(self) -> dict[str, float]:
        """Normalised principal-eigenvector weights (sum to 1)."""
        weights = derive_weights(self.values)
        return {item: float(weight) for item, weight in zip(self.items, weights)}

    def consistency_ratio(self) -> float:
        """Saaty's consistency ratio; values above ~0.1 indicate contradictions."""
        return consistency_ratio(self.values)


def derive_weights(matrix: np.ndarray) -> np.ndarray:
    """Principal right-eigenvector of a positive reciprocal matrix, normalised.

    Falls back to the geometric-mean approximation when the eigenvector has
    numerically tiny imaginary components (it always does for valid input,
    so this is purely defensive).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"pairwise matrix must be square, got shape {matrix.shape}")
    if matrix.shape[0] == 0:
        return np.array([])
    if np.any(matrix <= 0):
        raise ValueError("pairwise matrix entries must be strictly positive")
    eigenvalues, eigenvectors = np.linalg.eig(matrix)
    principal = int(np.argmax(eigenvalues.real))
    vector = eigenvectors[:, principal].real
    if np.all(vector <= 0):
        vector = -vector
    if np.any(vector < 0):
        # Defensive: geometric mean approximation.
        vector = np.exp(np.log(matrix).mean(axis=1))
    total = vector.sum()
    if total == 0:
        raise ValueError("degenerate pairwise matrix (zero weight sum)")
    return vector / total


def consistency_ratio(matrix: np.ndarray) -> float:
    """Saaty's CR = CI / RI where CI = (λ_max − n) / (n − 1)."""
    matrix = np.asarray(matrix, dtype=float)
    order = matrix.shape[0]
    if order <= 2:
        return 0.0
    eigenvalues = np.linalg.eigvals(matrix)
    lambda_max = float(np.max(eigenvalues.real))
    consistency_index = (lambda_max - order) / (order - 1)
    random_index = RANDOM_INDEX.get(order, 1.59)
    if random_index == 0:
        return 0.0
    return max(0.0, consistency_index / random_index)
