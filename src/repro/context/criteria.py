"""Quality criteria over which user preferences are expressed.

The user context in the paper (Figure 2(d)) states pairwise comparisons
between *criterion/attribute* pairs such as "completeness of crimerank" or
"consistency of property". A :class:`Criterion` names one such pair; a
criterion with no attribute applies to the whole result relation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.facts import Predicates

__all__ = ["Criterion", "COMPLETENESS", "ACCURACY", "CONSISTENCY", "RELEVANCE"]


@dataclass(frozen=True, order=True)
class Criterion:
    """A quality dimension, optionally scoped to one target attribute.

    Examples: ``Criterion("completeness", "crimerank")``,
    ``Criterion("consistency")`` (whole relation).
    """

    dimension: str
    attribute: str = ""

    def __post_init__(self) -> None:
        if self.dimension not in Predicates.CRITERIA:
            raise ValueError(
                f"unknown quality dimension {self.dimension!r}; "
                f"expected one of {Predicates.CRITERIA}")

    @property
    def key(self) -> str:
        """Stable string key used in KB facts (``dimension[.attribute]``)."""
        if self.attribute:
            return f"{self.dimension}.{self.attribute}"
        return self.dimension

    @classmethod
    def from_key(cls, key: str) -> "Criterion":
        """Inverse of :attr:`key`."""
        if "." in key:
            dimension, attribute = key.split(".", 1)
            return cls(dimension, attribute)
        return cls(key)

    def __str__(self) -> str:
        if self.attribute:
            return f"{self.dimension} of {self.attribute}"
        return self.dimension


#: Convenience constructors for the four supported dimensions.
def COMPLETENESS(attribute: str = "") -> Criterion:
    """Completeness (fraction of non-null values) of an attribute or relation."""
    return Criterion("completeness", attribute)


def ACCURACY(attribute: str = "") -> Criterion:
    """Accuracy (agreement with reference/master data)."""
    return Criterion("accuracy", attribute)


def CONSISTENCY(attribute: str = "") -> Criterion:
    """Consistency (satisfaction of learned CFDs)."""
    return Criterion("consistency", attribute)


def RELEVANCE(attribute: str = "") -> Criterion:
    """Relevance (coverage of the entities the user cares about)."""
    return Criterion("relevance", attribute)
