"""Data context: reference, master and example data for the target schema.

Paper §2.2: "the user is able to associate the target schema with such
data, which may be, for example, *reference data* (e.g., the complete list
of postcodes or addresses), *master data* (e.g., the complete list of
properties the user is interested in), or simply *example data*".

A :class:`DataContext` binds catalog tables to the target schema under one
of those roles. Registering a data context is what enables the CFD-learning
and instance-matching transducers to run (their input dependencies query the
``data_context`` predicate), reproducing the paper's pay-as-you-go step 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.facts import Predicates, data_context_fact
from repro.core.knowledge_base import KnowledgeBase
from repro.relational.table import Table

__all__ = ["DataContextBinding", "DataContext"]


@dataclass(frozen=True)
class DataContextBinding:
    """One table bound to the target schema under a data-context kind."""

    table: Table
    kind: str
    target_relation: str
    #: Optional mapping from context-table attributes to target attributes
    #: (e.g. Address.street → Target.street). When empty, attributes are
    #: associated by name.
    attribute_map: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        valid = (
            Predicates.CONTEXT_REFERENCE,
            Predicates.CONTEXT_MASTER,
            Predicates.CONTEXT_EXAMPLE,
        )
        if self.kind not in valid:
            raise ValueError(f"unknown data context kind {self.kind!r}; expected one of {valid}")

    def mapped_attributes(self) -> dict[str, str]:
        """Context attribute → target attribute associations."""
        if self.attribute_map:
            return dict(self.attribute_map)
        return {name: name for name in self.table.schema.attribute_names}


class DataContext:
    """The collection of data-context bindings for one wrangling task."""

    def __init__(self, bindings: Iterable[DataContextBinding] = ()):
        self._bindings: list[DataContextBinding] = list(bindings)

    def bind(
        self,
        table: Table,
        kind: str,
        target_relation: str,
        *,
        attribute_map: Mapping[str, str] | None = None,
    ) -> "DataContext":
        """Associate ``table`` with the target schema as ``kind`` data."""
        mapping = tuple((attribute_map or {}).items())
        self._bindings.append(DataContextBinding(table, kind, target_relation, mapping))
        return self

    def reference(
        self, table: Table, target_relation: str, *, attribute_map: Mapping[str, str] | None = None
    ) -> "DataContext":
        """Bind reference data (complete lists, e.g. addresses/postcodes)."""
        return self.bind(
            table, Predicates.CONTEXT_REFERENCE, target_relation, attribute_map=attribute_map
        )

    def master(
        self, table: Table, target_relation: str, *, attribute_map: Mapping[str, str] | None = None
    ) -> "DataContext":
        """Bind master data (the complete list of entities of interest)."""
        return self.bind(
            table, Predicates.CONTEXT_MASTER, target_relation, attribute_map=attribute_map
        )

    def example(
        self, table: Table, target_relation: str, *, attribute_map: Mapping[str, str] | None = None
    ) -> "DataContext":
        """Bind example data (a partial list the user happens to have)."""
        return self.bind(
            table, Predicates.CONTEXT_EXAMPLE, target_relation, attribute_map=attribute_map
        )

    @property
    def bindings(self) -> tuple[DataContextBinding, ...]:
        """All bindings."""
        return tuple(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __bool__(self) -> bool:
        return bool(self._bindings)

    def bindings_of_kind(self, kind: str) -> list[DataContextBinding]:
        """Bindings of one kind (reference/master/example)."""
        return [b for b in self._bindings if b.kind == kind]

    # -- knowledge base interaction ---------------------------------------------

    def assert_into(self, kb: KnowledgeBase) -> int:
        """Register bound tables in the catalog and assert data_context facts."""
        added = 0
        for binding in self._bindings:
            if not kb.has_table(binding.table.name):
                kb.register_table(binding.table, Predicates.ROLE_CONTEXT)
            added += int(kb.assert_tuple(data_context_fact(
                binding.table.name, binding.kind, binding.target_relation)))
        if self._bindings:
            kb.assert_fact(Predicates.DATA_CONTEXT_SET)
        return added

    def describe(self) -> list[str]:
        """Human-readable summary (mirrors Figure 2(c))."""
        return [
            f"{binding.table.name} ({binding.kind}, {len(binding.table)} rows) "
            f"-> {binding.target_relation}"
            for binding in self._bindings
        ]

    def __repr__(self) -> str:
        return f"DataContext(bindings={len(self._bindings)})"
